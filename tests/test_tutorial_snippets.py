"""The docs/tutorial.md walkthrough must actually work as written."""

import pytest

from repro import (
    BalanceConfig,
    EnduranceSimulator,
    configuration_grid,
    default_architecture,
    failure_timeline,
    lifetime_from_result,
    minimum_footprint,
    technology_sweep,
)
from repro.core.io import load_result, save_result
from repro.core.switching import measure_switching
from repro.core.system import lifetime_at_duty_cycle
from repro.devices.endurance import LognormalEndurance
from repro.devices.technology import MRAM, PCM, RRAM
from repro.synth.adders import ripple_carry_add
from repro.synth.bits import AllocationPolicy
from repro.synth.multiplier import multiply
from repro.synth.program import LaneProgramBuilder
from repro.workloads.base import Phase, Workload, WorkloadMapping


def _build_fma_program(architecture, bits=8):
    builder = LaneProgramBuilder(
        architecture.library,
        capacity=architecture.lane_size - 1,
        name=f"fma{bits}",
        policy=AllocationPolicy.RING,
    )
    a = builder.input_vector("a", bits)
    b = builder.input_vector("b", bits)
    c = builder.input_vector("c", 2 * bits)
    product = multiply(builder, a, b)
    total = ripple_carry_add(builder, product, c, free_inputs=True)
    builder.mark_output("d", total)
    builder.read_out(total, tag="d")
    return builder.finish()


class FusedMultiplyAdd(Workload):
    """The tutorial's custom workload (scaled to 8 bits for test speed)."""

    name = "fma-8b"

    def __init__(self, bits=8):
        self.bits = bits
        self.allocation_policy = AllocationPolicy.RING

    def build(self, architecture):
        program = _build_fma_program(architecture, self.bits)
        lanes = architecture.lane_count
        slots = architecture.writes_per_gate
        return WorkloadMapping(
            workload_name=self.name,
            architecture=architecture,
            assignment={lane: program for lane in range(lanes)},
            phases=[
                Phase("load", 4 * self.bits, lanes),
                Phase("compute", program.gate_count * slots, lanes),
                Phase("read-out", 2 * self.bits + 1, lanes),
            ],
        )


@pytest.fixture(scope="module")
def arch():
    return default_architecture(128, 64)


class TestTutorialFlow:
    def test_step1_program_computes_fma(self, arch):
        program = _build_fma_program(arch)
        outputs, _ = program.evaluate({"a": 123, "b": 45, "c": 678})
        assert outputs["d"] == 123 * 45 + 678

    def test_step3_simulation_and_balancing(self, arch):
        sim = EnduranceSimulator(arch, seed=42)
        workload = FusedMultiplyAdd()
        static = sim.run(workload, BalanceConfig(), iterations=200)
        balanced = sim.run(
            workload,
            BalanceConfig.from_label("RaxSt+Hw").with_interval(50),
            iterations=200,
        )
        assert "fma-8b" in static.write_distribution.summary()
        assert (
            lifetime_from_result(balanced).days_to_failure
            >= lifetime_from_result(static).days_to_failure
        )

    def test_step3_grid(self, arch):
        sim = EnduranceSimulator(arch, seed=42)
        entries = configuration_grid(
            sim,
            FusedMultiplyAdd(),
            iterations=100,
            configs=[BalanceConfig(), BalanceConfig.from_label("RaxRa")],
        )
        assert len(entries) == 2

    def test_step4_deeper_questions(self, arch):
        sim = EnduranceSimulator(arch, seed=42)
        workload = FusedMultiplyAdd()
        result = sim.run(workload, BalanceConfig(), iterations=200)
        sweep = technology_sweep(result, [MRAM, RRAM, PCM])
        assert sweep["MRAM"].days_to_failure > sweep["PCM"].days_to_failure

        required = minimum_footprint(workload, arch)
        timeline = failure_timeline(
            result,
            required,
            endurance_model=LognormalEndurance(
                MRAM.endurance_writes, 0.4, rng=0
            ),
        )
        assert timeline.extension_factor >= 1.0

        profile = measure_switching(
            _build_fma_program(arch), samples=8, rng=0
        )
        assert 0 < profile.switch_fraction < 1

        embedded = lifetime_at_duty_cycle(lifetime_from_result(result), 0.01)
        assert embedded.seconds_to_failure == pytest.approx(
            100 * lifetime_from_result(result).seconds_to_failure
        )

    def test_step5_persistence(self, arch, tmp_path):
        sim = EnduranceSimulator(arch, seed=42)
        result = sim.run(FusedMultiplyAdd(), BalanceConfig(), iterations=50)
        path = str(tmp_path / "fma.npz")
        save_result(result, path)
        restored = load_result(path)
        assert restored.write_distribution.max == result.write_distribution.max
