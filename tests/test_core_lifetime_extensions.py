"""Tests for lifetime extensions: read-disturb wear and PGM export."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.lifetime import lifetime_from_result, lifetime_with_read_wear
from repro.core.simulator import EnduranceSimulator
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def result(small_arch):
    sim = EnduranceSimulator(small_arch, seed=0)
    return sim.run(
        ParallelMultiplication(bits=8), BalanceConfig(), iterations=200
    )


class TestReadWear:
    def test_zero_ratio_matches_eq4(self, result):
        plain = lifetime_from_result(result)
        with_reads = lifetime_with_read_wear(result, 0.0)
        assert with_reads.iterations_to_failure == pytest.approx(
            plain.iterations_to_failure
        )

    def test_read_wear_shortens_lifetime(self, result):
        plain = lifetime_from_result(result)
        disturbed = lifetime_with_read_wear(result, 1e-1)
        assert disturbed.iterations_to_failure < plain.iterations_to_failure

    def test_tiny_ratio_is_negligible(self, result):
        plain = lifetime_from_result(result)
        disturbed = lifetime_with_read_wear(result, 1e-6)
        assert disturbed.iterations_to_failure == pytest.approx(
            plain.iterations_to_failure, rel=1e-3
        )

    def test_monotone_in_ratio(self, result):
        lifetimes = [
            lifetime_with_read_wear(result, r).iterations_to_failure
            for r in (0.0, 1e-3, 1e-2, 1e-1)
        ]
        assert all(a >= b for a, b in zip(lifetimes, lifetimes[1:]))

    def test_requires_tracked_reads(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        no_reads = sim.run(
            ParallelMultiplication(bits=8), BalanceConfig(), 50,
            track_reads=False,
        )
        with pytest.raises(ValueError, match="track_reads"):
            lifetime_with_read_wear(no_reads, 1e-3)

    def test_negative_ratio_rejected(self, result):
        with pytest.raises(ValueError):
            lifetime_with_read_wear(result, -0.1)


class TestPgmExport:
    def test_pgm_header_and_size(self, result, tmp_path):
        path = tmp_path / "heat.pgm"
        result.write_distribution.to_pgm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P5\n128 128\n255\n")
        header_len = len(b"P5\n128 128\n255\n")
        assert len(data) == header_len + 128 * 128

    def test_invert_flag(self, result, tmp_path):
        dark = tmp_path / "dark.pgm"
        bright = tmp_path / "bright.pgm"
        dist = result.write_distribution
        dist.to_pgm(str(dark), invert=True)
        dist.to_pgm(str(bright), invert=False)
        header = len(b"P5\n128 128\n255\n")
        dark_pixels = np.frombuffer(dark.read_bytes()[header:], np.uint8)
        bright_pixels = np.frombuffer(bright.read_bytes()[header:], np.uint8)
        assert np.array_equal(dark_pixels, 255 - bright_pixels)
        # The hottest cell renders black when inverted.
        assert dark_pixels.min() == 0
