"""verify integrated: simulator/engine hooks, CLI subcommand, properties.

The tentpole contract: the same static passes run (a) standalone via
``verify_mapping``, (b) automatically inside ``EnduranceSimulator.run``
(raising :class:`VerificationError`), (c) before engine dispatch (bad
specs fail without consuming a worker), and (d) behind the
``repro-endurance verify`` subcommand with conventional exit codes.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.config import BalanceConfig
from repro.cli import main
from repro.core.simulator import EnduranceSimulator
from repro.engine import ExperimentEngine, JobSpec, JobStatus
from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder
from repro.telemetry import Telemetry, set_telemetry
from repro.verify import VerificationError, verify_mapping, verify_spec
from repro.workloads.base import Phase, Workload
from repro.workloads.multiply import ParallelMultiplication
from repro.workloads.vectoradd import VectorAdd


class BrokenSchedule(Workload):
    """A real workload whose hand-written schedule drifted (RPR008)."""

    name = "broken-schedule"

    def __init__(self):
        self.inner = VectorAdd(bits=8)

    def build(self, architecture):
        mapping = self.inner.build(architecture)
        mapping.phases = [Phase("bogus", 1, 1)]
        mapping.workload_name = self.name
        return mapping


class TestVerifyMappingOnShippedWorkloads:
    @pytest.mark.parametrize("label", ["StxSt", "RaxRa", "BsxBs+Hw"])
    def test_clean_across_configs(self, small_arch, label):
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        report = verify_mapping(
            mapping, BalanceConfig.from_label(label), functional=False
        )
        assert report.ok

    def test_functional_mode_flags_placeholder_tags_as_errors(self, small_arch):
        # Wear-view canonical programs are not necessarily evaluatable;
        # functional=False is what the simulator/engine rely on.
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        relaxed = verify_mapping(mapping, functional=False)
        assert not relaxed.errors


class TestSimulatorHook:
    def test_run_verifies_and_rejects_broken_schedule(self, tiny_arch):
        sim = EnduranceSimulator(tiny_arch)
        with pytest.raises(VerificationError) as excinfo:
            sim.run(
                BrokenSchedule(), BalanceConfig.from_label("StxSt"),
                iterations=5,
            )
        assert "RPR008" in excinfo.value.report.codes()
        assert "verification failed" not in str(excinfo.value)  # raw report

    def test_clean_run_passes_and_memoizes(self, tiny_arch):
        sim = EnduranceSimulator(tiny_arch)
        config = BalanceConfig.from_label("StxSt")
        workload = VectorAdd(bits=8)
        sim.run(workload, config, iterations=5)
        assert len(sim._verified) == 1
        sim.run(workload, config, iterations=5)  # memoized, no re-verify
        assert len(sim._verified) == 1

    def test_verify_phase_counted_in_telemetry(self, tiny_arch):
        fresh = Telemetry()
        previous = set_telemetry(fresh)
        try:
            sim = EnduranceSimulator(tiny_arch)
            sim.run(
                VectorAdd(bits=8), BalanceConfig.from_label("StxSt"),
                iterations=5,
            )
            assert fresh.counters.get("verify.runs", 0) >= 1
        finally:
            set_telemetry(previous)


class TestEngineHook:
    def test_bad_spec_rejected_before_dispatch(self, tiny_arch):
        spec = JobSpec(
            workload=BrokenSchedule(),
            architecture=tiny_arch,
            config=BalanceConfig.from_label("StxSt"),
            iterations=5,
            seed=3,
        )
        (outcome,) = ExperimentEngine().run([spec])
        assert outcome.status is JobStatus.FAILED
        assert "verification failed" in outcome.error
        assert "RPR008" in outcome.error

    def test_verify_spec_reports_instead_of_raising(self, tiny_arch):
        spec = JobSpec(
            workload=BrokenSchedule(),
            architecture=tiny_arch,
            config=BalanceConfig.from_label("StxSt"),
            iterations=5,
            seed=3,
        )
        report = verify_spec(spec)
        assert "RPR008" in report.codes()

    def test_good_specs_unaffected(self, tiny_arch):
        spec = JobSpec(
            workload=ParallelMultiplication(bits=8),
            architecture=tiny_arch,
            config=BalanceConfig.from_label("RaxRa"),
            iterations=20,
            seed=3,
        )
        (outcome,) = ExperimentEngine().run([spec])
        assert outcome.status is JobStatus.COMPLETED

    def test_verify_false_skips_the_gate(self, tiny_arch):
        spec = JobSpec(
            workload=BrokenSchedule(),
            architecture=tiny_arch,
            config=BalanceConfig.from_label("StxSt"),
            iterations=5,
            seed=3,
        )
        (outcome,) = ExperimentEngine(verify=False).run([spec])
        # Pre-dispatch gating is off, so the defect is only caught by the
        # simulator's own auto-verify — after dispatch, burning retries.
        assert outcome.status is JobStatus.FAILED
        assert not outcome.error.startswith("verification failed")
        assert outcome.attempts >= 2


class TestVerifyCLI:
    def test_single_combination_exits_zero(self, capsys):
        code = main([
            "verify", "--workload", "add", "--library", "nand",
            "--config", "StxSt",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no diagnostics" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "verify", "--workload", "mult", "--library", "minimal",
            "--config", "BsxBs+Hw", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 0

    def test_unfittable_geometry_exits_one_with_rpr003(self, capsys):
        code = main([
            "--rows", "64", "--cols", "64",
            "verify", "--workload", "mult", "--library", "nand",
            "--config", "StxSt",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "cannot be built on this geometry" in out

    def test_verify_in_help(self):
        from repro.cli import build_parser

        assert "verify" in build_parser().format_help()


def _random_program(data):
    """A random straight-line gate program over two small operands."""
    library = data.draw(st.sampled_from([NAND_LIBRARY, MINIMAL_LIBRARY]))
    width = data.draw(st.integers(2, 4))
    builder = LaneProgramBuilder(library, name="prop")
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    cells = [a[i] for i in range(width)] + [b[i] for i in range(width)]
    ops = [op for op in GateOp if library.supports(op)]
    for _ in range(data.draw(st.integers(1, 12))):
        op = data.draw(st.sampled_from(ops))
        inputs = [data.draw(st.sampled_from(cells)) for _ in range(op.arity)]
        cells.append(builder.gate(op, *inputs))
    result = BitVector((cells[-1],))
    builder.mark_output("r", result)
    builder.read_out(result, "r")
    program = builder.finish()
    return program, width


class TestScalarBatchEquivalence:
    """Any program passing the hazard/dataflow passes executes
    identically under ``evaluate`` and the compiled batch kernel."""

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_agree(self, data):
        program, width = _random_program(data)
        from repro.verify import check_dataflow, check_levels

        hazards = [
            d
            for d in check_dataflow(program) + check_levels(program)
            if d.severity.value == "error"
        ]
        assert hazards == []  # builder-produced programs are well-formed

        draws = 3
        values_a = data.draw(
            st.lists(
                st.integers(0, 2**width - 1),
                min_size=draws, max_size=draws,
            )
        )
        values_b = data.draw(
            st.lists(
                st.integers(0, 2**width - 1),
                min_size=draws, max_size=draws,
            )
        )
        batch_outputs, batch_readouts = program.compiled().evaluate_batch(
            {"a": values_a, "b": values_b}, draws=draws
        )
        for n in range(draws):
            outputs, readouts = program.evaluate(
                {"a": values_a[n], "b": values_b[n]}
            )
            assert outputs["r"] == int(batch_outputs["r"][n])
            assert readouts["r"] == list(batch_readouts["r"][n])
