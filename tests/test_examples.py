"""The example scripts must run end-to-end on the public API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name, argv=None, monkeypatch=None):
    if monkeypatch is not None and argv is not None:
        monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "lifetime improvement" in out
        assert "days" in out

    def test_wear_leveling_study(self, capsys, monkeypatch):
        _run(
            "wear_leveling_study.py",
            argv=["wear_leveling_study.py", "mult"],
            monkeypatch=monkeypatch,
        )
        out = capsys.readouterr().out
        assert "best configuration" in out
        assert "RaxBs+Hw" in out

    def test_wear_leveling_rejects_unknown_workload(self, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["wear_leveling_study.py", "sorting"]
        )
        with pytest.raises(SystemExit, match="unknown workload"):
            _run("wear_leveling_study.py")

    def test_failed_cell_study(self, capsys):
        _run("failed_cell_study.py")
        out = capsys.readouterr().out
        assert "usable bits per lane" in out
        assert "Lane-set workaround" in out

    def test_technology_explorer(self, capsys):
        _run("technology_explorer.py")
        out = capsys.readouterr().out
        assert "MRAM" in out and "PCM" in out
        assert "days" in out

    def test_design_space_tour(self, capsys):
        _run("design_space_tour.py")
        out = capsys.readouterr().out
        assert "Gate fabric" in out
        assert "repacking" in out
        assert "Deployment" in out

    def test_resumable_sweep(self, capsys, monkeypatch, tmp_path):
        cache = tmp_path / "store"
        _run(
            "resumable_sweep.py",
            argv=["resumable_sweep.py", str(cache)],
            monkeypatch=monkeypatch,
        )
        out = capsys.readouterr().out
        assert "killed after 6 jobs" in out
        assert "resumes from the store" in out
        # the resume pass reports 6 cache hits out of 18 jobs
        assert "18 job(s): 6 cached" in out
        assert "best configuration" in out

    def test_resumable_sweep_second_run_all_hits(
        self, capsys, monkeypatch, tmp_path
    ):
        cache = tmp_path / "store"
        argv = ["resumable_sweep.py", str(cache)]
        _run("resumable_sweep.py", argv=argv, monkeypatch=monkeypatch)
        capsys.readouterr()
        _run("resumable_sweep.py", argv=argv, monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "18 job(s): 18 cached" in out

    def test_traced_sweep(self, capsys, monkeypatch, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _run(
            "traced_sweep.py",
            argv=["traced_sweep.py", str(trace)],
            monkeypatch=monkeypatch,
        )
        out = capsys.readouterr().out
        assert "swept 2 recompile intervals" in out
        assert "simulations: 3 run(s)" in out
        assert trace.exists()

        from repro.telemetry import summarize_trace

        summary = summarize_trace(str(trace))
        assert summary["events"]["simulation"] == 3
        assert summary["events"]["grid_progress"] == 3
