"""Golden diagnostics: seeded broken artifacts pin exact RPR0xx codes.

Each checker class is demonstrated by at least one deliberately broken
program/config/schedule whose diagnostic code, severity, and location
are asserted exactly — the codes are append-only public contract.
"""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.gates.library import NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.adders import full_adder
from repro.synth.bits import BitVector
from repro.synth.comparator import compare_ge
from repro.synth.program import (
    ConstBit,
    LaneProgram,
    LaneProgramBuilder,
    OperandBit,
    ReadInstr,
    WriteInstr,
)
from repro.verify import (
    CODES,
    Severity,
    check_bounds,
    check_checkpoint,
    check_config,
    check_dataflow,
    check_draw_plan,
    check_level_segments,
    check_levels,
    check_manifest,
    check_permutation_rows,
    check_profile_conservation,
    check_schedule,
    check_shard_plan,
    check_shard_races,
    check_stream_keys,
    check_trace,
    check_window_bound,
    derive_stream_keys,
    self_lint,
    verify_network,
    verify_program,
)
from repro.workloads.base import Phase
from repro.workloads.vectoradd import VectorAdd


def program(instructions, footprint, inputs=None, outputs=None, name="g"):
    return LaneProgram(name, instructions, footprint, inputs or {}, outputs or {})


def small_program(bits=2):
    """A tiny, fully clean NAND program (the golden *passing* artifact)."""
    builder = LaneProgramBuilder(NAND_LIBRARY, name="clean")
    a = builder.input_vector("a", bits)
    out = a[0]
    for i in range(1, bits):
        out = builder.gate(GateOp.NAND, out, a[i])
    builder.mark_output("r", BitVector((out,)))
    builder.read_out(BitVector((out,)), "r")
    return builder.finish()


class TestRPR001UninitializedRead:
    def test_read_of_unwritten_cell(self):
        p = program(
            [
                WriteInstr(0, OperandBit("a", 0)),
                ReadInstr(0),
                ReadInstr(1),
            ],
            footprint=2,
            inputs={"a": (0,)},
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR001"
        assert d.severity is Severity.ERROR
        assert d.location.instruction == 2
        assert d.location.address == 1

    def test_each_cell_reported_once(self):
        p = program([ReadInstr(1), ReadInstr(1)], footprint=2)
        assert [d.code for d in check_dataflow(p)] == ["RPR001"]


class TestRPR002DeadWrite:
    def test_write_after_write_without_read(self):
        p = program(
            [
                WriteInstr(0, ConstBit(1)),
                WriteInstr(0, ConstBit(0)),
                ReadInstr(0),
            ],
            footprint=1,
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR002"
        assert d.severity is Severity.WARNING
        assert d.location.instruction == 0

    def test_final_write_never_read(self):
        p = program([WriteInstr(0, ConstBit(1))], footprint=1)
        (d,) = check_dataflow(p)
        assert d.code == "RPR002"
        assert "never read" in d.message

    def test_scratch_writes_exempt(self):
        # source=None models presets/clears whose value never matters.
        p = program([WriteInstr(0)], footprint=1)
        assert check_dataflow(p) == []


class TestRPR003AndRPR009Bounds:
    def test_footprint_exceeds_lane(self):
        p = small_program()
        (d,) = check_bounds(p, lane_size=p.footprint - 1)
        assert d.code == "RPR003"
        assert d.severity is Severity.ERROR
        assert d.location.program == p.name

    def test_spare_bit_requirement(self):
        p = small_program()
        (d,) = check_bounds(p, lane_size=p.footprint, spare_bit=True)
        assert d.code == "RPR009"
        assert "spare bit" in d.message

    def test_fits_cleanly(self):
        p = small_program()
        assert check_bounds(p, lane_size=p.footprint + 1, spare_bit=True) == []


class TestRPR004Coverage:
    def test_duplicate_stream_slot(self):
        p = program(
            [
                WriteInstr(0, ConstBit(1)),
                ReadInstr(0, tag="t", index=0),
                ReadInstr(0, tag="t", index=0),
            ],
            footprint=1,
        )
        codes = [d.code for d in check_dataflow(p)]
        assert codes == ["RPR004"]

    def test_stream_gap(self):
        p = program(
            [WriteInstr(0, ConstBit(1)), ReadInstr(0, tag="t", index=1)],
            footprint=1,
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR004"
        assert "slots [0]" in d.message

    def test_unwritten_declared_output(self):
        p = program([], footprint=1, outputs={"r": (0,)})
        (d,) = check_dataflow(p)
        assert d.code == "RPR004"
        assert "no instruction writes" in d.message
        assert d.location.address == 0


class _FakeLevel:
    """A corrupted fused gate level (the compiler never emits one)."""

    def __init__(self, inputs, outputs):
        self.input_addresses = np.asarray(inputs, dtype=np.int64)
        self.output_addresses = np.asarray(outputs, dtype=np.int64)


class TestRPR005LevelHazards:
    def test_write_write_race(self):
        (d,) = check_level_segments([_FakeLevel([0, 1], [5, 5])], "bad")
        assert d.code == "RPR005"
        assert "writes cell 5 twice" in d.message
        assert d.location.place == "level 0"

    def test_read_write_race(self):
        (d,) = check_level_segments([_FakeLevel([2, 3], [2])], "bad")
        assert d.code == "RPR005"
        assert "reads and writes cell 2" in d.message

    def test_compiled_levels_are_hazard_free(self):
        assert check_levels(small_program(4)) == []


class TestRPR006ProfileConservation:
    def test_poisoned_interpreter_counts_detected(self):
        p = small_program()
        # Corrupt the cached interpreter write profile; the compiled SoA
        # arrays still tell the truth, so conservation must fail.
        p._counts_cache[("write", p.footprint, False)] = np.zeros(
            p.footprint, dtype=np.int64
        )
        diagnostics = check_profile_conservation(p)
        assert [d.code for d in diagnostics] == ["RPR006"]
        assert "write profile differs" in diagnostics[0].message

    def test_healthy_program_conserves(self):
        assert check_profile_conservation(small_program(), lane_size=64) == []


class TestRPR007Permutations:
    def test_repeated_address_rejected(self):
        (d,) = check_permutation_rows(np.array([[0, 0, 2]]), 3, "test map")
        assert d.code == "RPR007"
        assert d.location.place == "test map, epoch 0"

    def test_identity_accepted(self):
        assert check_permutation_rows(np.arange(8)[None, :], 8, "id") == []


class TestRPR008Schedule:
    def test_doctored_phase_list_detected(self, tiny_arch):
        mapping = VectorAdd(bits=8).build(tiny_arch)
        mapping.phases = [Phase("bogus", 1, 1)]
        codes = [d.code for d in check_schedule(mapping)]
        assert "RPR008" in codes

    def test_phase_wider_than_array_detected(self, tiny_arch):
        mapping = VectorAdd(bits=8).build(tiny_arch)
        lanes = tiny_arch.lane_count
        mapping.phases = list(mapping.phases) + [Phase("ghost", 0, lanes + 1)]
        messages = [d.message for d in check_schedule(mapping)]
        assert any("lanes but the array has only" in m for m in messages)

    def test_shipped_schedule_clean(self, tiny_arch):
        assert check_schedule(VectorAdd(bits=8).build(tiny_arch)) == []


class TestRPR010Config:
    def test_wear_aware_within_lane_rejected(self):
        config = BalanceConfig.from_label("WaxSt")
        diagnostics = check_config(config, lane_size=16, lane_count=4)
        assert "RPR010" in [d.code for d in diagnostics]
        (d,) = [d for d in diagnostics if d.code == "RPR010"]
        assert config.label in (d.location.place or "")

    def test_wear_aware_between_lanes_accepted(self):
        config = BalanceConfig.from_label("StxWa")
        diagnostics = check_config(
            config, lane_size=16, lane_count=4,
            lane_loads=np.array([3.0, 1.0, 2.0, 0.0]),
        )
        assert diagnostics == []


class TestVerifyNetwork:
    def sender(self, tag="t", width=1, name="send"):
        builder = LaneProgramBuilder(NAND_LIBRARY, name=name)
        a = builder.input_vector("a", width)
        builder.read_out(a, tag)
        return builder.finish()

    def receiver(self, tag="t", width=1, name="recv"):
        builder = LaneProgramBuilder(NAND_LIBRARY, name=name)
        v = builder.receive_vector(tag, width)
        builder.read_out(v, f"{name}-out")
        return builder.finish()

    def test_clean_two_lane_network(self):
        report = verify_network(
            {1: self.sender(), 0: self.receiver()}, order=[1, 0]
        )
        assert report.ok

    def test_order_mismatch(self):
        report = verify_network({0: self.sender()}, order=[0, 1])
        assert report.codes() == ["RPR004"]

    def test_consumed_but_unproduced_tag(self):
        report = verify_network({0: self.receiver()}, order=[0])
        (d,) = report.errors
        assert d.code == "RPR004"
        assert "no earlier lane produces" in d.message

    def test_preseeded_external_tag_accepted(self):
        report = verify_network(
            {0: self.receiver()}, order=[0], externals=["t"]
        )
        assert report.ok

    def test_insufficient_producer_width(self):
        report = verify_network(
            {1: self.sender(width=1), 0: self.receiver(width=2)},
            order=[1, 0],
        )
        (d,) = report.errors
        assert d.code == "RPR004"
        assert "carries only 1 bit" in d.message

    def test_duplicate_production(self):
        report = verify_network(
            {
                2: self.sender(name="send-a"),
                1: self.sender(name="send-b"),
                0: self.receiver(),
            },
            order=[2, 1, 0],
        )
        assert any(
            "produced by more than one lane" in d.message
            for d in report.errors
        )


class TestComparatorBeforeAfter:
    """Satellite: the checker motivated the carry-only comparator.

    The pre-cleanup comparator synthesized full adders and discarded
    every sum bit — exactly the dead writes RPR002 flags. The shipped
    carry-only chain is warning-free.
    """

    BITS = 4

    def _before(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="cmp-full-adder")
        a = builder.input_vector("a", self.BITS)
        b = builder.input_vector("b", self.BITS)
        carry = builder.const_bit(1)
        for i in range(self.BITS):
            nb = builder.not_bit(b[i])
            _sum, carry = full_adder(builder, a[i], nb, carry)
        builder.mark_output("ge", BitVector((carry,)))
        builder.read_out(BitVector((carry,)), "ge")
        return builder.finish()

    def _after(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="cmp-carry-only")
        a = builder.input_vector("a", self.BITS)
        b = builder.input_vector("b", self.BITS)
        ge = compare_ge(builder, a, b)
        builder.mark_output("ge", BitVector((ge,)))
        builder.read_out(BitVector((ge,)), "ge")
        return builder.finish()

    def test_full_adder_comparator_leaves_dead_writes(self):
        report = verify_program(self._before())
        dead = [d for d in report if d.code == "RPR002"]
        assert len(dead) >= self.BITS  # one discarded sum bit per stage

    def test_carry_only_comparator_is_clean(self):
        report = verify_program(self._after())
        assert report.ok

    def test_both_compute_the_same_predicate(self):
        before, after = self._before(), self._after()
        for a in range(2**self.BITS):
            for b in range(0, 2**self.BITS, 3):
                expected = int(a >= b)
                assert before.evaluate({"a": a, "b": b})[0]["ge"] == expected
                assert after.evaluate({"a": a, "b": b})[0]["ge"] == expected


class TestVerifyProgramComposition:
    def test_clean_program_full_pass(self):
        report = verify_program(small_program(4), lane_size=64)
        assert report.ok

    def test_broken_program_aggregates_codes(self):
        p = program(
            [ReadInstr(0), WriteInstr(1, ConstBit(1))],
            footprint=2,
            outputs={"r": (0,)},
        )
        report = verify_program(p, lane_size=1)
        codes = set(report.codes())
        # uninit read, dead write, unwritten-output coverage, bounds
        assert {"RPR001", "RPR002", "RPR003"} <= codes


class TestRegistryAppendOnly:
    """The registry is an append-only public contract, pinned exactly.

    Adding a code means appending one ``(code, message)`` pair here.
    Any other diff to this baseline — a renamed code, a reworded
    message, a reordered entry — is a contract break this test exists
    to catch.
    """

    BASELINE = (
        ("RPR001", "read of an uninitialized cell"),
        ("RPR002", "dead write (overwritten or never read)"),
        ("RPR003", "cell address outside the array geometry"),
        ("RPR004", "read-out tag / output coverage violation"),
        ("RPR005", "compiled gate level is not hazard-free"),
        ("RPR006", "write/read profile not conserved across representations"),
        ("RPR007", "balance mapping is not a valid permutation"),
        ("RPR008", "schedule violates the lane-load bounds"),
        ("RPR009", "hardware re-mapping has no spare bit"),
        ("RPR010", "invalid balance configuration"),
        ("RPR011", "configuration not eligible for steady-state fast-forward"),
        (
            "RPR012",
            "shard plan is not a disjoint exact cover of the population",
        ),
        (
            "RPR013",
            "plan-level race: overlapping worker write regions or a "
            "parent reduction reading outside fixed shard offsets",
        ),
        ("RPR014", "no-death window bound is unsound for this spec"),
        ("RPR015", "seeded RNG substream key collision or reuse"),
        (
            "RPR016",
            "window-batched draw order can diverge from the serial stream",
        ),
        ("RPR017", "versioned artifact schema violation"),
        ("RPR018", "repo invariant violated (self-lint)"),
    )

    def test_registry_matches_baseline_exactly(self):
        assert tuple(CODES.items()) == self.BASELINE

    def test_codes_are_contiguous_and_ascending(self):
        assert list(CODES) == [
            f"RPR{i:03d}" for i in range(1, len(CODES) + 1)
        ]


class TestRPR012ShardPlan:
    def _plan(self, n, bounds):
        from repro.fleet import ShardPlan

        return ShardPlan(n_arrays=n, bounds=tuple(bounds))

    def test_gap_between_shards(self):
        diagnostics = check_shard_plan(self._plan(8, [(0, 3), (5, 8)]))
        (d,) = diagnostics
        assert d.code == "RPR012"
        assert d.severity is Severity.ERROR
        assert "arrays [3, 5) are covered by no shard" in d.message

    def test_overlap_between_shards(self):
        diagnostics = check_shard_plan(self._plan(8, [(0, 5), (4, 8)]))
        (d,) = diagnostics
        assert d.code == "RPR012"
        assert "covered by more than one shard" in d.message

    def test_out_of_range_bounds(self):
        diagnostics = check_shard_plan(self._plan(8, [(0, 4), (4, 9)]))
        codes = [d.code for d in diagnostics]
        # the bad bound itself, plus the trailing [4, 8) left uncovered
        assert codes == ["RPR012", "RPR012"]

    def test_trailing_gap(self):
        (d,) = check_shard_plan(self._plan(8, [(0, 6)]))
        assert d.code == "RPR012"
        assert "arrays [6, 8)" in d.message

    def test_built_plans_are_exact_covers(self):
        from repro.fleet import ShardPlan

        for n, workers in [(1, 1), (8, 3), (512, 8), (7, 16)]:
            assert check_shard_plan(ShardPlan.build(n, workers)) == []


class TestRPR013ShardRaces:
    def _plan(self, n, bounds):
        from repro.fleet import ShardPlan

        return ShardPlan(n_arrays=n, bounds=tuple(bounds))

    def test_overlapping_writes_race_every_written_region(self):
        diagnostics = check_shard_races(self._plan(8, [(0, 5), (4, 8)]))
        assert diagnostics
        assert all(d.code == "RPR013" for d in diagnostics)
        # cumulative is written in both the advance and window steps
        places = {d.location.place for d in diagnostics}
        assert "step 'advance', region 'cumulative'" in places

    def test_gap_plan_has_no_race(self):
        # A gap is a coverage bug (RPR012) but races nothing: the
        # intervals stay disjoint, so the race detector must stay quiet.
        assert check_shard_races(self._plan(8, [(0, 3), (5, 8)])) == []

    def test_unsorted_bounds_break_fold_order(self):
        diagnostics = check_shard_races(self._plan(8, [(4, 8), (0, 4)]))
        (d,) = diagnostics
        assert d.code == "RPR013"
        assert "out of ascending order" in d.message
        assert d.location.place == "fold, shard 1"

    def test_balanced_plan_is_race_free(self):
        from repro.fleet import ShardPlan

        assert check_shard_races(ShardPlan.build(512, 8), n_cohorts=2) == []


class TestRPR014WindowBound:
    def test_window_above_hard_cap(self):
        (d,) = check_window_bound(2_000_000)
        assert d.code == "RPR014"
        assert "MAX_WINDOW" in d.message

    def test_campaign_vectors_can_reach_a_threshold(self):
        (d,) = check_window_bound(
            10,
            per_day_max=[5.0, 1.0],
            thresholds=[100.0, 200.0],
            cumulative=[60.0, 0.0],
        )
        assert d.code == "RPR014"
        assert d.location.address == 0  # the worst-offending array

    def test_partial_vectors_rejected(self):
        with pytest.raises(ValueError, match="supplied together"):
            check_window_bound(10, per_day_max=[1.0])

    def test_sound_windows_are_clean(self):
        assert check_window_bound(0) == []
        assert check_window_bound(3650) == []
        assert check_window_bound(
            10,
            per_day_max=[1.0],
            thresholds=[1000.0],
            cumulative=[0.0],
        ) == []


class TestRPR015StreamKeys:
    def test_collision_across_consumers(self):
        (d,) = check_stream_keys([("a", (7, 1)), ("b", (7, 1))])
        assert d.code == "RPR015"
        assert "collides with" in d.message

    def test_reuse_by_one_consumer(self):
        (d,) = check_stream_keys([("a", (7, 1)), ("a", (7, 1))])
        assert d.code == "RPR015"
        assert "reused by" in d.message

    def test_fleet_spec_streams_are_disjoint(self):
        from repro.fleet import (
            CohortSpec,
            FleetSpec,
            PopulationSpec,
            TrafficSpec,
        )

        spec = FleetSpec(
            population=PopulationSpec(
                n_arrays=6,
                technology_mix=(("MRAM", 1.0),),
                cohorts=(CohortSpec(workload="add"),),
                endurance_sigma=0.3,
            ),
            traffic=TrafficSpec(model="poisson", rate=1e6),
            days=10,
            seed=7,
        )
        keys = derive_stream_keys(spec)
        assert check_stream_keys(keys) == []
        # traffic plus one budget stream per array
        assert len(keys) == 1 + spec.population.n_arrays


class TestRPR016DrawPlans:
    def test_bursty_batched_draw_rejected(self):
        diagnostics = check_draw_plan(
            "bursty", 1, {"draw": "batched", "split": "batched"}
        )
        (d,) = diagnostics
        assert d.code == "RPR016"
        assert "data-dependent" in d.message

    def test_stochastic_multi_cohort_must_interleave(self):
        diagnostics = check_draw_plan(
            "poisson", 2, {"draw": "batched", "split": "interleaved"}
        )
        (d,) = diagnostics
        assert d.code == "RPR016"
        assert "alternates draw and split" in d.message

    def test_invalid_mode_rejected(self):
        (d,) = check_draw_plan(
            "poisson", 1, {"draw": "vectorised", "split": "batched"}
        )
        assert d.code == "RPR016"
        assert "no valid 'draw' mode" in d.message

    def test_live_decision_procedure_is_sound(self):
        # plan=None checks window_draw_plan itself — the service's
        # actual windowed path — for every model x cohort-count shape.
        for model in ("deterministic", "poisson", "bursty"):
            for n_cohorts in (1, 2, 3):
                assert check_draw_plan(model, n_cohorts) == []


class TestRPR017Schemas:
    def _checkpoint(self, **overrides):
        payload = {
            "version": 1,
            "campaign_hash": "cafe",
            "day": 3,
            "state": {
                "day": 3,
                "cumulative": [1.0, 2.0],
                "death_day": [-1, -1],
                "served": 10,
                "dropped": 0,
                "traffic_state": None,
                "rng_state": {},
            },
        }
        payload.update(overrides)
        return payload

    def test_valid_checkpoint_is_clean(self):
        assert check_checkpoint(self._checkpoint()) == []

    def test_version_drift(self):
        (d,) = check_checkpoint(self._checkpoint(version=99))
        assert d.code == "RPR017"
        assert "CHECKPOINT_VERSION" in d.message

    def test_missing_state_keys(self):
        broken = self._checkpoint()
        del broken["state"]["rng_state"]
        (d,) = check_checkpoint(broken)
        assert d.code == "RPR017"
        assert "rng_state" in d.message

    def test_vector_length_disagreement(self):
        broken = self._checkpoint()
        broken["state"]["death_day"] = [-1]
        (d,) = check_checkpoint(broken)
        assert d.code == "RPR017"
        assert "disagree" in d.message

    def test_manifest_missing_keys(self):
        (d,) = check_manifest({"content_hash": "cafe"})
        assert d.code == "RPR017"
        assert "missing required key(s)" in d.message

    def test_trace_lines_located_individually(self):
        lines = [
            '{"event": "sim_start"',  # unparsable
            "",  # blank lines are fine
            '{"no_event_field": true}',  # schema violation
        ]
        diagnostics = check_trace(lines)
        assert [d.code for d in diagnostics] == ["RPR017", "RPR017"]
        assert diagnostics[0].location.place == "line 1"
        assert diagnostics[1].location.place == "line 3"


class TestRPR018SelfLint:
    def test_shipped_tree_is_clean(self):
        assert self_lint() == []

    def test_undeclared_event_and_counter(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            'tele.emit("no_such_event", x=1)\n'
            'tele.count("no.such.counter")\n'
        )
        diagnostics = self_lint(pkg)
        assert [d.code for d in diagnostics] == ["RPR018", "RPR018"]
        assert "EVENT_FIELDS" in diagnostics[0].message
        assert "KNOWN_COUNTERS" in diagnostics[1].message
        assert diagnostics[0].location.place == "pkg/mod.py:1"

    def test_phantom_dunder_all_export(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            'def real():\n    pass\n\n__all__ = ["real", "phantom"]\n'
        )
        (d,) = self_lint(pkg)
        assert d.code == "RPR018"
        assert "phantom" in d.message

    def test_unregistered_diagnostic_code(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            'd = Diagnostic("RPR999", severity, "message")\n'
        )
        (d,) = self_lint(pkg)
        assert d.code == "RPR018"
        assert "RPR999" in d.message

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def broken(:\n")
        (d,) = self_lint(pkg)
        assert d.code == "RPR018"
        assert "does not parse" in d.message
