"""Golden diagnostics: seeded broken artifacts pin exact RPR0xx codes.

Each checker class is demonstrated by at least one deliberately broken
program/config/schedule whose diagnostic code, severity, and location
are asserted exactly — the codes are append-only public contract.
"""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.gates.library import NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.adders import full_adder
from repro.synth.bits import BitVector
from repro.synth.comparator import compare_ge
from repro.synth.program import (
    ConstBit,
    LaneProgram,
    LaneProgramBuilder,
    OperandBit,
    ReadInstr,
    WriteInstr,
)
from repro.verify import (
    Severity,
    check_bounds,
    check_config,
    check_dataflow,
    check_level_segments,
    check_levels,
    check_permutation_rows,
    check_profile_conservation,
    check_schedule,
    verify_network,
    verify_program,
)
from repro.workloads.base import Phase
from repro.workloads.vectoradd import VectorAdd


def program(instructions, footprint, inputs=None, outputs=None, name="g"):
    return LaneProgram(name, instructions, footprint, inputs or {}, outputs or {})


def small_program(bits=2):
    """A tiny, fully clean NAND program (the golden *passing* artifact)."""
    builder = LaneProgramBuilder(NAND_LIBRARY, name="clean")
    a = builder.input_vector("a", bits)
    out = a[0]
    for i in range(1, bits):
        out = builder.gate(GateOp.NAND, out, a[i])
    builder.mark_output("r", BitVector((out,)))
    builder.read_out(BitVector((out,)), "r")
    return builder.finish()


class TestRPR001UninitializedRead:
    def test_read_of_unwritten_cell(self):
        p = program(
            [
                WriteInstr(0, OperandBit("a", 0)),
                ReadInstr(0),
                ReadInstr(1),
            ],
            footprint=2,
            inputs={"a": (0,)},
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR001"
        assert d.severity is Severity.ERROR
        assert d.location.instruction == 2
        assert d.location.address == 1

    def test_each_cell_reported_once(self):
        p = program([ReadInstr(1), ReadInstr(1)], footprint=2)
        assert [d.code for d in check_dataflow(p)] == ["RPR001"]


class TestRPR002DeadWrite:
    def test_write_after_write_without_read(self):
        p = program(
            [
                WriteInstr(0, ConstBit(1)),
                WriteInstr(0, ConstBit(0)),
                ReadInstr(0),
            ],
            footprint=1,
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR002"
        assert d.severity is Severity.WARNING
        assert d.location.instruction == 0

    def test_final_write_never_read(self):
        p = program([WriteInstr(0, ConstBit(1))], footprint=1)
        (d,) = check_dataflow(p)
        assert d.code == "RPR002"
        assert "never read" in d.message

    def test_scratch_writes_exempt(self):
        # source=None models presets/clears whose value never matters.
        p = program([WriteInstr(0)], footprint=1)
        assert check_dataflow(p) == []


class TestRPR003AndRPR009Bounds:
    def test_footprint_exceeds_lane(self):
        p = small_program()
        (d,) = check_bounds(p, lane_size=p.footprint - 1)
        assert d.code == "RPR003"
        assert d.severity is Severity.ERROR
        assert d.location.program == p.name

    def test_spare_bit_requirement(self):
        p = small_program()
        (d,) = check_bounds(p, lane_size=p.footprint, spare_bit=True)
        assert d.code == "RPR009"
        assert "spare bit" in d.message

    def test_fits_cleanly(self):
        p = small_program()
        assert check_bounds(p, lane_size=p.footprint + 1, spare_bit=True) == []


class TestRPR004Coverage:
    def test_duplicate_stream_slot(self):
        p = program(
            [
                WriteInstr(0, ConstBit(1)),
                ReadInstr(0, tag="t", index=0),
                ReadInstr(0, tag="t", index=0),
            ],
            footprint=1,
        )
        codes = [d.code for d in check_dataflow(p)]
        assert codes == ["RPR004"]

    def test_stream_gap(self):
        p = program(
            [WriteInstr(0, ConstBit(1)), ReadInstr(0, tag="t", index=1)],
            footprint=1,
        )
        (d,) = check_dataflow(p)
        assert d.code == "RPR004"
        assert "slots [0]" in d.message

    def test_unwritten_declared_output(self):
        p = program([], footprint=1, outputs={"r": (0,)})
        (d,) = check_dataflow(p)
        assert d.code == "RPR004"
        assert "no instruction writes" in d.message
        assert d.location.address == 0


class _FakeLevel:
    """A corrupted fused gate level (the compiler never emits one)."""

    def __init__(self, inputs, outputs):
        self.input_addresses = np.asarray(inputs, dtype=np.int64)
        self.output_addresses = np.asarray(outputs, dtype=np.int64)


class TestRPR005LevelHazards:
    def test_write_write_race(self):
        (d,) = check_level_segments([_FakeLevel([0, 1], [5, 5])], "bad")
        assert d.code == "RPR005"
        assert "writes cell 5 twice" in d.message
        assert d.location.place == "level 0"

    def test_read_write_race(self):
        (d,) = check_level_segments([_FakeLevel([2, 3], [2])], "bad")
        assert d.code == "RPR005"
        assert "reads and writes cell 2" in d.message

    def test_compiled_levels_are_hazard_free(self):
        assert check_levels(small_program(4)) == []


class TestRPR006ProfileConservation:
    def test_poisoned_interpreter_counts_detected(self):
        p = small_program()
        # Corrupt the cached interpreter write profile; the compiled SoA
        # arrays still tell the truth, so conservation must fail.
        p._counts_cache[("write", p.footprint, False)] = np.zeros(
            p.footprint, dtype=np.int64
        )
        diagnostics = check_profile_conservation(p)
        assert [d.code for d in diagnostics] == ["RPR006"]
        assert "write profile differs" in diagnostics[0].message

    def test_healthy_program_conserves(self):
        assert check_profile_conservation(small_program(), lane_size=64) == []


class TestRPR007Permutations:
    def test_repeated_address_rejected(self):
        (d,) = check_permutation_rows(np.array([[0, 0, 2]]), 3, "test map")
        assert d.code == "RPR007"
        assert d.location.place == "test map, epoch 0"

    def test_identity_accepted(self):
        assert check_permutation_rows(np.arange(8)[None, :], 8, "id") == []


class TestRPR008Schedule:
    def test_doctored_phase_list_detected(self, tiny_arch):
        mapping = VectorAdd(bits=8).build(tiny_arch)
        mapping.phases = [Phase("bogus", 1, 1)]
        codes = [d.code for d in check_schedule(mapping)]
        assert "RPR008" in codes

    def test_phase_wider_than_array_detected(self, tiny_arch):
        mapping = VectorAdd(bits=8).build(tiny_arch)
        lanes = tiny_arch.lane_count
        mapping.phases = list(mapping.phases) + [Phase("ghost", 0, lanes + 1)]
        messages = [d.message for d in check_schedule(mapping)]
        assert any("lanes but the array has only" in m for m in messages)

    def test_shipped_schedule_clean(self, tiny_arch):
        assert check_schedule(VectorAdd(bits=8).build(tiny_arch)) == []


class TestRPR010Config:
    def test_wear_aware_within_lane_rejected(self):
        config = BalanceConfig.from_label("WaxSt")
        diagnostics = check_config(config, lane_size=16, lane_count=4)
        assert "RPR010" in [d.code for d in diagnostics]
        (d,) = [d for d in diagnostics if d.code == "RPR010"]
        assert config.label in (d.location.place or "")

    def test_wear_aware_between_lanes_accepted(self):
        config = BalanceConfig.from_label("StxWa")
        diagnostics = check_config(
            config, lane_size=16, lane_count=4,
            lane_loads=np.array([3.0, 1.0, 2.0, 0.0]),
        )
        assert diagnostics == []


class TestVerifyNetwork:
    def sender(self, tag="t", width=1, name="send"):
        builder = LaneProgramBuilder(NAND_LIBRARY, name=name)
        a = builder.input_vector("a", width)
        builder.read_out(a, tag)
        return builder.finish()

    def receiver(self, tag="t", width=1, name="recv"):
        builder = LaneProgramBuilder(NAND_LIBRARY, name=name)
        v = builder.receive_vector(tag, width)
        builder.read_out(v, f"{name}-out")
        return builder.finish()

    def test_clean_two_lane_network(self):
        report = verify_network(
            {1: self.sender(), 0: self.receiver()}, order=[1, 0]
        )
        assert report.ok

    def test_order_mismatch(self):
        report = verify_network({0: self.sender()}, order=[0, 1])
        assert report.codes() == ["RPR004"]

    def test_consumed_but_unproduced_tag(self):
        report = verify_network({0: self.receiver()}, order=[0])
        (d,) = report.errors
        assert d.code == "RPR004"
        assert "no earlier lane produces" in d.message

    def test_preseeded_external_tag_accepted(self):
        report = verify_network(
            {0: self.receiver()}, order=[0], externals=["t"]
        )
        assert report.ok

    def test_insufficient_producer_width(self):
        report = verify_network(
            {1: self.sender(width=1), 0: self.receiver(width=2)},
            order=[1, 0],
        )
        (d,) = report.errors
        assert d.code == "RPR004"
        assert "carries only 1 bit" in d.message

    def test_duplicate_production(self):
        report = verify_network(
            {
                2: self.sender(name="send-a"),
                1: self.sender(name="send-b"),
                0: self.receiver(),
            },
            order=[2, 1, 0],
        )
        assert any(
            "produced by more than one lane" in d.message
            for d in report.errors
        )


class TestComparatorBeforeAfter:
    """Satellite: the checker motivated the carry-only comparator.

    The pre-cleanup comparator synthesized full adders and discarded
    every sum bit — exactly the dead writes RPR002 flags. The shipped
    carry-only chain is warning-free.
    """

    BITS = 4

    def _before(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="cmp-full-adder")
        a = builder.input_vector("a", self.BITS)
        b = builder.input_vector("b", self.BITS)
        carry = builder.const_bit(1)
        for i in range(self.BITS):
            nb = builder.not_bit(b[i])
            _sum, carry = full_adder(builder, a[i], nb, carry)
        builder.mark_output("ge", BitVector((carry,)))
        builder.read_out(BitVector((carry,)), "ge")
        return builder.finish()

    def _after(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="cmp-carry-only")
        a = builder.input_vector("a", self.BITS)
        b = builder.input_vector("b", self.BITS)
        ge = compare_ge(builder, a, b)
        builder.mark_output("ge", BitVector((ge,)))
        builder.read_out(BitVector((ge,)), "ge")
        return builder.finish()

    def test_full_adder_comparator_leaves_dead_writes(self):
        report = verify_program(self._before())
        dead = [d for d in report if d.code == "RPR002"]
        assert len(dead) >= self.BITS  # one discarded sum bit per stage

    def test_carry_only_comparator_is_clean(self):
        report = verify_program(self._after())
        assert report.ok

    def test_both_compute_the_same_predicate(self):
        before, after = self._before(), self._after()
        for a in range(2**self.BITS):
            for b in range(0, 2**self.BITS, 3):
                expected = int(a >= b)
                assert before.evaluate({"a": a, "b": b})[0]["ge"] == expected
                assert after.evaluate({"a": a, "b": b})[0]["ge"] == expected


class TestVerifyProgramComposition:
    def test_clean_program_full_pass(self):
        report = verify_program(small_program(4), lane_size=64)
        assert report.ok

    def test_broken_program_aggregates_codes(self):
        p = program(
            [ReadInstr(0), WriteInstr(1, ConstBit(1))],
            footprint=2,
            outputs={"r": (0,)},
        )
        report = verify_program(p, lane_size=1)
        codes = set(report.codes())
        # uninit read, dead write, unwritten-output coverage, bounds
        assert {"RPR001", "RPR002", "RPR003"} <= codes
