"""Tests for repro.core.failure: progressive failure and repacking."""

import numpy as np
import pytest

from repro.array.geometry import Orientation
from repro.balance.config import BalanceConfig
from repro.core.failure import (
    cell_failure_times,
    failure_timeline,
    minimum_footprint,
    offset_death_times,
)
from repro.core.simulator import EnduranceSimulator
from repro.devices.endurance import LognormalEndurance, UniformEndurance
from repro.workloads.multiply import ParallelMultiplication


class TestCellFailureTimes:
    def test_budget_over_rate(self):
        rates = np.array([[1.0, 2.0], [0.0, 4.0]])
        budgets = np.full((2, 2), 8.0)
        times = cell_failure_times(rates, budgets)
        assert times[0, 0] == 8.0
        assert times[0, 1] == 4.0
        assert np.isinf(times[1, 0])  # never written, never fails
        assert times[1, 1] == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cell_failure_times(np.ones((2, 2)), np.ones(4))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            cell_failure_times(np.array([[-1.0]]), np.array([[1.0]]))


class TestOffsetDeathTimes:
    def test_column_parallel_min_over_lanes(self):
        times = np.array([[5.0, 2.0], [7.0, 9.0]])
        deaths = offset_death_times(times, Orientation.COLUMN_PARALLEL)
        assert deaths.tolist() == [2.0, 7.0]

    def test_row_parallel(self):
        times = np.array([[5.0, 2.0], [7.0, 9.0]])
        deaths = offset_death_times(times, Orientation.ROW_PARALLEL)
        assert deaths.tolist() == [5.0, 2.0]


class TestFailureTimeline:
    @pytest.fixture
    def result(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        return sim.run(
            ParallelMultiplication(bits=8),
            BalanceConfig.from_label("RaxSt+Hw"),
            iterations=500,
            track_reads=False,
        )

    def test_uniform_endurance_gives_no_extension_when_level(self, result):
        # With uniform budgets and near-level wear, everything dies almost
        # together: the repacking extension factor stays close to 1.
        timeline = failure_timeline(
            result, required_offsets=64, endurance_model=UniformEndurance(1e6)
        )
        assert timeline.extension_factor == pytest.approx(1.0, abs=0.2)

    def test_lognormal_spread_makes_repacking_valuable(self, result):
        timeline = failure_timeline(
            result,
            required_offsets=64,
            endurance_model=LognormalEndurance(1e6, sigma=0.6, rng=1),
        )
        assert timeline.extension_factor > 1.5
        assert (
            timeline.unusable_iterations > timeline.first_failure_iterations
        )

    def test_smaller_footprint_survives_longer(self, result):
        # Budgets are drawn per call, so reseed to compare like for like.
        tight = failure_timeline(
            result, required_offsets=120,
            endurance_model=LognormalEndurance(1e6, sigma=0.6, rng=2),
        )
        loose = failure_timeline(
            result, required_offsets=32,
            endurance_model=LognormalEndurance(1e6, sigma=0.6, rng=2),
        )
        assert loose.unusable_iterations >= tight.unusable_iterations
        assert loose.first_failure_iterations == pytest.approx(
            tight.first_failure_iterations
        )

    def test_first_failure_matches_eq4(self, result):
        from repro.core.lifetime import lifetime_from_result

        timeline = failure_timeline(
            result, required_offsets=64, endurance_model=UniformEndurance(1e6)
        )
        eq4 = lifetime_from_result(
            result, endurance_model=UniformEndurance(1e6)
        )
        assert timeline.first_failure_iterations == pytest.approx(
            eq4.iterations_to_failure
        )

    def test_required_offsets_validation(self, result):
        with pytest.raises(ValueError):
            failure_timeline(result, required_offsets=0)
        with pytest.raises(ValueError):
            failure_timeline(
                result, required_offsets=result.architecture.lane_size + 1
            )

    def test_usable_offsets_at(self, result):
        model = UniformEndurance(1e6)
        timeline = failure_timeline(result, 64, endurance_model=model)
        rates = result.state.write_counts / result.iterations
        deaths = offset_death_times(
            cell_failure_times(rates, model.sample_budgets(rates.shape)),
            result.architecture.orientation,
        )
        assert timeline.usable_offsets_at(0.0, deaths) == np.count_nonzero(
            deaths > 0
        )


class TestMinimumFootprint:
    def test_compact_footprint_independent_of_policy(self, small_arch):
        from repro.synth.bits import AllocationPolicy

        ring = ParallelMultiplication(bits=8)
        compact = ParallelMultiplication(
            bits=8, allocation_policy=AllocationPolicy.LOWEST_FIRST
        )
        assert minimum_footprint(ring, small_arch) == minimum_footprint(
            compact, small_arch
        )

    def test_footprint_is_small(self, small_arch):
        footprint = minimum_footprint(
            ParallelMultiplication(bits=8), small_arch
        )
        assert 16 < footprint < 80
