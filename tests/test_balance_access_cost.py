"""Tests for repro.balance.access_cost (the Fig. 8 argument)."""

import numpy as np
import pytest

from repro.array.geometry import Orientation
from repro.balance.access_cost import (
    access_cost_table,
    bytes_touched,
    expected_random_bytes,
    variable_access_cost,
)
from repro.balance.software import StrategyKind


class TestBytesTouched:
    def test_aligned_word(self):
        assert bytes_touched(np.arange(32)) == 4

    def test_scattered_bits(self):
        assert bytes_touched(np.array([0, 8, 16, 24])) == 4

    def test_empty(self):
        assert bytes_touched(np.array([], dtype=int)) == 0


class TestVariableAccessCost:
    def test_column_parallel_is_always_b(self):
        # Fig. 8: column-parallel reads bits serially regardless of layout.
        for strategy in StrategyKind:
            cost = variable_access_cost(
                strategy, Orientation.COLUMN_PARALLEL, 32, 1024, rng=0
            )
            assert cost == 32

    def test_row_parallel_static_is_byte_aligned(self):
        cost = variable_access_cost(
            StrategyKind.STATIC, Orientation.ROW_PARALLEL, 32, 1024
        )
        assert cost == 4  # 32 bits = 4 bytes

    def test_row_parallel_byte_shift_stays_aligned(self):
        # Byte shifting preserves byte alignment — the whole point of the
        # paper's constraint.
        for epoch in (1, 5, 77):
            cost = variable_access_cost(
                StrategyKind.BYTE_SHIFT, Orientation.ROW_PARALLEL,
                32, 1024, epoch=epoch,
            )
            assert cost == 4

    def test_row_parallel_random_scatters(self):
        costs = [
            variable_access_cost(
                StrategyKind.RANDOM, Orientation.ROW_PARALLEL,
                32, 1024, rng=seed,
            )
            for seed in range(10)
        ]
        assert min(costs) > 10  # far worse than the aligned 4

    def test_validation(self):
        with pytest.raises(ValueError):
            variable_access_cost(
                StrategyKind.STATIC, Orientation.ROW_PARALLEL, 0, 64
            )
        with pytest.raises(ValueError):
            variable_access_cost(
                StrategyKind.STATIC, Orientation.ROW_PARALLEL, 65, 64
            )


class TestExpectedRandomBytes:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = [
            bytes_touched(rng.permutation(1024)[:32]) for _ in range(400)
        ]
        expected = expected_random_bytes(32, 1024)
        assert expected == pytest.approx(np.mean(samples), rel=0.03)

    def test_paper_scale_amplification(self):
        # 32 bits in a 1024-bit lane: ~28 bytes touched vs 4 aligned — the
        # ~7x read amplification that makes Ra memory-unfriendly in
        # row-parallel designs.
        expected = expected_random_bytes(32, 1024)
        assert 26 < expected < 31
        assert expected / 4 > 6

    def test_degenerate_full_lane(self):
        assert expected_random_bytes(64, 64) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_random_bytes(0, 64)
        with pytest.raises(ValueError):
            expected_random_bytes(8, 60)  # not a whole number of bytes


class TestAccessCostTable:
    def test_structure_and_ordering(self):
        rows = access_cost_table(bits=32, lane_size=1024, trials=16, rng=0)
        by_key = {(s, o): c for s, o, c in rows}
        # Column-parallel: all strategies identical.
        assert (
            by_key[("St", "column")]
            == by_key[("Bs", "column")]
            == by_key[("Ra", "column")]
            == 32
        )
        # Row-parallel: St == Bs << Ra.
        assert by_key[("St", "row")] == by_key[("Bs", "row")] == 4
        assert by_key[("Ra", "row")] > 20
