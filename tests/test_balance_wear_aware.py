"""Tests for the wear-aware (Wa) between-lane strategy."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.balance.software import (
    StrategyKind,
    make_permutation,
    wear_aware_permutation,
)
from repro.core.lifetime import lifetime_improvement
from repro.core.simulator import EnduranceSimulator
from repro.workloads.dotproduct import DotProduct
from repro.workloads.multiply import ParallelMultiplication


class TestPermutation:
    def test_heaviest_load_goes_to_coldest_lane(self):
        loads = np.array([10.0, 1.0, 5.0])
        wear = np.array([100.0, 50.0, 10.0])
        perm = wear_aware_permutation(loads, wear)
        assert perm[0] == 2  # heaviest -> coldest
        assert perm[1] == 0  # lightest -> hottest
        assert perm[2] == 1

    def test_result_is_a_permutation(self):
        rng = np.random.default_rng(0)
        perm = wear_aware_permutation(rng.random(64), rng.random(64))
        assert sorted(perm.tolist()) == list(range(64))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wear_aware_permutation(np.ones(3), np.ones(4))

    def test_make_permutation_rejects_wear_aware(self):
        with pytest.raises(ValueError, match="stateful"):
            make_permutation(StrategyKind.WEAR_AWARE, 8, 0)


class TestSimulatorIntegration:
    def test_wear_aware_levels_the_dot_product(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=1)
        workload = DotProduct(n_elements=64, bits=8)
        base = sim.run(workload, BalanceConfig(), 1000, track_reads=False)
        adaptive = sim.run(
            workload,
            BalanceConfig(between=StrategyKind.WEAR_AWARE),
            1000,
            track_reads=False,
        )
        assert lifetime_improvement(adaptive, base) > 1.2

    def test_wear_aware_at_least_matches_random(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=1)
        workload = DotProduct(n_elements=64, bits=8)
        base = sim.run(workload, BalanceConfig(), 1000, track_reads=False)
        random = sim.run(
            workload, BalanceConfig.from_label("StxRa"), 1000,
            track_reads=False,
        )
        adaptive = sim.run(
            workload,
            BalanceConfig(between=StrategyKind.WEAR_AWARE),
            1000,
            track_reads=False,
        )
        assert lifetime_improvement(adaptive, base) >= (
            0.97 * lifetime_improvement(random, base)
        )

    def test_conserves_total_writes(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=1)
        workload = DotProduct(n_elements=64, bits=8)
        base = sim.run(workload, BalanceConfig(), 500, track_reads=False)
        adaptive = sim.run(
            workload,
            BalanceConfig(between=StrategyKind.WEAR_AWARE),
            500,
            track_reads=False,
        )
        assert adaptive.state.total_writes == pytest.approx(
            base.state.total_writes
        )

    def test_noop_for_uniform_workload(self, small_arch):
        # All lanes carry identical loads: wear-aware degenerates to a
        # fixed assignment and changes nothing versus static.
        sim = EnduranceSimulator(small_arch, seed=1)
        workload = ParallelMultiplication(bits=8)
        base = sim.run(workload, BalanceConfig(), 300, track_reads=False)
        adaptive = sim.run(
            workload,
            BalanceConfig(between=StrategyKind.WEAR_AWARE),
            300,
            track_reads=False,
        )
        assert lifetime_improvement(adaptive, base) == pytest.approx(1.0)

    def test_wear_aware_within_lane_rejected(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=1)
        with pytest.raises(ValueError, match="between lanes only"):
            sim.run(
                ParallelMultiplication(bits=8),
                BalanceConfig(within=StrategyKind.WEAR_AWARE),
                10,
            )

    def test_label(self):
        config = BalanceConfig(between=StrategyKind.WEAR_AWARE)
        assert config.label == "StxWa"
        assert BalanceConfig.from_label("StxWa") == config
