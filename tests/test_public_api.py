"""Pin the public API surface of the top-level packages.

These tests fail loudly when a re-export is dropped or an unexported
name leaks into ``__all__`` — the import surface is part of the repo's
contract, not an accident of module internals.
"""

import importlib

import pytest

REPRO_ALL = {
    "__version__",
    # array
    "ArrayGeometry", "ArrayState", "Orientation", "PIMArchitecture",
    "default_architecture",
    # balance
    "BalanceConfig", "StrategyKind", "all_configurations",
    # core
    "EnduranceSimulator", "SimulationSettings", "SimulationResult",
    "WriteDistribution", "LifetimeEstimate", "lifetime_from_result",
    "lifetime_improvement", "configuration_grid", "remap_frequency_sweep",
    "technology_sweep", "eq1_operations_until_total_failure",
    "eq2_seconds_until_total_failure", "FailureTimeline",
    "failure_timeline", "minimum_footprint",
    # devices
    "Technology", "MRAM", "RRAM", "PCM", "technology_by_name",
    # fleet
    "CohortSpec", "FleetReport", "FleetService", "FleetSpec",
    "PopulationSpec", "SurvivalCurve", "TrafficSpec", "kaplan_meier",
    "run_campaign",
    # gates
    "GateOp", "GateLibrary", "NAND_LIBRARY", "MINIMAL_LIBRARY",
    # workloads
    "Workload", "ParallelMultiplication", "DotProduct", "Convolution",
    "ConventionalBaseline", "VectorAdd", "BinaryNeuron",
    "MatrixVectorProduct",
    # workload registry + trace frontend
    "TraceWorkload", "UnknownWorkloadError", "available_workloads",
    "get_workload", "register",
    # telemetry
    "Telemetry", "get_telemetry",
    # verify
    "Diagnostic", "Severity", "VerificationError", "VerifyReport",
    "verify_mapping", "verify_network", "verify_program", "verify_spec",
}

VERIFY_ALL = {
    "CODES", "Diagnostic", "FUNCTIONAL_CODES", "Location", "RegionAccess",
    "Severity",
    "VerificationError", "VerifyReport", "check_bounds", "check_checkpoint",
    "check_config",
    "check_dataflow", "check_draw_plan", "check_fastforward",
    "check_level_segments", "check_levels", "check_manifest",
    "check_permutation_rows", "check_profile_conservation",
    "check_schedule", "check_shard_plan", "check_shard_races",
    "check_stream_keys", "check_streams", "check_trace",
    "check_window_bound", "derive_stream_keys", "executor_access_plan",
    "self_lint", "verify_fleet_spec", "verify_mapping", "verify_network",
    "verify_program", "verify_self", "verify_spec",
}

ENGINE_ALL = {
    "BatchMetrics", "EngineError", "EngineHooks", "ExperimentEngine",
    "JobOutcome", "JobStatus", "JobSpec", "ResultStore", "SPEC_VERSION",
    "SimulationSettings", "TextReporter", "execute_spec", "require_ok",
    "run_simulation",
}

FLEET_ALL = {
    "BUDGET_STREAM", "CHECKPOINT_VERSION", "CampaignSharedMemory",
    "CheckpointManager", "CohortSpec", "DISPATCH_POLICIES", "FleetReport",
    "FleetService", "FleetSpec", "ParallelDayExecutor", "Population",
    "PopulationSpec", "ShardPlan", "SurvivalCurve", "TRAFFIC_MODELS",
    "TRAFFIC_STREAM", "TrafficSpec", "TrafficState", "WORKLOAD_FACTORIES",
    "annual_replacement_rate", "binomial_tail", "canonical_hash",
    "capacity_headroom", "capacity_iterations", "draw_day", "draw_window",
    "format_report", "interleaved_assignment", "kaplan_meier",
    "no_death_window", "proportional_counts", "required_fleet_size",
    "run_campaign", "split_requests", "split_requests_window",
    "window_draw_plan",
}

WORKLOADS_ALL = {
    "Phase", "Workload", "WorkloadMapping", "evaluate_networked",
    "evaluate_networked_batch", "ParallelMultiplication", "DotProduct",
    "Convolution", "ConventionalBaseline", "VectorAdd", "BinaryNeuron",
    "MatrixVectorProduct",
    # registry
    "UnknownWorkloadError", "WorkloadEntry", "WorkloadRegistrationError",
    "available_workloads", "deprecate_workload", "get_workload",
    "get_workload_factory", "register", "unregister", "workload_entries",
    "workload_factories",
    # trace frontend
    "AddressMapping", "TraceLoweringError", "TraceParseError",
    "TraceWorkload",
}

TRACE_ALL = {
    "AddressFormat", "AddressMapping", "GEMV_FIXTURE", "MAPPING_POLICIES",
    "PIMULATOR_FORMAT", "PhysicalAddress", "TraceInstr",
    "TraceLoweringError", "TraceOp", "TraceParseError", "TraceWorkload",
    "fixture_path", "gemv_addresses", "gemv_trace_lines", "iter_trace",
    "load_gemv_fixture", "parse_trace", "write_gemv_trace",
}

TELEMETRY_ALL = {
    "CaptureSink", "EVENT_FIELDS", "JsonlSink", "KNOWN_COUNTERS",
    "LoggingSink",
    "ProgressSink", "Sink", "Telemetry", "TraceSchemaError", "capture",
    "format_stats", "get_telemetry", "iter_trace", "set_telemetry",
    "summarize_trace", "validate_record",
}


@pytest.mark.parametrize(
    "module_name, expected",
    [
        ("repro", REPRO_ALL),
        ("repro.engine", ENGINE_ALL),
        ("repro.fleet", FLEET_ALL),
        ("repro.telemetry", TELEMETRY_ALL),
        ("repro.verify", VERIFY_ALL),
        ("repro.workloads", WORKLOADS_ALL),
        ("repro.workloads.trace", TRACE_ALL),
    ],
)
class TestPublicSurface:
    def test_all_matches_pin(self, module_name, expected):
        module = importlib.import_module(module_name)
        assert set(module.__all__) == expected

    def test_every_name_resolves(self, module_name, expected):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None

    def test_all_is_sorted_unique(self, module_name, expected):
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__))


class TestCrossExports:
    def test_settings_is_the_same_object_everywhere(self):
        import repro
        import repro.core
        import repro.engine

        assert repro.SimulationSettings is repro.core.SimulationSettings
        assert repro.SimulationSettings is repro.engine.SimulationSettings

    def test_registry_view_is_the_same_object_everywhere(self):
        import repro.cli
        import repro.fleet.population
        from repro.workloads.registry import workload_factories

        assert repro.cli._WORKLOADS is workload_factories
        assert (
            repro.fleet.population.WORKLOAD_FACTORIES is workload_factories
        )

    def test_telemetry_is_the_same_object_everywhere(self):
        import repro
        import repro.telemetry

        assert repro.Telemetry is repro.telemetry.Telemetry
        assert repro.get_telemetry is repro.telemetry.get_telemetry
