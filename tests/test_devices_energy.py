"""Tests for repro.devices.energy."""

import pytest

from repro.devices.energy import EnergyModel, OperationCosts
from repro.devices.technology import MRAM, RRAM


class TestOperationCosts:
    def test_addition_combines_fields(self):
        a = OperationCosts(1, 2, 3, 4.0, 5.0)
        b = OperationCosts(10, 20, 30, 40.0, 50.0)
        total = a + b
        assert total == OperationCosts(11, 22, 33, 44.0, 55.0)

    def test_scaling(self):
        costs = OperationCosts(1, 2, 3, 4.0, 5.0)
        scaled = costs.scaled(3)
        assert scaled.sequential_ops == 3
        assert scaled.cell_writes == 9
        assert scaled.latency_s == pytest.approx(12.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OperationCosts(1, 1, 1, 1.0, 1.0).scaled(-1)


class TestEnergyModel:
    def test_latency_is_3ns_per_sequential_op(self):
        model = EnergyModel(MRAM)
        costs = model.costs(sequential_ops=1000, cell_reads=0, cell_writes=0)
        assert costs.latency_s == pytest.approx(1000 * 3e-9)

    def test_energy_weights_reads_and_writes(self):
        model = EnergyModel(MRAM)
        costs = model.costs(sequential_ops=1, cell_reads=10, cell_writes=5)
        expected = 10 * MRAM.read_energy_fj + 5 * MRAM.write_energy_fj
        assert costs.energy_fj == pytest.approx(expected)

    def test_write_energy_dominates(self):
        # NVM writes cost orders of magnitude more than reads.
        for tech in (MRAM, RRAM):
            assert tech.write_energy_fj > 10 * tech.read_energy_fj

    def test_negative_counts_rejected(self):
        model = EnergyModel(MRAM)
        with pytest.raises(ValueError):
            model.costs(-1, 0, 0)

    def test_parallel_gates_share_one_latency_slot(self):
        # 1024 parallel gate writes in one sequential slot: latency of one
        # op, energy of 1024 writes — the PIM trade the paper quantifies.
        model = EnergyModel(MRAM)
        costs = model.costs(sequential_ops=1, cell_reads=2048, cell_writes=1024)
        assert costs.latency_s == pytest.approx(3e-9)
        assert costs.energy_fj > 1024 * MRAM.write_energy_fj
