"""Arrival models: determinism, RNG discipline, and state round-trips."""

import numpy as np
import pytest

from repro.fleet import (
    TrafficSpec,
    TrafficState,
    draw_day,
    draw_window,
    split_requests,
    split_requests_window,
)
from repro.fleet.traffic import (
    BURST,
    CALM,
    capacity_iterations,
    rng_state_from_json,
    rng_state_to_json,
)


class TestSpecs:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            TrafficSpec(model="pareto")

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            TrafficSpec(model="bursty", p_burst=1.5)

    def test_identity_omits_burst_fields_for_simple_models(self):
        assert "burst_factor" not in TrafficSpec(model="poisson").identity()
        assert "burst_factor" in TrafficSpec(model="bursty").identity()

    def test_mean_rate_stationary_mixture(self):
        spec = TrafficSpec(
            model="bursty", rate=100.0, burst_factor=10.0,
            p_burst=0.25, p_calm=0.75,
        )
        # Stationary burst share = 0.25 / (0.25 + 0.75) = 0.25.
        assert spec.mean_rate == pytest.approx(
            100.0 * 0.75 + 1000.0 * 0.25
        )
        assert TrafficSpec(model="poisson", rate=42.0).mean_rate == 42.0


class TestDrawDay:
    def test_deterministic_consumes_no_rng(self):
        spec = TrafficSpec(model="deterministic", rate=500.0)
        rng = np.random.default_rng(0)
        before = rng_state_to_json(rng)
        state = TrafficState()
        assert draw_day(spec, state, rng) == 500
        assert rng_state_to_json(rng) == before

    def test_poisson_reproducible_per_seed(self):
        spec = TrafficSpec(model="poisson", rate=100.0)
        a = [
            draw_day(spec, TrafficState(), np.random.default_rng(1))
            for _ in range(3)
        ]
        assert a[0] == a[1] == a[2]

    def test_bursty_flips_states_and_boosts_rate(self):
        spec = TrafficSpec(
            model="bursty", rate=100.0, burst_factor=50.0,
            p_burst=1.0, p_calm=1.0,
        )
        rng = np.random.default_rng(2)
        state = TrafficState()
        calm_day = draw_day(spec, state, rng)
        assert state.state == BURST  # p_burst=1 always flips
        burst_day = draw_day(spec, state, rng)
        assert state.state == CALM  # p_calm=1 flips back
        assert burst_day > calm_day * 5  # 50x rate dominates noise


class TestSplitRequests:
    def test_single_cohort_takes_all_without_rng(self):
        rng = np.random.default_rng(0)
        before = rng_state_to_json(rng)
        out = split_requests(77, np.array([1.0]), rng)
        assert out.tolist() == [77]
        assert rng_state_to_json(rng) == before

    def test_zero_requests_short_circuit(self):
        rng = np.random.default_rng(0)
        out = split_requests(0, np.array([0.5, 0.5]), rng)
        assert out.tolist() == [0, 0]

    def test_multinomial_conserves_total(self):
        rng = np.random.default_rng(3)
        out = split_requests(1000, np.array([0.2, 0.3, 0.5]), rng)
        assert out.sum() == 1000


class TestDrawWindow:
    """The batched draws must be stream-identical to per-day draws."""

    @pytest.mark.parametrize("model", ["deterministic", "poisson", "bursty"])
    def test_window_pins_per_day_sequence_and_rng_state(self, model):
        spec = TrafficSpec(
            model=model, rate=100.0, burst_factor=8.0,
            p_burst=0.3, p_calm=0.4,
        )
        days = 23
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        state_a, state_b = TrafficState(), TrafficState()
        per_day = [draw_day(spec, state_a, rng_a) for _ in range(days)]
        window = draw_window(spec, state_b, rng_b, days)
        assert window.tolist() == per_day
        # Same bit-generator state afterwards: mixing windowed and
        # per-day stepping mid-campaign cannot perturb later draws.
        assert rng_state_to_json(rng_a) == rng_state_to_json(rng_b)
        assert state_a.state == state_b.state

    def test_poisson_window_is_one_vectorized_call(self):
        # The pin behind the batching: numpy's sized poisson fills the
        # output with sequential scalar draws off the same bit stream.
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        scalar = [int(rng_a.poisson(42.5)) for _ in range(50)]
        assert rng_b.poisson(42.5, size=50).tolist() == scalar

    def test_invalid_days_rejected(self):
        spec = TrafficSpec(model="poisson", rate=10.0)
        with pytest.raises(ValueError, match="days must be positive"):
            draw_window(spec, TrafficState(), np.random.default_rng(0), 0)


class TestSplitRequestsWindow:
    def test_rows_pin_per_day_splits_and_rng_state(self):
        weights = np.array([0.2, 0.3, 0.5])
        totals = [0, 120, 0, 77, 1000, 0, 3]
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        per_day = [split_requests(t, weights, rng_a) for t in totals]
        window = split_requests_window(np.array(totals), weights, rng_b)
        assert window.tolist() == [row.tolist() for row in per_day]
        assert rng_state_to_json(rng_a) == rng_state_to_json(rng_b)

    def test_single_cohort_consumes_no_rng(self):
        rng = np.random.default_rng(0)
        before = rng_state_to_json(rng)
        out = split_requests_window(
            np.array([5, 0, 9]), np.array([1.0]), rng
        )
        assert out.tolist() == [[5], [0], [9]]
        assert rng_state_to_json(rng) == before

    def test_rows_conserve_totals(self):
        totals = np.array([10, 0, 500])
        out = split_requests_window(
            totals, np.array([0.5, 0.5]), np.random.default_rng(3)
        )
        assert out.sum(axis=1).tolist() == totals.tolist()


class TestCapacity:
    def test_full_duty_day(self):
        assert capacity_iterations(1.0, 1.0) == 86400.0

    def test_duty_cycle_scales_linearly(self):
        assert capacity_iterations(2.0, 0.5) == 21600.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            capacity_iterations(0.0, 1.0)
        with pytest.raises(ValueError):
            capacity_iterations(1.0, 0.0)
        with pytest.raises(ValueError):
            capacity_iterations(1.0, 1.5)


class TestRngRoundTrip:
    def test_state_restores_bit_identically(self):
        rng = np.random.default_rng(9)
        rng.poisson(100.0, size=17)  # advance
        payload = rng_state_to_json(rng)

        import json

        restored = rng_state_from_json(json.loads(json.dumps(payload)))
        assert restored.poisson(55.5, size=8).tolist() == (
            rng.poisson(55.5, size=8).tolist()
        )

    def test_traffic_state_round_trip(self):
        state = TrafficState(state=BURST)
        assert TrafficState.from_json(state.to_json()).state == BURST
        assert TrafficState.from_json(TrafficState().to_json()).state == CALM
