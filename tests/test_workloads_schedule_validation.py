"""Every shipped workload's phase schedule must match its programs."""

import pytest

from repro.array.architecture import PINATUBO, default_architecture
from repro.workloads.base import Phase, WorkloadMapping
from repro.workloads.bnn import BinaryNeuron
from repro.workloads.convolution import Convolution
from repro.workloads.dotproduct import DotProduct
from repro.workloads.matvec import MatrixVectorProduct
from repro.workloads.multiply import ParallelMultiplication
from repro.workloads.vectoradd import VectorAdd

WORKLOADS = [
    ParallelMultiplication(bits=16),
    VectorAdd(bits=16),
    DotProduct(n_elements=64, bits=8),
    Convolution(bits=4),
    MatrixVectorProduct(elements_per_row=16, bits=4),
    BinaryNeuron(n_inputs=16),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_schedules_are_exact_with_presets(workload):
    mapping = workload.build(default_architecture(256, 256))
    mapping.validate_schedule(tolerance=0.0)


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_schedules_are_exact_without_presets(workload):
    mapping = workload.build(PINATUBO.resized(256, 256))
    mapping.validate_schedule(tolerance=0.0)


class TestValidatorCatchesDrift:
    def _mapping(self):
        return ParallelMultiplication(bits=8).build(
            default_architecture(128, 64)
        )

    def test_missing_phase_work_detected(self):
        mapping = self._mapping()
        broken = WorkloadMapping(
            workload_name=mapping.workload_name,
            architecture=mapping.architecture,
            assignment=mapping.assignment,
            phases=mapping.phases[:-1],  # drop the read-out phase
        )
        with pytest.raises(ValueError, match="lane-ops"):
            broken.validate_schedule()

    def test_overcommitted_lane_detected(self):
        mapping = self._mapping()
        # A schedule shorter than one lane's own instruction stream: total
        # work is balanced away by inflating active lanes, but invariant 2
        # still trips.
        total = mapping.lane_work()
        broken = WorkloadMapping(
            workload_name=mapping.workload_name,
            architecture=mapping.architecture,
            assignment=mapping.assignment,
            phases=[Phase("squeezed", 10, int(total // 10))],
        )
        with pytest.raises(ValueError, match="sequential slots"):
            broken.validate_schedule(tolerance=0.01)

    def test_tolerance_allows_small_drift(self):
        mapping = self._mapping()
        slightly_off = WorkloadMapping(
            workload_name=mapping.workload_name,
            architecture=mapping.architecture,
            assignment=mapping.assignment,
            phases=list(mapping.phases)
            + [Phase("fudge", 1, 1)],
        )
        with pytest.raises(ValueError):
            slightly_off.validate_schedule(tolerance=0.0)
        slightly_off.validate_schedule(tolerance=0.01)
