"""The AST self-lint pass (RPR018): seeded violations and conservatism.

The golden suite pins one exemplar per violation kind; this file
exercises the lint machinery itself — the registry-shape checks against
tampered ``CODES`` literals, ``__all__`` edge cases the name collector
must understand (tuple targets, try/except import fallbacks), and the
receiver conservatism that keeps ``str.count`` from false-positives.
"""

import pytest

from repro.verify import self_lint
from repro.verify.lint import _top_level_names


def lint_source(tmp_path, source, name="mod.py"):
    """Run the lint over one synthetic module and return its findings."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / name).write_text(source)
    return self_lint(pkg)


class TestRegistryShape:
    """The append-only checks trigger on the file named
    ``verify/diagnostics.py``, wherever the lint root lives."""

    def seed(self, tmp_path, codes_source):
        verify_dir = tmp_path / "pkg" / "verify"
        verify_dir.mkdir(parents=True)
        (verify_dir / "diagnostics.py").write_text(codes_source)
        return self_lint(tmp_path / "pkg")

    def test_contiguous_registry_is_clean(self, tmp_path):
        assert self.seed(
            tmp_path,
            'CODES = {"RPR001": "one", "RPR002": "two"}\n',
        ) == []

    def test_hole_in_the_sequence(self, tmp_path):
        (d,) = self.seed(
            tmp_path,
            'CODES = {"RPR001": "one", "RPR003": "three"}\n',
        )
        assert d.code == "RPR018"
        assert "not contiguous" in d.message
        assert "append-only" in (d.hint or "")

    def test_reordered_registry(self, tmp_path):
        (d,) = self.seed(
            tmp_path,
            'CODES = {"RPR002": "two", "RPR001": "one"}\n',
        )
        assert "not contiguous" in d.message

    def test_empty_message(self, tmp_path):
        diagnostics = self.seed(
            tmp_path,
            'CODES = {"RPR001": ""}\n',
        )
        assert any("non-empty string" in d.message for d in diagnostics)

    def test_missing_codes_literal(self, tmp_path):
        (d,) = self.seed(tmp_path, "OTHER = 1\n")
        assert "no CODES dict literal" in d.message

    def test_computed_key_rejected(self, tmp_path):
        diagnostics = self.seed(
            tmp_path,
            'CODES = {"RPR" + "001": "one"}\n',
        )
        assert any(
            "not a string literal" in d.message for d in diagnostics
        )


class TestReceiverConservatism:
    """Only telemetry-shaped receivers may trigger event/counter
    findings — ``str.count`` and arbitrary ``.emit`` calls must not."""

    def test_str_count_not_flagged(self, tmp_path):
        assert lint_source(tmp_path, 'n = "text".count("t")\n') == []

    def test_unrelated_emit_not_flagged(self, tmp_path):
        assert lint_source(tmp_path, 'socket.emit("anything")\n') == []

    def test_get_telemetry_call_is_flagged(self, tmp_path):
        (d,) = lint_source(
            tmp_path, 'get_telemetry().count("bogus.counter")\n'
        )
        assert d.code == "RPR018"

    def test_non_literal_names_skipped(self, tmp_path):
        # Dynamic names cannot be checked statically; stay quiet.
        assert lint_source(tmp_path, "tele.emit(event_name, x=1)\n") == []

    def test_known_vocabulary_is_clean(self, tmp_path):
        assert lint_source(
            tmp_path,
            'tele.emit("fleet_start", arrays=2, days=1, cohorts=1)\n'
            'tele.count("fleet.days")\n'
            'tele.gauge("sim.epochs_per_s", 100.0)\n',
        ) == []


class TestDunderAllEdgeCases:
    def test_duplicate_entry(self, tmp_path):
        (d,) = lint_source(
            tmp_path,
            'def f():\n    pass\n\n__all__ = ["f", "f"]\n',
        )
        assert "more than once" in d.message

    def test_tuple_assignment_names_count(self, tmp_path):
        assert lint_source(
            tmp_path,
            'a, b = 1, 2\n\n__all__ = ["a", "b"]\n',
        ) == []

    def test_try_except_import_binding_counts(self, tmp_path):
        assert lint_source(
            tmp_path,
            "try:\n"
            "    import numpy as backend\n"
            "except ImportError:\n"
            "    backend = None\n"
            "\n"
            '__all__ = ["backend"]\n',
        ) == []

    def test_aliased_import_binds_the_alias(self, tmp_path):
        diagnostics = lint_source(
            tmp_path,
            "from json import dumps as render\n"
            "\n"
            '__all__ = ["render", "dumps"]\n',
        )
        (d,) = diagnostics
        assert "'dumps'" in d.message


class TestNameCollector:
    def test_collects_every_binding_kind(self):
        import ast

        tree = ast.parse(
            "import os\n"
            "from sys import argv\n"
            "X = 1\n"
            "Y: int = 2\n"
            "a, b = 1, 2\n"
            "def f():\n    pass\n"
            "class C:\n    pass\n"
        )
        names = set(_top_level_names(tree))
        assert {"os", "argv", "X", "Y", "a", "b", "f", "C"} <= names

    def test_nested_names_ignored(self):
        import ast

        tree = ast.parse("def outer():\n    inner = 1\n")
        assert "inner" not in _top_level_names(tree)


class TestShippedTree:
    def test_lint_root_must_be_a_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            self_lint(tmp_path / "nope")

    def test_shipped_package_is_clean(self):
        # The CI contract: the repo always lints itself clean.
        assert self_lint() == []
