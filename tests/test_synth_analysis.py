"""Tests for repro.synth.analysis: the Section 3.1 arithmetic."""

import pytest

from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY
from repro.synth.analysis import (
    OperationCounts,
    adder_counts,
    and_gate_counts,
    conventional_multiplication_counts,
    full_adder_counts,
    half_adder_counts,
    multiplier_counts,
    pim_vs_conventional_write_ratio,
)
from repro.synth.multiplier import multiply
from repro.synth.program import LaneProgramBuilder


class TestPrimitiveCosts:
    def test_nand_primitives(self):
        fa = full_adder_counts(NAND_LIBRARY)
        assert (fa.gates, fa.cell_reads, fa.cell_writes) == (9, 18, 9)
        ha = half_adder_counts(NAND_LIBRARY)
        assert (ha.gates, ha.cell_reads, ha.cell_writes) == (5, 9, 5)
        land = and_gate_counts(NAND_LIBRARY)
        assert (land.gates, land.cell_reads, land.cell_writes) == (1, 2, 1)

    def test_minimal_primitives(self):
        fa = full_adder_counts(MINIMAL_LIBRARY)
        assert (fa.gates, fa.cell_reads, fa.cell_writes) == (5, 10, 5)
        ha = half_adder_counts(MINIMAL_LIBRARY)
        assert (ha.gates, ha.cell_reads, ha.cell_writes) == (2, 4, 2)

    def test_nor_and_costs_three_gates(self):
        assert and_gate_counts(NOR_LIBRARY).gates == 3


class TestMultiplierCounts:
    def test_paper_headline_numbers(self):
        # Section 3.1: 9,824 cell writes and 19,616 cell reads for 32-bit.
        counts = multiplier_counts(32, NAND_LIBRARY)
        assert counts.cell_writes == 9824
        assert counts.cell_reads == 19616
        assert counts.gates == 9824

    def test_per_cell_averages(self):
        # Section 3.1: "an average of 19.16 reads/cell and 9.59 writes/cell"
        # over 1024 cells.
        reads, writes = multiplier_counts(32, NAND_LIBRARY).per_cell(1024)
        assert reads == pytest.approx(19.16, abs=0.01)
        assert writes == pytest.approx(9.59, abs=0.01)

    @pytest.mark.parametrize("bits", [4, 8, 16, 32])
    def test_closed_form_matches_synthesized_program(self, bits):
        # The formula and the executable circuit must agree exactly.
        for library in (NAND_LIBRARY, MINIMAL_LIBRARY, NOR_LIBRARY):
            builder = LaneProgramBuilder(library)
            a = builder.input_vector("a", bits)
            b = builder.input_vector("b", bits)
            multiply(builder, a, b)
            program = builder.finish()
            counts = multiplier_counts(bits, library)
            assert program.gate_count == counts.gates
            assert program.total_reads == counts.cell_reads
            assert program.total_writes - 2 * bits == counts.cell_writes

    def test_width_below_two_rejected(self):
        with pytest.raises(ValueError):
            multiplier_counts(1, NAND_LIBRARY)


class TestConventionalBaseline:
    def test_paper_reference_values(self):
        # "this incurs 64 cell reads and 64 cell writes" (Section 3.1).
        counts = conventional_multiplication_counts(32)
        assert counts.cell_reads == 64
        assert counts.cell_writes == 64
        assert counts.gates == 0

    def test_per_cell_average_is_00625(self):
        reads, writes = conventional_multiplication_counts(32).per_cell(1024)
        assert reads == pytest.approx(0.0625)
        assert writes == pytest.approx(0.0625)

    def test_write_ratio_exceeds_150x(self):
        # The introduction's ">150x more write operations" claim.
        ratio = pim_vs_conventional_write_ratio(32, NAND_LIBRARY)
        assert ratio == pytest.approx(153.5)
        assert ratio > 150


class TestOperationCounts:
    def test_arithmetic(self):
        a = OperationCounts(1, 2, 3)
        assert (a + a) == OperationCounts(2, 4, 6)
        assert 3 * a == OperationCounts(3, 6, 9)

    def test_per_cell_validation(self):
        with pytest.raises(ValueError):
            OperationCounts(1, 1, 1).per_cell(0)

    def test_adder_counts_formula(self):
        counts = adder_counts(32, MINIMAL_LIBRARY)
        assert counts.gates == 5 * 32 - 3
