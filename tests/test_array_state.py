"""Tests for repro.array.state."""

import numpy as np
import pytest

from repro.array.geometry import ArrayGeometry, Orientation
from repro.array.state import ArrayState


class TestSingleCellEvents:
    def test_record_write_column_parallel(self):
        state = ArrayState(ArrayGeometry(4, 4))
        state.record_write(lane=2, offset=1, orientation=Orientation.COLUMN_PARALLEL)
        assert state.write_counts[1, 2] == 1
        assert state.total_writes == 1

    def test_record_read_row_parallel(self):
        state = ArrayState(ArrayGeometry(4, 4))
        state.record_read(lane=2, offset=1, orientation=Orientation.ROW_PARALLEL)
        assert state.read_counts[2, 1] == 1

    def test_max_writes(self):
        state = ArrayState(ArrayGeometry(2, 2))
        for _ in range(3):
            state.record_write(0, 0, Orientation.COLUMN_PARALLEL)
        state.record_write(1, 1, Orientation.COLUMN_PARALLEL)
        assert state.max_writes == 3


class TestLaneProfiles:
    def test_outer_product_column_parallel(self):
        state = ArrayState(ArrayGeometry(3, 2))
        state.add_lane_profile(
            np.array([1.0, 2.0, 0.0]),
            np.array([1.0, 3.0]),
            Orientation.COLUMN_PARALLEL,
        )
        expected = np.outer([1.0, 2.0, 0.0], [1.0, 3.0])
        assert np.allclose(state.write_counts, expected)

    def test_outer_product_row_parallel_transposes(self):
        state = ArrayState(ArrayGeometry(2, 3))
        state.add_lane_profile(
            np.array([1.0, 2.0, 0.0]),
            np.array([1.0, 3.0]),
            Orientation.ROW_PARALLEL,
        )
        expected = np.outer([1.0, 3.0], [1.0, 2.0, 0.0])
        assert np.allclose(state.write_counts, expected)

    def test_kind_selects_counter(self):
        state = ArrayState(ArrayGeometry(2, 2))
        state.add_lane_profile(
            np.ones(2), np.ones(2), Orientation.COLUMN_PARALLEL, kind="read"
        )
        assert state.total_reads == 4
        assert state.total_writes == 0

    def test_invalid_kind_rejected(self):
        state = ArrayState(ArrayGeometry(2, 2))
        with pytest.raises(ValueError, match="kind"):
            state.add_lane_profile(
                np.ones(2), np.ones(2), Orientation.COLUMN_PARALLEL, kind="x"
            )

    def test_shape_mismatch_rejected(self):
        state = ArrayState(ArrayGeometry(2, 3))
        with pytest.raises(ValueError, match="offset_counts"):
            state.add_lane_profile(
                np.ones(3), np.ones(3), Orientation.COLUMN_PARALLEL
            )
        with pytest.raises(ValueError, match="lane_weights"):
            state.add_lane_profile(
                np.ones(2), np.ones(2), Orientation.COLUMN_PARALLEL
            )


class TestViewsAndReset:
    def test_lane_view_orientation(self):
        state = ArrayState(ArrayGeometry(2, 3))
        state.write_counts[0, 2] = 5.0
        column_view = state.lane_view(state.write_counts, Orientation.COLUMN_PARALLEL)
        assert column_view[0, 2] == 5.0  # (offset 0, lane 2)
        row_view = state.lane_view(state.write_counts, Orientation.ROW_PARALLEL)
        assert row_view[2, 0] == 5.0  # (offset 2, lane 0)

    def test_lane_view_rejects_wrong_shape(self):
        state = ArrayState(ArrayGeometry(2, 3))
        with pytest.raises(ValueError):
            state.lane_view(np.zeros((3, 3)), Orientation.COLUMN_PARALLEL)

    def test_reset(self):
        state = ArrayState(ArrayGeometry(2, 2))
        state.record_write(0, 0, Orientation.COLUMN_PARALLEL)
        state.failed[0, 0] = True
        state.reset()
        assert state.total_writes == 0
        assert not state.failed.any()
