"""The diagnostic framework: codes, report ordering, renderers, exit codes."""

import json

import pytest

from repro.verify import (
    CODES,
    Diagnostic,
    Location,
    Severity,
    VerifyReport,
)


def diag(code="RPR001", severity=Severity.ERROR, message="boom", **kwargs):
    return Diagnostic(code, severity, message, **kwargs)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("RPR999", Severity.ERROR, "nope")

    def test_every_registered_code_constructs(self):
        for code in CODES:
            assert Diagnostic(code, Severity.ERROR, "x").code == code

    def test_render_carries_code_severity_location_hint(self):
        d = diag(
            location=Location("mult-32", instruction=7, address=3),
            hint="do the thing",
        )
        text = d.render()
        assert text.startswith("RPR001 error: boom")
        assert "program 'mult-32'" in text
        assert "instruction 7" in text
        assert "bit 3" in text
        assert text.endswith("(hint: do the thing)")

    def test_render_without_location_omits_brackets(self):
        assert diag().render() == "RPR001 error: boom"

    def test_as_dict_is_json_able(self):
        d = diag(location=Location(place="config StxSt"))
        record = json.loads(json.dumps(d.as_dict()))
        assert record["code"] == "RPR001"
        assert record["severity"] == "error"
        assert record["place"] == "config StxSt"
        assert record["program"] is None


class TestVerifyReport:
    def test_empty_report_is_ok_exit_zero(self):
        report = VerifyReport()
        assert report.ok
        assert report.exit_code == 0
        assert len(report) == 0
        assert report.render_text() == "verify: no diagnostics"

    def test_errors_sort_before_warnings(self):
        report = VerifyReport(
            [
                diag("RPR002", Severity.WARNING),
                diag("RPR001", Severity.ERROR),
                diag("RPR006", Severity.ERROR),
            ]
        )
        assert [d.severity for d in report] == [
            Severity.ERROR,
            Severity.ERROR,
            Severity.WARNING,
        ]
        assert report.exit_code == 1
        assert not report.ok

    def test_warnings_only_exit_two(self):
        report = VerifyReport([diag("RPR002", Severity.WARNING)])
        assert report.exit_code == 2
        assert not report.ok

    def test_without_drops_codes(self):
        report = VerifyReport(
            [diag("RPR001"), diag("RPR002", Severity.WARNING)]
        )
        pruned = report.without(["RPR002"])
        assert pruned.codes() == ["RPR001"]

    def test_without_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown codes"):
            VerifyReport().without(["RPR999"])

    def test_merged_combines_and_resorts(self):
        left = VerifyReport([diag("RPR002", Severity.WARNING)])
        right = VerifyReport([diag("RPR003", Severity.ERROR)])
        merged = left.merged(right)
        assert merged.codes() == ["RPR003", "RPR002"]

    def test_render_text_summary_line(self):
        report = VerifyReport(
            [diag("RPR001"), diag("RPR002", Severity.WARNING)]
        )
        assert report.render_text().splitlines()[-1] == (
            "verify: 1 error(s), 1 warning(s), 2 total"
        )

    def test_render_json_summary(self):
        report = VerifyReport([diag("RPR001")])
        payload = json.loads(report.render_json())
        assert payload["summary"] == {
            "errors": 1,
            "warnings": 0,
            "total": 1,
            "exit_code": 1,
        }
        assert payload["diagnostics"][0]["code"] == "RPR001"
