"""Calibration lockfile: every quantitative claim in the paper's text that
our models must reproduce exactly (see DESIGN.md's calibration table).

If any of these tests fail, the reproduction has drifted from the paper.
"""

import pytest

from repro.array.geometry import ArrayGeometry
from repro.balance.access_aware import (
    shuffle_copy_gates,
    shuffle_overhead_percent,
)
from repro.core.lifetime import (
    eq1_operations_until_total_failure,
    eq2_seconds_until_total_failure,
)
from repro.devices.technology import MRAM, PCM, RRAM
from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY
from repro.synth.analysis import (
    adder_counts,
    conventional_multiplication_counts,
    multiplier_counts,
    pim_vs_conventional_write_ratio,
)

GEOMETRY = ArrayGeometry(1024, 1024)


class TestSection31:
    """Operation counts (paper Section 3.1)."""

    def test_9824_writes_per_32bit_multiplication(self):
        assert multiplier_counts(32, NAND_LIBRARY).cell_writes == 9824

    def test_19616_reads_per_32bit_multiplication(self):
        assert multiplier_counts(32, NAND_LIBRARY).cell_reads == 19616

    def test_conventional_64_reads_64_writes(self):
        counts = conventional_multiplication_counts(32)
        assert (counts.cell_reads, counts.cell_writes) == (64, 64)

    def test_conventional_per_cell_00625(self):
        reads, writes = conventional_multiplication_counts(32).per_cell(1024)
        assert reads == writes == pytest.approx(0.0625)

    def test_pim_per_cell_19_16_and_9_59(self):
        reads, writes = multiplier_counts(32, NAND_LIBRARY).per_cell(1024)
        assert reads == pytest.approx(19.16, abs=0.005)
        assert writes == pytest.approx(9.59, abs=0.005)

    def test_over_150x_write_blowup(self):
        assert pim_vs_conventional_write_ratio(32, NAND_LIBRARY) > 150


class TestEquations:
    """Equations 1 and 2 (paper Section 3.1)."""

    def test_eq1_1_07e14_multiplications(self):
        value = eq1_operations_until_total_failure(GEOMETRY, 1e12, 9824)
        assert value == pytest.approx(1.07e14, rel=0.003)

    def test_eq2_3072000_seconds(self):
        assert eq2_seconds_until_total_failure(
            GEOMETRY, 1e12, 1024
        ) == pytest.approx(3_072_000)

    def test_eq2_35_56_days(self):
        days = eq2_seconds_until_total_failure(GEOMETRY, 1e12, 1024) / 86400
        assert days == pytest.approx(35.56, abs=0.01)

    def test_rram_just_over_5_minutes(self):
        seconds = eq2_seconds_until_total_failure(GEOMETRY, 1e8, 1024)
        assert seconds == pytest.approx(307.2)
        assert 300 < seconds < 360


class TestSection32:
    """Gate-minimum formulas and shuffle overheads (Section 3.2, Table 2)."""

    @pytest.mark.parametrize("bits", [4, 8, 16, 32, 64])
    def test_mult_gate_formula_6b2_minus_8b(self, bits):
        assert (
            multiplier_counts(bits, MINIMAL_LIBRARY).gates
            == 6 * bits * bits - 8 * bits
        )

    @pytest.mark.parametrize("bits", [4, 8, 16, 32, 64])
    def test_add_gate_formula_5b_minus_3(self, bits):
        assert adder_counts(bits, MINIMAL_LIBRARY).gates == 5 * bits - 3

    def test_shuffle_uses_4b_copies_for_multiply(self):
        assert shuffle_copy_gates("multiply", 32) == 4 * 32

    def test_shuffle_uses_3b_plus_1_copies_for_add(self):
        assert shuffle_copy_gates("add", 32) == 3 * 32 + 1

    @pytest.mark.parametrize(
        "bits,mult_pct,add_pct",
        [
            (4, 25.0, 76.47),
            (8, 10.0, 67.57),
            (16, 4.55, 63.64),
            (32, 2.17, 61.78),
            (64, 1.06, 60.88),
        ],
    )
    def test_table2_exact(self, bits, mult_pct, add_pct):
        assert shuffle_overhead_percent("multiply", bits) == pytest.approx(
            mult_pct, abs=0.005
        )
        assert shuffle_overhead_percent("add", bits) == pytest.approx(
            add_pct, abs=0.005
        )


class TestSection21:
    """Device endurance figures (Section 2.1)."""

    def test_mtj_endurance_1e12(self):
        assert MRAM.endurance_writes == 1e12

    def test_rram_endurance_1e8_to_1e9(self):
        assert RRAM.endurance_range == (1e6, 1e9)
        assert 1e8 <= RRAM.endurance_writes <= 1e9

    def test_pcm_endurance_1e6_to_1e9(self):
        low, high = PCM.endurance_range
        assert (low, high) == (1e6, 1e9)


class TestFullAdderCircuit:
    """Fig. 2: the full adder is 9 NAND gates."""

    def test_fig2_nine_nand_full_adder(self):
        from repro.synth.analysis import full_adder_counts

        assert full_adder_counts(NAND_LIBRARY).gates == 9
