"""Tests for repro.workloads.vectoradd."""

import pytest

from repro.workloads.conventional import ConventionalBaseline
from repro.workloads.vectoradd import VectorAdd


class TestProgram:
    def test_computes_sums(self, small_arch):
        program = VectorAdd(bits=8).build_program(small_arch)
        for x, y in [(0, 0), (255, 255), (100, 27)]:
            outputs, _ = program.evaluate({"a": x, "b": y})
            assert outputs["sum"] == x + y

    def test_gate_count_matches_library(self, small_arch):
        program = VectorAdd(bits=8).build_program(small_arch)
        assert program.gate_count == small_arch.library.adder_gates(8)


class TestMapping:
    def test_full_utilization(self, small_arch):
        mapping = VectorAdd(bits=8).build(small_arch)
        assert mapping.lane_utilization == pytest.approx(1.0)
        assert mapping.active_lane_count == small_arch.lane_count

    def test_far_cheaper_than_multiplication(self, small_arch):
        from repro.workloads.multiply import ParallelMultiplication

        add = VectorAdd(bits=8).build(small_arch)
        mult = ParallelMultiplication(bits=8).build(small_arch)
        assert add.writes_per_iteration < mult.writes_per_iteration / 5
        assert add.sequential_ops < mult.sequential_ops / 3

    def test_operation_costs(self, small_arch):
        mapping = VectorAdd(bits=8).build(small_arch)
        costs = mapping.operation_costs()
        assert costs.latency_s == pytest.approx(
            mapping.sequential_ops * 3e-9
        )
        assert costs.cell_writes == mapping.writes_per_iteration

    def test_conventional_ratio_smaller_than_multiplys(self, small_arch):
        # Addition's PIM write blow-up is far milder than multiplication's
        # 150x (5b-3 gates vs 6b^2-8b), matching the Table 2 intuition.
        baseline = ConventionalBaseline()
        workload = VectorAdd(bits=8)
        counts = baseline.traffic(workload)
        assert counts.cell_reads == 16
        assert counts.cell_writes == 9
        mapping = workload.build(small_arch)
        per_lane_writes = mapping.writes_per_iteration / mapping.active_lane_count
        ratio = per_lane_writes / counts.cell_writes
        assert ratio < 40


class TestValidation:
    def test_bits_validation(self):
        with pytest.raises(ValueError):
            VectorAdd(bits=1)

    def test_lanes_validation(self, tiny_arch):
        with pytest.raises(ValueError, match="cannot place"):
            VectorAdd(bits=4, lanes=1000).build(tiny_arch)

    def test_describe(self):
        assert "addition" in VectorAdd().describe()
