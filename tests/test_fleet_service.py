"""FleetService campaigns: the degenerate closed-form pin, checkpoint
kill/resume determinism, store sharding, and dispatch policies."""

import numpy as np
import pytest

from repro.core.failure import failure_timeline
from repro.devices.endurance import UniformEndurance
from repro.engine import ResultStore
from repro.fleet import (
    CohortSpec,
    FleetService,
    FleetSpec,
    PopulationSpec,
    TrafficSpec,
    capacity_iterations,
    kaplan_meier,
    run_campaign,
)
from repro.telemetry import capture


def one_array_spec(**overrides):
    """A single-array, deterministic-traffic PCM fleet (dies in days)."""
    defaults = dict(
        population=PopulationSpec(
            n_arrays=1,
            technology_mix=(("PCM", 1.0),),
            cohorts=(CohortSpec("add"),),
        ),
        traffic=TrafficSpec(model="deterministic", rate=5e5),
        days=10,
        seed=3,
        rows=128,
        cols=128,
        cohort_iterations=200,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def small_fleet_spec(**overrides):
    """A 4-array PCM fleet with endurance variation."""
    defaults = dict(
        population=PopulationSpec(
            n_arrays=4,
            technology_mix=(("PCM", 1.0),),
            cohorts=(CohortSpec("add"),),
            endurance_sigma=0.5,
        ),
        traffic=TrafficSpec(model="poisson", rate=2e5),
        days=12,
        seed=3,
        rows=128,
        cols=128,
        cohort_iterations=200,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestDegenerateClosedFormPin:
    """One array + deterministic traffic must reproduce failure_timeline."""

    def test_death_day_matches_closed_form_accumulation(self):
        spec = one_array_spec()
        service = FleetService(spec)
        calibration = service.calibrate()
        result = calibration["results"][0]

        # The closed-form lifetime for this array's technology.
        technology = service.population.technology_of(0)
        timeline = failure_timeline(
            result,
            required_offsets=1,
            endurance_model=UniformEndurance(technology.endurance_writes),
        )
        threshold = timeline.first_failure_iterations

        # Replay the day loop's arithmetic exactly: one array takes the
        # whole (integer) daily request count, clipped at capacity.
        daily_iterations = min(
            float(int(round(spec.traffic.rate))),
            capacity_iterations(
                calibration["ops_per_iteration"][0] * technology.op_latency_s,
                spec.duty_cycle,
            ),
        )
        cumulative, expected_day = 0.0, None
        for day in range(1, spec.days + 1):
            cumulative += daily_iterations
            if cumulative >= threshold:
                expected_day = day
                break
        assert expected_day is not None  # the spec is tuned to die

        report = service.run()
        assert report.death_days == [expected_day]
        assert report.curve.days == [expected_day]
        assert report.curve.survival == [0.0]

    def test_curve_is_bit_exact_kaplan_meier_of_closed_form_day(self):
        report = FleetService(one_array_spec()).run()
        [death_day] = report.death_days
        expected = kaplan_meier([death_day], report.spec_identity["days"])
        assert report.curve.content_hash() == expected.content_hash()

    def test_deterministic_campaign_is_rng_free_and_reproducible(self):
        a = FleetService(one_array_spec()).run()
        b = FleetService(one_array_spec()).run()
        assert a.content_hash() == b.content_hash()
        assert a.to_json()["report_hash"] == b.to_json()["report_hash"]

    def test_report_hash_ignores_runtime(self):
        a = FleetService(one_array_spec()).run()
        b = FleetService(one_array_spec(), jobs=1).run()
        assert a.runtime["wall_s"] != b.runtime["wall_s"] or True
        assert a.content_hash() == b.content_hash()


class TestCheckpointResume:
    def test_pause_then_resume_matches_uninterrupted(self, tmp_path):
        spec = small_fleet_spec()
        uninterrupted = FleetService(spec).run()

        paused = FleetService(
            spec, checkpoint_dir=tmp_path, checkpoint_every=2
        ).run(stop_after_day=5)
        assert paused is None

        resumed_service = FleetService(spec, checkpoint_dir=tmp_path)
        resumed = resumed_service.run()
        assert resumed is not None
        assert resumed.content_hash() == uninterrupted.content_hash()
        assert resumed.runtime["resumed_from_day"] == 5

    def test_resume_false_starts_over_to_the_same_report(self, tmp_path):
        spec = small_fleet_spec()
        FleetService(
            spec, checkpoint_dir=tmp_path, checkpoint_every=3
        ).run(stop_after_day=3)
        fresh = FleetService(spec, checkpoint_dir=tmp_path).run(resume=False)
        straight = FleetService(spec).run()
        assert fresh.content_hash() == straight.content_hash()
        assert fresh.runtime["resumed_from_day"] is None

    def test_checkpoint_cadence_writes_expected_files(self, tmp_path):
        spec = small_fleet_spec(days=9)
        service = FleetService(
            spec, checkpoint_dir=tmp_path, checkpoint_every=3
        )
        report = service.run()
        assert report.runtime["checkpoints_written"] == 3
        assert service.checkpoints.days() == [3, 6, 9]

    def test_stop_without_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            FleetService(small_fleet_spec()).run(stop_after_day=2)

    def test_stale_checkpoint_from_other_spec_is_ignored(self, tmp_path):
        spec_a = small_fleet_spec(seed=3)
        spec_b = small_fleet_spec(seed=4)
        FleetService(
            spec_a, checkpoint_dir=tmp_path, checkpoint_every=2
        ).run(stop_after_day=2)
        # A different campaign sharing the directory must not resume
        # from spec_a's checkpoint.
        report = FleetService(spec_b, checkpoint_dir=tmp_path).run()
        assert report.runtime["resumed_from_day"] is None


class TestSpecIdentity:
    def test_execution_knobs_excluded_from_hash(self):
        base = one_array_spec()
        assert base.content_hash == one_array_spec(kernel="python").content_hash
        assert base.content_hash == one_array_spec(chunk_size=64).content_hash

    def test_result_changing_knobs_change_hash(self):
        base = one_array_spec()
        assert base.content_hash != one_array_spec(seed=4).content_hash
        assert base.content_hash != one_array_spec(days=11).content_hash
        assert (
            base.content_hash
            != one_array_spec(dispatch="least_worn").content_hash
        )

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            one_array_spec(dispatch="round_robin")
        with pytest.raises(ValueError, match="duty_cycle"):
            one_array_spec(duty_cycle=0.0)
        with pytest.raises(ValueError, match="slo"):
            one_array_spec(slo=1.0)
        with pytest.raises(ValueError, match="days"):
            one_array_spec(days=0)
        with pytest.raises(ValueError, match="cohort_iterations"):
            one_array_spec(cohort_iterations=0)


class TestStoreIntegration:
    def test_calibration_shards_by_cohort_and_caches(self, tmp_path):
        spec = one_array_spec()
        store = ResultStore(tmp_path)
        cold = FleetService(spec, store=store).run()
        assert cold.runtime["calibration_statuses"] == ["completed"]
        assert (store.root / "shards" / "add-StxSt").is_dir()
        assert cold.runtime["manifests"] >= 1

        warm = FleetService(spec, store=store).run()
        assert warm.runtime["calibration_statuses"] == ["cached"]
        assert warm.content_hash() == cold.content_hash()

    def test_run_campaign_accepts_store_path(self, tmp_path):
        report = run_campaign(one_array_spec(), store=str(tmp_path))
        assert report.runtime["manifests"] >= 1


class TestDispatchAndCapacity:
    def test_least_worn_levels_wear_across_the_cohort(self):
        # Even dispatch lets weak arrays die first; least_worn shifts
        # load toward fresh arrays so the cohort retires together.
        def death_spread(dispatch):
            spec = small_fleet_spec(
                traffic=TrafficSpec(model="deterministic", rate=2e5),
                days=40,
                dispatch=dispatch,
            )
            days = FleetService(spec).run().death_days
            assert all(d >= 0 for d in days)  # everyone dies in 40 days
            return max(days) - min(days)

        assert death_spread("least_worn") < death_spread("even")

    def test_capacity_pressure_drops_requests(self):
        spec = one_array_spec(duty_cycle=1e-6, days=2)
        report = FleetService(spec).run()
        assert report.requests_dropped > 0
        assert report.requests_served < 2 * int(round(spec.traffic.rate))

    def test_dead_cohort_drops_everything(self):
        # After the single array dies (day 2), all later traffic drops.
        report = FleetService(one_array_spec(days=6)).run()
        assert report.death_days == [2]
        assert report.requests_dropped >= 4 * int(
            round(5e5)
        )  # days 3..6 fully dropped


class TestTelemetry:
    def test_campaign_emits_fleet_events(self):
        spec = one_array_spec(days=3)
        with capture() as sink:
            FleetService(spec).run()
        [start] = sink.of("fleet_start")
        assert start["arrays"] == 1
        assert start["days"] == 3
        days = sink.of("fleet_day")
        assert [r["day"] for r in days] == [1, 2, 3]
        assert all("alive" in r and "served" in r for r in days)
        [end] = sink.of("fleet_end")
        assert end["deaths"] == 1
        assert end["alive"] == 0

    def test_checkpoint_events_fire_at_boundaries(self, tmp_path):
        spec = small_fleet_spec(days=4)
        with capture() as sink:
            FleetService(
                spec, checkpoint_dir=tmp_path, checkpoint_every=2
            ).run()
        assert [r["day"] for r in sink.of("fleet_checkpoint")] == [2, 4]


class TestReportShape:
    def test_census_and_json_are_consistent(self):
        spec = small_fleet_spec(days=6)
        report = FleetService(spec).run()
        assert report.n_arrays == 4
        assert report.n_deaths + report.n_alive == 4
        assert report.deaths_by(report.technology_names) == {
            "PCM": {"dead": report.n_deaths, "total": 4}
        }
        payload = report.to_json()
        assert payload["report_hash"] == report.content_hash()
        assert payload["curve"]["horizon_days"] == 6
        assert len(payload["death_days"]) == 4
        assert isinstance(report.annual_replacement_rate, float)
        assert np.isfinite(report.annual_replacement_rate)


class TestVerificationGate:
    """Every campaign passes through verify_fleet_spec before a single
    day runs: a statically unsound spec is rejected up front."""

    def test_unsound_window_rejected_before_running(self):
        from repro.verify import VerificationError

        spec = small_fleet_spec(window=2_000_000)  # > MAX_WINDOW
        with capture() as sink:
            with pytest.raises(VerificationError) as err:
                FleetService(spec).run()
        assert "RPR014" in err.value.report.codes()
        # rejection happened statically: no fleet day ever started
        assert sink.of("fleet_start") == []
        assert sink.of("fleet_day") == []
        # the findings were published for the stats census
        [event] = sink.of("verify_report")
        assert "RPR014" in event["codes"]

    def test_rejection_is_counted(self):
        from repro.telemetry import get_telemetry
        from repro.verify import VerificationError

        tele = get_telemetry()
        before = tele.counters.get("fleet.rejected", 0)
        with pytest.raises(VerificationError):
            FleetService(small_fleet_spec(window=2_000_000)).run()
        assert tele.counters.get("fleet.rejected", 0) == before + 1

    def test_clean_spec_verifies_quietly_and_runs(self):
        with capture() as sink:
            report = FleetService(small_fleet_spec(days=3)).run()
        assert report.n_arrays == 4
        # a clean verification emits no verify_report event
        assert sink.of("verify_report") == []

    def test_gate_verdict_is_memoized_per_spec(self):
        from repro.verify import verify_fleet_spec

        spec = small_fleet_spec()
        first = verify_fleet_spec(spec)
        assert verify_fleet_spec(spec) is first
        assert verify_fleet_spec(spec, use_cache=False) is not first
