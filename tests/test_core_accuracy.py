"""Tests for repro.core.accuracy and stuck-at evaluation."""

import pytest

from repro.array.architecture import default_architecture
from repro.core.accuracy import measure_fault_accuracy
from repro.gates.library import MINIMAL_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture(scope="module")
def mult_program():
    return ParallelMultiplication(bits=6).build_program(
        default_architecture(256, 64)
    )


class TestStuckAtEvaluation:
    def test_stuck_cell_ignores_writes(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        builder.mark_output("z", a)
        program = builder.finish()
        outputs, _ = program.evaluate({"a": 1}, stuck={0: 0})
        assert outputs["z"] == 0  # the write was lost
        outputs, _ = program.evaluate({"a": 0}, stuck={0: 1})
        assert outputs["z"] == 1

    def test_stuck_value_validation(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        builder.mark_output("z", a)
        program = builder.finish()
        with pytest.raises(ValueError, match="stuck value"):
            program.evaluate({"a": 0}, stuck={0: 2})
        with pytest.raises(ValueError, match="outside footprint"):
            program.evaluate({"a": 0}, stuck={99: 0})

    def test_stuck_gate_output_corrupts_downstream(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 2)
        x = builder.gate(GateOp.AND, a[0], a[1])
        y = builder.gate(GateOp.OR, x, a[0])
        builder.mark_output("z", BitVector([y]))
        program = builder.finish()
        healthy, _ = program.evaluate({"a": 0b11})
        faulted, _ = program.evaluate({"a": 0b11}, stuck={x: 0})
        assert healthy["z"] == 1
        assert faulted["z"] == 1  # OR with a[0]=1 masks this fault
        faulted2, _ = program.evaluate({"a": 0b10}, stuck={y: 0})
        assert faulted2["z"] == 0


class TestAccuracyReport:
    def test_zero_faults_means_zero_errors(self, mult_program):
        report = measure_fault_accuracy(
            mult_program, lambda a, b: a * b, n_faults=0, samples=10, rng=0
        )
        assert report.error_rate == 0.0
        assert report.mean_relative_error == 0.0

    def test_single_fault_corrupts_most_results(self, mult_program):
        # The paper's Section 3.3 claim, quantified: one dead cell in a
        # ring-swept lane breaks a large share of multiplications (at this
        # small 6-bit width the ring passes each cell ~1.3x per iteration;
        # wider programs reuse cells more and err even more often — E28
        # measures 83% at 16 bits).
        report = measure_fault_accuracy(
            mult_program, lambda a, b: a * b, n_faults=1, samples=40, rng=1
        )
        assert report.error_rate >= 0.3

    def test_more_faults_err_at_least_as_often(self, mult_program):
        one = measure_fault_accuracy(
            mult_program, lambda a, b: a * b, n_faults=1, samples=40, rng=2
        )
        four = measure_fault_accuracy(
            mult_program, lambda a, b: a * b, n_faults=4, samples=40, rng=2
        )
        assert four.error_rate >= one.error_rate

    def test_operand_cell_faults_always_matter(self, mult_program):
        # Restrict faults to the operand cells: a stuck input bit flips
        # the effective operand about half the time.
        operand_cells = list(mult_program.inputs["a"]) + list(
            mult_program.inputs["b"]
        )
        report = measure_fault_accuracy(
            mult_program,
            lambda a, b: a * b,
            n_faults=1,
            samples=60,
            rng=3,
            fault_addresses=operand_cells,
        )
        assert 0.2 < report.error_rate < 0.8

    def test_validation(self, mult_program):
        with pytest.raises(ValueError):
            measure_fault_accuracy(
                mult_program, lambda a, b: a * b, n_faults=-1
            )
        with pytest.raises(ValueError):
            measure_fault_accuracy(
                mult_program, lambda a, b: a * b, samples=0
            )
        with pytest.raises(ValueError, match="more faults"):
            measure_fault_accuracy(
                mult_program,
                lambda a, b: a * b,
                n_faults=3,
                fault_addresses=[0, 1],
            )

    def test_unknown_evaluator_rejected(self, mult_program):
        with pytest.raises(ValueError, match="evaluator"):
            measure_fault_accuracy(
                mult_program, lambda a, b: a * b, evaluator="magic"
            )

    @pytest.mark.parametrize("n_faults", [0, 1, 4])
    def test_evaluators_produce_identical_reports(
        self, mult_program, n_faults
    ):
        # Same seed, same RNG call order -> bit-identical statistics.
        kwargs = dict(
            reference=lambda a, b: a * b,
            n_faults=n_faults,
            samples=24,
            rng=11,
        )
        compiled = measure_fault_accuracy(
            mult_program, evaluator="compiled", **kwargs
        )
        interpreted = measure_fault_accuracy(
            mult_program, evaluator="interpreted", **kwargs
        )
        assert compiled == interpreted

    def test_multi_output_requires_explicit_name(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        b = builder.input_vector("b", 1)
        builder.mark_output("x", a)
        builder.mark_output("y", b)
        program = builder.finish()
        with pytest.raises(ValueError, match="multiple outputs"):
            measure_fault_accuracy(program, lambda a, b: a, samples=1)
        report = measure_fault_accuracy(
            program, lambda a, b: a, samples=4, n_faults=0, output="x", rng=0
        )
        assert report.error_rate == 0.0
