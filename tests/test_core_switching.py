"""Tests for repro.core.switching: data-dependent switch counting."""

import numpy as np
import pytest

from repro.core.switching import measure_switching
from repro.gates.library import MINIMAL_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder
from repro.workloads.multiply import ParallelMultiplication


def _copy_chain_program():
    """A program whose outputs equal its input: switches track the data."""
    builder = LaneProgramBuilder(MINIMAL_LIBRARY)
    a = builder.input_vector("a", 1)
    out = builder.gate(GateOp.COPY, a[0])
    builder.mark_output("z", BitVector([out]))
    return builder.finish()


class TestSwitchSemantics:
    def test_switch_counts_bounded_by_writes(self):
        profile = measure_switching(_copy_chain_program(), samples=10, rng=0)
        assert np.all(profile.switches <= profile.writes + 1e-9)
        assert profile.samples == 10

    def test_switches_never_exceed_writes(self):
        arch_program = ParallelMultiplication(bits=8).build_program(
            _small_arch()
        )
        profile = measure_switching(arch_program, samples=8, rng=1)
        assert np.all(profile.switches <= profile.writes + 1e-9)

    def test_zero_constant_cell_switches_at_most_zero(self):
        # The shared zero cell is written 0 into fresh state: no switch.
        from repro.gates.library import MAJ_LIBRARY

        builder = LaneProgramBuilder(MAJ_LIBRARY)
        a = builder.input_vector("a", 1)
        b = builder.input_vector("b", 1)
        builder.and_bit(a[0], b[0])
        program = builder.finish()
        profile = measure_switching(program, samples=16, rng=2)
        zero_address = [
            i.address
            for i in program.instructions
            if hasattr(i, "source") and type(i.source).__name__ == "ConstBit"
        ][0]
        assert profile.switches[zero_address] == 0.0


def _small_arch():
    from repro.array.architecture import default_architecture

    return default_architecture(128, 128)


class TestMultiplierSwitching:
    def test_random_data_switches_about_half_the_writes(self):
        program = ParallelMultiplication(bits=8).build_program(_small_arch())
        profile = measure_switching(program, samples=48, rng=3)
        assert 0.3 < profile.switch_fraction < 0.65

    def test_lifetime_factor_above_one(self):
        program = ParallelMultiplication(bits=8).build_program(_small_arch())
        profile = measure_switching(program, samples=48, rng=4)
        assert profile.lifetime_factor > 1.2

    def test_reproducible(self):
        program = ParallelMultiplication(bits=8).build_program(_small_arch())
        a = measure_switching(program, samples=8, rng=9)
        b = measure_switching(program, samples=8, rng=9)
        assert np.allclose(a.switches, b.switches)

    def test_small_width_switch_fraction_reasonable(self):
        program = ParallelMultiplication(bits=4).build_program(_small_arch())
        profile = measure_switching(program, samples=32, rng=5)
        assert 0.2 < profile.switch_fraction < 0.7

    def test_validation(self):
        program = _copy_chain_program()
        with pytest.raises(ValueError):
            measure_switching(program, samples=0)
        with pytest.raises(ValueError, match="evaluator"):
            measure_switching(program, samples=1, evaluator="magic")

    def test_evaluators_produce_identical_profiles(self):
        program = ParallelMultiplication(bits=6).build_program(_small_arch())
        compiled = measure_switching(
            program, samples=40, rng=3, evaluator="compiled"
        )
        interpreted = measure_switching(
            program, samples=40, rng=3, evaluator="interpreted"
        )
        assert np.array_equal(compiled.switches, interpreted.switches)
        assert np.array_equal(compiled.writes, interpreted.writes)
        assert compiled.samples == interpreted.samples
