"""ExperimentEngine behaviour: caching, retries, failure containment."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.balance.config import BalanceConfig, all_configurations
from repro.engine import (
    EngineError,
    EngineHooks,
    ExperimentEngine,
    JobSpec,
    JobStatus,
    ResultStore,
    require_ok,
)
from repro.telemetry import Telemetry, capture, set_telemetry
from repro.workloads.base import Workload
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def fresh_telemetry():
    """An isolated process-local registry for counter assertions."""
    fresh = Telemetry()
    previous = set_telemetry(fresh)
    try:
        yield fresh
    finally:
        set_telemetry(previous)


class CountingHooks(EngineHooks):
    """Records every engine callback for assertions."""

    def __init__(self):
        self.batch_starts = []
        self.job_starts = 0
        self.outcomes = []
        self.metrics = None

    def on_batch_start(self, total, cached):
        self.batch_starts.append((total, cached))

    def on_job_start(self, spec):
        self.job_starts += 1

    def on_job_end(self, outcome):
        self.outcomes.append(outcome)

    def on_batch_end(self, metrics):
        self.metrics = metrics


class FlakyWorkload(Workload):
    """Fails on the first build, succeeds afterwards (marker on disk)."""

    name = "flaky"

    def __init__(self, marker):
        self.marker = str(marker)
        self.inner = ParallelMultiplication(bits=8)

    def build(self, architecture):
        import os

        if not os.path.exists(self.marker):
            with open(self.marker, "w", encoding="utf-8") as fh:
                fh.write("tried")
            raise RuntimeError("transient failure, try again")
        return self.inner.build(architecture)


class SleepyWorkload(Workload):
    """Blocks long enough to trip any sub-second timeout."""

    name = "sleepy"

    def __init__(self, seconds=2.0):
        self.seconds = seconds

    def build(self, architecture):
        time.sleep(self.seconds)
        raise AssertionError("should have timed out first")


def make_specs(arch, configs, iterations=150, seed=7, bits=8):
    workload = ParallelMultiplication(bits=bits)
    return [
        JobSpec(
            workload=workload,
            architecture=arch,
            config=config,
            iterations=iterations,
            seed=seed,
        )
        for config in configs
    ]


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tiny_arch, tmp_path):
        specs = make_specs(tiny_arch, all_configurations()[:4])
        store = ResultStore(tmp_path)
        cold = ExperimentEngine(store=store).run(specs)
        assert [o.status for o in cold] == [JobStatus.COMPLETED] * 4

        hooks = CountingHooks()
        warm = ExperimentEngine(store=store, hooks=hooks).run(specs)
        assert [o.status for o in warm] == [JobStatus.CACHED] * 4
        assert hooks.batch_starts == [(4, 4)]
        assert hooks.metrics.completed == 0

    def test_cached_counters_match_fresh(self, tiny_arch, tmp_path):
        specs = make_specs(tiny_arch, [BalanceConfig.from_label("RaxRa")])
        store = ResultStore(tmp_path)
        fresh = ExperimentEngine(store=store).run(specs)[0]
        cached = ExperimentEngine(store=store).run(specs)[0]
        assert np.array_equal(
            cached.result.state.write_counts,
            fresh.result.state.write_counts,
        )

    def test_interrupted_batch_resumes_from_completed_jobs(
        self, tiny_arch, tmp_path
    ):
        """A killed grid re-simulates only the jobs that had not finished."""
        specs = make_specs(tiny_arch, all_configurations())
        store = ResultStore(tmp_path)
        # "Interrupted" run: only 6 of 18 jobs completed before the kill.
        ExperimentEngine(store=store).run(specs[:6])
        assert len(store) == 6

        hooks = CountingHooks()
        resumed = ExperimentEngine(store=store, hooks=hooks).run(specs)
        assert hooks.batch_starts == [(18, 6)]
        assert hooks.metrics.cached == 6
        assert hooks.metrics.completed == 12
        assert all(o.ok for o in resumed)

    def test_engine_without_store_always_simulates(self, tiny_arch):
        specs = make_specs(tiny_arch, all_configurations()[:2])
        hooks = CountingHooks()
        outcomes = ExperimentEngine(hooks=hooks).run(specs)
        assert [o.status for o in outcomes] == [JobStatus.COMPLETED] * 2
        assert hooks.metrics.cached == 0


class TestDeduplication:
    def test_identical_specs_simulated_once(self, tiny_arch):
        spec = make_specs(tiny_arch, [BalanceConfig()])[0]
        hooks = CountingHooks()
        outcomes = ExperimentEngine(hooks=hooks).run([spec, spec, spec])
        assert hooks.batch_starts == [(1, 0)]
        assert hooks.metrics.completed == 1
        assert len(outcomes) == 3
        assert all(o.ok for o in outcomes)
        assert outcomes[1].result is outcomes[0].result


class TestFailureContainment:
    def test_failed_job_records_traceback_and_batch_continues(self, tiny_arch):
        # 32-bit multiply cannot fit a 63-bit-capacity lane: deterministic
        # failure, while the 8-bit jobs around it succeed.
        good = make_specs(tiny_arch, [BalanceConfig()], bits=8)
        bad = make_specs(tiny_arch, [BalanceConfig()], bits=32)
        outcomes = ExperimentEngine(retries=0).run(good + bad)
        assert outcomes[0].status is JobStatus.COMPLETED
        assert outcomes[1].status is JobStatus.FAILED
        assert outcomes[1].result is None
        assert "lane capacity" in outcomes[1].error
        assert outcomes[1].attempts == 1

    def test_failed_job_in_pool_mode(self, tiny_arch, tmp_path):
        good = make_specs(tiny_arch, [BalanceConfig()], bits=8)
        bad = make_specs(tiny_arch, [BalanceConfig()], bits=32)
        outcomes = ExperimentEngine(
            store=ResultStore(tmp_path), jobs=2, retries=0, backoff_s=0.0
        ).run(good + bad)
        assert outcomes[0].status is JobStatus.COMPLETED
        assert outcomes[1].status is JobStatus.FAILED
        assert "lane capacity" in outcomes[1].error

    def test_require_ok_raises_engine_error(self, tiny_arch):
        bad = make_specs(tiny_arch, [BalanceConfig()], bits=32)
        outcomes = ExperimentEngine(retries=0).run(bad)
        with pytest.raises(EngineError, match="1 job\\(s\\) failed"):
            require_ok(outcomes)

    def test_require_ok_passes_clean_batches_through(self, tiny_arch):
        good = make_specs(tiny_arch, [BalanceConfig()])
        outcomes = ExperimentEngine().run(good)
        assert require_ok(outcomes) == outcomes


class TestRetries:
    def test_transient_failure_retried_to_success(self, tiny_arch, tmp_path):
        flaky = FlakyWorkload(tmp_path / "marker")
        spec = JobSpec(
            workload=flaky,
            architecture=tiny_arch,
            config=BalanceConfig(),
            iterations=50,
        )
        # verify=False: pre-dispatch verification would probe the build
        # and absorb the single transient failure this test stages.
        outcome = ExperimentEngine(
            retries=1, backoff_s=0.0, verify=False
        ).run_one(spec)
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.attempts == 2

    def test_retries_are_bounded(self, tiny_arch):
        bad = make_specs(tiny_arch, [BalanceConfig()], bits=32)[0]
        outcome = ExperimentEngine(retries=2, backoff_s=0.0).run_one(bad)
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 3


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test workload classes pickle by reference (fork only)",
)
class TestTimeout:
    def test_slow_job_times_out_without_sinking_batch(self, tiny_arch):
        quick = make_specs(tiny_arch, [BalanceConfig()])[0]
        slow = JobSpec(
            workload=SleepyWorkload(seconds=2.0),
            architecture=tiny_arch,
            config=BalanceConfig(),
            iterations=50,
        )
        outcomes = ExperimentEngine(
            jobs=2, retries=0, timeout_s=0.4, backoff_s=0.0
        ).run([quick, slow])
        assert outcomes[0].status is JobStatus.COMPLETED
        assert outcomes[1].status is JobStatus.FAILED
        assert "timed out" in outcomes[1].error or "exceeded" in outcomes[1].error


class TestValidation:
    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentEngine(jobs=-1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ExperimentEngine(retries=-1)


class TestFailureTelemetry:
    """Failures leave a full audit trail: outcome fields, counters, events."""

    def test_raising_worker_emits_events_and_counters(
        self, tiny_arch, fresh_telemetry
    ):
        bad = make_specs(tiny_arch, [BalanceConfig()], bits=32)[0]
        with capture() as sink:
            outcome = ExperimentEngine(retries=2, backoff_s=0.0).run_one(bad)

        assert outcome.status is JobStatus.FAILED
        assert outcome.result is None
        assert outcome.attempts == 3
        assert "lane capacity" in outcome.error

        assert fresh_telemetry.counters["engine.retries"] == 2
        assert fresh_telemetry.counters["engine.failures"] == 1

        retry_events = sink.of("job_retry")
        assert [e["attempt"] for e in retry_events] == [1, 2]
        (end,) = sink.of("job_end")
        assert end["status"] == "failed"
        assert end["attempts"] == 3
        assert end["label"] == bad.label

    def test_transient_failure_trail_ends_in_success(
        self, tiny_arch, tmp_path, fresh_telemetry
    ):
        flaky = FlakyWorkload(tmp_path / "marker")
        spec = JobSpec(
            workload=flaky,
            architecture=tiny_arch,
            config=BalanceConfig(),
            iterations=50,
        )
        with capture() as sink:
            # verify=False: pre-dispatch verification would probe the
            # build and absorb the single transient failure staged here.
            outcome = ExperimentEngine(
                retries=1, backoff_s=0.0, verify=False
            ).run_one(spec)

        assert outcome.status is JobStatus.COMPLETED
        assert outcome.attempts == 2
        assert fresh_telemetry.counters["engine.retries"] == 1
        assert "engine.failures" not in fresh_telemetry.counters
        starts = sink.of("job_start")
        assert [e["attempt"] for e in starts] == [1, 2]
        (end,) = sink.of("job_end")
        assert end["status"] == "completed"
        assert end["attempts"] == 2
        assert end["wall_s"] >= 0

    def test_batch_events_cover_census_and_metrics(
        self, tiny_arch, tmp_path, fresh_telemetry
    ):
        specs = make_specs(tiny_arch, all_configurations()[:3])
        store = ResultStore(tmp_path)
        ExperimentEngine(store=store).run(specs[:1])
        fresh_telemetry.reset()

        with capture() as sink:
            ExperimentEngine(store=store).run(specs)

        (start,) = sink.of("batch_start")
        assert start["total"] == 3
        assert start["cached"] == 1
        (end,) = sink.of("batch_end")
        assert end["completed"] == 2
        assert end["cached"] == 1
        assert end["failed"] == 0
        assert 0.0 <= end["utilization"]
        assert fresh_telemetry.counters["engine.cache_hits"] == 1
        assert fresh_telemetry.counters["engine.cache_misses"] == 2
        cached_ends = [
            e for e in sink.of("job_end") if e["status"] == "cached"
        ]
        assert len(cached_ends) == 1

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test workload classes pickle by reference (fork only)",
    )
    def test_timeout_counted_and_emitted(self, tiny_arch, fresh_telemetry):
        slow = JobSpec(
            workload=SleepyWorkload(seconds=2.0),
            architecture=tiny_arch,
            config=BalanceConfig(),
            iterations=50,
        )
        with capture() as sink:
            outcomes = ExperimentEngine(
                jobs=2, retries=0, timeout_s=0.4, backoff_s=0.0
            ).run([slow])

        assert outcomes[0].status is JobStatus.FAILED
        assert fresh_telemetry.counters["engine.timeouts"] == 1
        (timeout,) = sink.of("job_timeout")
        assert timeout["timeout_s"] == 0.4
        assert timeout["label"] == slow.label
        (end,) = sink.of("job_end")
        assert end["status"] == "failed"

    def test_job_end_events_round_trip_through_trace_schema(
        self, tiny_arch, fresh_telemetry
    ):
        from repro.telemetry import validate_record

        specs = make_specs(tiny_arch, [BalanceConfig()])
        with capture() as sink:
            ExperimentEngine().run(specs)
        for record in sink.records:
            validate_record(record)
