"""Tests for repro.core.lifetime: Equations 1, 2 and 4."""

import pytest

from repro.array.geometry import ArrayGeometry
from repro.balance.config import BalanceConfig
from repro.core.lifetime import (
    array_write_budget,
    eq1_operations_until_total_failure,
    eq2_seconds_until_total_failure,
    lifetime_from_result,
    lifetime_improvement,
)
from repro.core.simulator import EnduranceSimulator
from repro.devices.endurance import LognormalEndurance
from repro.devices.technology import MRAM, RRAM
from repro.workloads.multiply import ParallelMultiplication


GEOMETRY = ArrayGeometry(1024, 1024)


class TestAnalyticBounds:
    def test_eq1_value_from_paper(self):
        # 1024^2 * 1e12 / 9824 = 1.07e14 multiplications.
        value = eq1_operations_until_total_failure(GEOMETRY, 1e12, 9824)
        assert value == pytest.approx(1.07e14, rel=0.005)

    def test_eq2_mtj_is_35_56_days(self):
        seconds = eq2_seconds_until_total_failure(GEOMETRY, 1e12, 1024)
        assert seconds == pytest.approx(3_072_000)
        assert seconds / 86400 == pytest.approx(35.56, abs=0.01)

    def test_eq2_rram_is_just_over_5_minutes(self):
        seconds = eq2_seconds_until_total_failure(
            GEOMETRY, RRAM.endurance_writes, 1024
        )
        assert 300 < seconds < 330  # "just over 5 minutes"

    def test_write_budget(self):
        assert array_write_budget(ArrayGeometry(2, 2), 10) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            array_write_budget(GEOMETRY, 0)
        with pytest.raises(ValueError):
            eq1_operations_until_total_failure(GEOMETRY, 1e12, 0)
        with pytest.raises(ValueError):
            eq2_seconds_until_total_failure(GEOMETRY, 1e12, 0)


class TestEquation4:
    @pytest.fixture
    def result(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        return sim.run(
            ParallelMultiplication(bits=8), BalanceConfig(), iterations=100
        )

    def test_lifetime_structure(self, result):
        estimate = lifetime_from_result(result)
        assert estimate.endurance_writes == MRAM.endurance_writes
        expected_iterations = (
            MRAM.endurance_writes / result.max_writes_per_iteration
        )
        assert estimate.iterations_to_failure == pytest.approx(
            expected_iterations
        )
        assert estimate.seconds_to_failure == pytest.approx(
            expected_iterations * result.iteration_latency_s
        )

    def test_days_and_years(self, result):
        estimate = lifetime_from_result(result)
        assert estimate.days_to_failure == pytest.approx(
            estimate.seconds_to_failure / 86400
        )
        assert estimate.years_to_failure == pytest.approx(
            estimate.days_to_failure / 365
        )

    def test_technology_override_scales_lifetime(self, result):
        mram = lifetime_from_result(result, technology=MRAM)
        rram = lifetime_from_result(result, technology=RRAM)
        assert mram.iterations_to_failure == pytest.approx(
            rram.iterations_to_failure * 1e4
        )

    def test_lognormal_model_shortens_lifetime(self, result):
        uniform = lifetime_from_result(result)
        varied = lifetime_from_result(
            result,
            endurance_model=LognormalEndurance(
                MRAM.endurance_writes, sigma=0.7, rng=0
            ),
        )
        assert varied.iterations_to_failure < uniform.iterations_to_failure


class TestImprovement:
    def test_improvement_vs_self_is_one(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        result = sim.run(
            ParallelMultiplication(bits=8), BalanceConfig(), iterations=100
        )
        assert lifetime_improvement(result, result) == pytest.approx(1.0)

    def test_balancing_improves_lifetime(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        workload = ParallelMultiplication(bits=8)
        baseline = sim.run(workload, BalanceConfig(), iterations=500)
        balanced = sim.run(
            workload, BalanceConfig.from_label("RaxSt+Hw"), iterations=500
        )
        assert lifetime_improvement(balanced, baseline) >= 1.0

    def test_cross_workload_comparison_rejected(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        a = sim.run(ParallelMultiplication(bits=8), BalanceConfig(), iterations=10)
        b = sim.run(ParallelMultiplication(bits=4), BalanceConfig(), iterations=10)
        with pytest.raises(ValueError, match="same workload"):
            lifetime_improvement(a, b)
