"""Tests for repro.array.geometry."""

import pytest

from repro.array.geometry import ArrayGeometry, Orientation


class TestGeometry:
    def test_default_is_paper_size(self):
        geometry = ArrayGeometry()
        assert (geometry.rows, geometry.cols) == (1024, 1024)
        assert geometry.n_cells == 1024 * 1024

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ArrayGeometry(0, 4)
        with pytest.raises(ValueError):
            ArrayGeometry(4, -1)

    def test_column_parallel_lane_counts(self):
        geometry = ArrayGeometry(8, 16)
        assert geometry.lane_count(Orientation.COLUMN_PARALLEL) == 16
        assert geometry.lane_size(Orientation.COLUMN_PARALLEL) == 8

    def test_row_parallel_lane_counts(self):
        geometry = ArrayGeometry(8, 16)
        assert geometry.lane_count(Orientation.ROW_PARALLEL) == 8
        assert geometry.lane_size(Orientation.ROW_PARALLEL) == 16


class TestAddressing:
    def test_column_parallel_cell_of(self):
        geometry = ArrayGeometry(8, 16)
        # lane = column, offset = row
        assert geometry.cell_of(3, 5, Orientation.COLUMN_PARALLEL) == (5, 3)

    def test_row_parallel_cell_of(self):
        geometry = ArrayGeometry(8, 16)
        assert geometry.cell_of(3, 5, Orientation.ROW_PARALLEL) == (3, 5)

    @pytest.mark.parametrize("orientation", list(Orientation))
    def test_round_trip(self, orientation):
        geometry = ArrayGeometry(4, 6)
        for lane in range(geometry.lane_count(orientation)):
            for offset in range(geometry.lane_size(orientation)):
                row, col = geometry.cell_of(lane, offset, orientation)
                assert geometry.lane_address_of(row, col, orientation) == (
                    lane,
                    offset,
                )

    def test_out_of_range_lane_rejected(self):
        geometry = ArrayGeometry(4, 4)
        with pytest.raises(IndexError):
            geometry.cell_of(4, 0, Orientation.COLUMN_PARALLEL)

    def test_out_of_range_offset_rejected(self):
        geometry = ArrayGeometry(4, 4)
        with pytest.raises(IndexError):
            geometry.cell_of(0, 4, Orientation.COLUMN_PARALLEL)

    def test_out_of_range_physical_rejected(self):
        geometry = ArrayGeometry(4, 4)
        with pytest.raises(IndexError):
            geometry.lane_address_of(4, 0, Orientation.COLUMN_PARALLEL)
