"""ResultStore round-trips: the engine's transport format must be exact."""

import json

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.io import restore_result, result_metadata
from repro.core.simulator import EnduranceSimulator
from repro.engine import JobSpec, ResultStore
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def workload():
    return ParallelMultiplication(bits=8)


@pytest.fixture
def spec(small_arch, workload):
    return JobSpec(
        workload=workload,
        architecture=small_arch,
        config=BalanceConfig.from_label("RaxBs+Hw"),
        iterations=250,
        seed=3,
        track_reads=True,
    )


@pytest.fixture
def result(small_arch, spec):
    simulator = EnduranceSimulator(small_arch, seed=spec.seed)
    return simulator.run(
        spec.workload, spec.config, spec.iterations, track_reads=True
    )


class TestRoundTrip:
    def test_counters_bit_exact(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        loaded = store.load(spec)
        assert np.array_equal(loaded.state.write_counts, result.state.write_counts)
        assert np.array_equal(loaded.state.read_counts, result.state.read_counts)
        assert loaded.state.write_counts.dtype == result.state.write_counts.dtype

    def test_metadata_survives(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        loaded = store.load(spec)
        assert loaded.config.label == result.config.label
        assert loaded.config.recompile_interval == result.config.recompile_interval
        assert loaded.epochs == result.epochs
        assert loaded.iterations == result.iterations
        assert loaded.workload_name == result.workload_name
        assert loaded.iteration_latency_s == result.iteration_latency_s
        assert loaded.lane_utilization == result.lane_utilization

    def test_write_distribution_bit_exact(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        loaded = store.load(spec)
        ours = loaded.write_distribution
        theirs = result.write_distribution
        assert np.array_equal(ours.counts, theirs.counts)
        assert ours.label == theirs.label
        assert loaded.max_writes_per_iteration == result.max_writes_per_iteration

    def test_in_memory_transport_matches_disk(self, tmp_path, spec, result):
        """restore_result over raw arrays equals the save/load path."""
        shipped = restore_result(
            result_metadata(result),
            result.state.write_counts,
            result.state.read_counts,
        )
        store = ResultStore(tmp_path)
        store.save(spec, result)
        loaded = store.load(spec)
        assert np.array_equal(
            shipped.state.write_counts, loaded.state.write_counts
        )
        assert shipped.iteration_latency_s == loaded.iteration_latency_s

    def test_restore_rejects_alien_version(self, result):
        metadata = result_metadata(result)
        metadata["format_version"] = 999
        with pytest.raises(ValueError, match="unsupported result format"):
            restore_result(
                metadata,
                result.state.write_counts,
                result.state.read_counts,
            )


class TestStoreSemantics:
    def test_miss_returns_none(self, tmp_path, spec):
        store = ResultStore(tmp_path)
        assert store.load(spec) is None
        assert not store.contains(spec)

    def test_contains_after_save(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result, wall_s=1.25)
        assert store.contains(spec)
        assert len(store) == 1
        assert list(store.hashes()) == [spec.content_hash]

    def test_sidecar_records_identity_and_timing(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result, wall_s=1.25)
        record = json.loads(store.sidecar_for(spec).read_text())
        assert record["content_hash"] == spec.content_hash
        assert record["wall_s"] == 1.25
        assert record["spec"] == spec.identity()

    def test_payload_without_sidecar_is_incomplete(self, tmp_path, spec, result):
        """An interrupted save (no sidecar yet) must read as a miss."""
        store = ResultStore(tmp_path)
        store.save(spec, result)
        store.sidecar_for(spec).unlink()
        assert not store.contains(spec)
        assert store.load(spec) is None

    def test_corrupt_payload_is_a_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        store.path_for(spec).write_bytes(b"not an npz")
        assert store.load(spec) is None

    def test_truncated_payload_is_a_miss(self, tmp_path, spec, result):
        # A zip prefix with a destroyed central directory raises
        # zipfile.BadZipFile, not ValueError — it must still read as a miss.
        store = ResultStore(tmp_path)
        store.save(spec, result)
        path = store.path_for(spec)
        path.write_bytes(path.read_bytes()[:100])
        assert store.load(spec) is None

    def test_clear(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        assert store.clear() == 1
        assert len(store) == 0
        assert store.load(spec) is None

    def test_no_temp_files_left_behind(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        leftovers = [
            p for p in tmp_path.rglob("*") if "tmp" in p.name
        ]
        assert leftovers == []


class TestManifestReadApi:
    def test_load_manifest_round_trip(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result, wall_s=0.5)
        manifest = store.load_manifest(spec)
        assert manifest is not None
        assert manifest["content_hash"] == spec.content_hash
        assert manifest["seed"] == spec.seed
        assert manifest["iterations"] == spec.iterations
        assert manifest["wall_s"] == 0.5
        assert "telemetry" in manifest

    def test_manifest_records_backend_provenance(
        self, tmp_path, spec, result
    ):
        import numpy as np

        from repro.core.backend import blas_implementation

        store = ResultStore(tmp_path)
        store.save(spec, result)
        manifest = store.load_manifest(spec)
        assert manifest["backend"] == spec.backend
        assert manifest["fastforward"] == spec.fastforward
        assert manifest["numpy_version"] == np.__version__
        assert manifest["blas"] == blas_implementation()
        assert isinstance(manifest["blas"], str) and manifest["blas"]

    def test_load_manifest_missing_is_none(self, tmp_path, spec):
        store = ResultStore(tmp_path)
        assert store.load_manifest(spec) is None

    def test_iter_manifests_streams_every_entry(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result, wall_s=0.5)
        entries = dict(store.iter_manifests())
        assert spec.content_hash in entries
        assert entries[spec.content_hash] == store.load_manifest(spec)

    def test_iter_manifests_skips_unreadable(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        store.manifest_for(spec).write_text("{broken json")
        assert list(store.iter_manifests()) == []

    def test_iter_manifests_is_sorted_and_deterministic(
        self, tmp_path, spec, result
    ):
        store = ResultStore(tmp_path)
        store.save(spec, result)
        other = JobSpec(
            workload=spec.workload,
            architecture=spec.architecture,
            config=spec.config,
            iterations=spec.iterations,
            seed=spec.seed + 1,
        )
        store.save(other, result)
        first = [digest for digest, _ in store.iter_manifests()]
        second = [digest for digest, _ in store.iter_manifests()]
        assert first == second
        assert set(first) == {spec.content_hash, other.content_hash}


class TestSharding:
    def test_shard_is_isolated_sub_store(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        shard = store.shard("mult-StxSt")
        shard.save(spec, result)
        assert shard.contains(spec)
        assert not store.contains(spec)  # parent hashes() stays clean
        assert len(store) == 0
        assert shard.root == store.root / "shards" / "mult-StxSt"

    def test_parent_iter_manifests_covers_shards(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.shard("cohort-a").save(spec, result)
        entries = dict(store.iter_manifests())
        assert spec.content_hash in entries

    def test_shard_names_are_slugged(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = store.shard("conv/RaxBs+Hw")
        assert shard.root.name == "conv_RaxBs_Hw"

    def test_unusable_shard_name_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="no usable characters"):
            store.shard("///")

    def test_shard_inherits_compression(self, tmp_path):
        store = ResultStore(tmp_path, compress=True)
        assert store.shard("a").compress is True
