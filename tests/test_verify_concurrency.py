"""Property suite for the static concurrency verifier (satellite a).

Hypothesis generates *valid* shard plans (via ``ShardPlan.build`` over
random population/worker shapes), asserts the verifier never cries wolf,
then applies targeted unsoundness mutations — overlap, gap, off-by-one
boundary shifts — and asserts RPR012/RPR013 fire exactly when (and only
when) the mutation actually breaks the disjoint-exact-cover invariant.
The access-model and window-bound internals get direct unit coverage
alongside.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import ShardPlan, no_death_window
from repro.fleet.parallel import MAX_WINDOW
from repro.verify import (
    RegionAccess,
    check_shard_plan,
    check_shard_races,
    check_window_bound,
    executor_access_plan,
)


def mutate_bounds(bounds, shard, delta_lo=0, delta_hi=0):
    """A copy of ``bounds`` with one shard's endpoints shifted."""
    out = list(tuple(b) for b in bounds)
    lo, hi = out[shard]
    out[shard] = (lo + delta_lo, hi + delta_hi)
    return tuple(out)


plan_shapes = st.tuples(
    st.integers(min_value=1, max_value=200),  # n_arrays
    st.integers(min_value=1, max_value=16),  # workers
)


class TestValidPlansNeverFlagged:
    @given(shape=plan_shapes)
    @settings(max_examples=100, deadline=None)
    def test_built_plan_is_clean(self, shape):
        n_arrays, workers = shape
        plan = ShardPlan.build(n_arrays, workers)
        assert check_shard_plan(plan) == []
        assert check_shard_races(plan, n_cohorts=2) == []


class TestOverlapMutation:
    """Extending one shard into its neighbour is both a cover violation
    and a write race — RPR012 *and* RPR013 must fire."""

    @given(shape=plan_shapes, grow=st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_overlap_fires_both_codes(self, shape, grow):
        n_arrays, workers = shape
        plan = ShardPlan.build(n_arrays, workers)
        if len(plan.bounds) < 2:
            return  # a single shard has no neighbour to collide with
        lo, hi = plan.bounds[0]
        next_hi = plan.bounds[1][1]
        grow = min(grow, next_hi - hi)
        if grow < 1:
            return
        mutated = ShardPlan(
            n_arrays=n_arrays,
            bounds=mutate_bounds(plan.bounds, 0, delta_hi=grow),
        )
        plan_codes = {d.code for d in check_shard_plan(mutated)}
        race_codes = {d.code for d in check_shard_races(mutated)}
        assert plan_codes == {"RPR012"}
        assert race_codes == {"RPR013"}


class TestGapMutation:
    """Shrinking one shard leaves arrays unowned — a cover violation
    (RPR012) but *not* a race: the intervals stay disjoint, so RPR013
    must stay quiet. This asymmetry is the core soundness property."""

    @given(shape=plan_shapes, shrink=st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_gap_fires_cover_only(self, shape, shrink):
        n_arrays, workers = shape
        plan = ShardPlan.build(n_arrays, workers)
        lo, hi = plan.bounds[-1]
        shrink = min(shrink, hi - lo - 1)
        if shrink < 1:
            return  # cannot shrink a one-array shard without emptying it
        mutated = ShardPlan(
            n_arrays=n_arrays,
            bounds=mutate_bounds(plan.bounds, len(plan.bounds) - 1,
                                 delta_lo=shrink),
        )
        plan_codes = {d.code for d in check_shard_plan(mutated)}
        assert plan_codes == {"RPR012"}
        assert check_shard_races(mutated) == []


class TestOffByOneMutations:
    """Every single-endpoint +-1 shift of a multi-shard plan breaks the
    exact cover one way or another; the verifier must catch all of
    them, and stay quiet on the unmutated plan."""

    @given(
        shape=plan_shapes,
        shard_pick=st.integers(min_value=0, max_value=15),
        which=st.sampled_from(["lo-1", "lo+1", "hi-1", "hi+1"]),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_boundary_shift_is_caught(self, shape, shard_pick, which):
        n_arrays, workers = shape
        plan = ShardPlan.build(n_arrays, workers)
        shard = shard_pick % len(plan.bounds)
        delta_lo = {"lo-1": -1, "lo+1": 1}.get(which, 0)
        delta_hi = {"hi-1": -1, "hi+1": 1}.get(which, 0)
        bounds = mutate_bounds(plan.bounds, shard, delta_lo, delta_hi)
        lo, hi = bounds[shard]
        if lo >= hi:
            return  # emptied the shard; ShardPlan itself models lo < hi
        mutated = ShardPlan(n_arrays=n_arrays, bounds=bounds)
        diagnostics = check_shard_plan(mutated) + check_shard_races(mutated)
        assert diagnostics, (
            f"mutation {which} on shard {shard} of {plan.bounds} "
            "went undetected"
        )
        assert {d.code for d in diagnostics} <= {"RPR012", "RPR013"}


class TestAccessModel:
    def test_model_covers_every_step_and_fold(self):
        plan = ShardPlan.build(10, 3)
        accesses = executor_access_plan(plan)
        steps = {a.step for a in accesses}
        assert steps == {"headroom", "advance", "window", "fold"}
        folds = [a for a in accesses if a.step == "fold"]
        assert [(f.lo, f.hi) for f in folds] == list(plan.bounds)
        assert all(f.worker == -1 and f.mode == "read" for f in folds)

    def test_workers_only_touch_their_own_interval(self):
        plan = ShardPlan.build(12, 4)
        for access in executor_access_plan(plan):
            if access.worker < 0:
                continue
            lo, hi = plan.bounds[access.worker]
            assert (access.lo, access.hi) == (lo, hi)

    def test_overlap_predicate(self):
        a = RegionAccess("advance", 0, "cumulative", "write", 0, 5)
        b = RegionAccess("advance", 1, "cumulative", "write", 4, 8)
        c = RegionAccess("advance", 1, "cumulative", "write", 5, 8)
        d = RegionAccess("advance", 1, "scratch", "write", 4, 8)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open intervals: [0,5) vs [5,8)
        assert not a.overlaps(d)  # different region

    def test_races_reject_non_positive_cohorts(self):
        with pytest.raises(ValueError, match="n_cohorts"):
            check_shard_races(ShardPlan.build(4, 2), n_cohorts=0)


class TestWindowBoundAgainstRuntime:
    """The static RPR014 pass must agree with the live no_death_window
    arithmetic it re-proves."""

    def test_runtime_window_always_passes_static_bound(self):
        import numpy as np

        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(1, 30))
            thresholds = rng.uniform(1e3, 1e7, size=n)
            cumulative = thresholds * rng.uniform(0.0, 0.9, size=n)
            per_day = rng.uniform(0.1, 50.0, size=n)
            window = no_death_window(
                thresholds,
                cumulative,
                np.full(n, -1, dtype=np.int64),
                per_day,
                MAX_WINDOW,
            )
            if window < 1:
                continue
            assert check_window_bound(
                int(window),
                per_day_max=per_day,
                thresholds=thresholds,
                cumulative=cumulative,
            ) == []

    def test_one_day_past_the_runtime_window_fails(self):
        import numpy as np

        thresholds = np.array([1e6, 2e6])
        cumulative = np.array([9.9e5, 0.0])
        per_day = np.array([100.0, 1.0])
        window = no_death_window(
            thresholds,
            cumulative,
            np.array([-1, -1], dtype=np.int64),
            per_day,
            MAX_WINDOW,
        )
        assert window >= 1
        diagnostics = check_window_bound(
            int(window) + 1,
            per_day_max=per_day,
            thresholds=thresholds,
            cumulative=cumulative,
        )
        assert [d.code for d in diagnostics] == ["RPR014"]
