"""Cross-cutting property tests (hypothesis) over the whole stack.

These encode the invariants the reproduction's correctness rests on:
load balancing conserves total writes; distributions' statistics stay in
their defined ranges; re-mapping never changes *what* is computed, only
*where* the wear lands.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.architecture import default_architecture
from repro.balance.config import BalanceConfig
from repro.balance.software import StrategyKind
from repro.core.simulator import EnduranceSimulator
from repro.core.writedist import WriteDistribution
from repro.workloads.multiply import ParallelMultiplication

strategy_kinds = st.sampled_from(
    [StrategyKind.STATIC, StrategyKind.RANDOM, StrategyKind.BYTE_SHIFT]
)


@st.composite
def balance_configs(draw):
    return BalanceConfig(
        within=draw(strategy_kinds),
        between=draw(strategy_kinds),
        hardware=draw(st.booleans()),
        recompile_interval=draw(st.sampled_from([7, 25, 100])),
    )


class TestConservationProperties:
    @given(config=balance_configs(), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_total_writes_invariant_under_any_config(self, config, seed):
        # Load balancing conserves wear; it only relocates it.
        arch = default_architecture(64, 32)
        workload = ParallelMultiplication(bits=4)
        sim = EnduranceSimulator(arch, seed=seed)
        result = sim.run(workload, config, iterations=60, track_reads=False)
        static = EnduranceSimulator(arch, seed=seed).run(
            workload, BalanceConfig(), iterations=60, track_reads=False
        )
        assert result.state.total_writes == pytest.approx(
            static.state.total_writes
        )

    @given(config=balance_configs(), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_balancing_never_increases_lifetime_bound(self, config, seed):
        # No strategy can push the hottest cell below the perfect-balance
        # floor (total / cells), i.e. balance <= 1 always.
        arch = default_architecture(64, 32)
        sim = EnduranceSimulator(arch, seed=seed)
        result = sim.run(
            ParallelMultiplication(bits=4), config, 60, track_reads=False
        )
        floor = result.state.total_writes / arch.geometry.n_cells
        assert result.state.max_writes >= floor - 1e-9

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_hardware_remapping_weakly_levels(self, seed):
        arch = default_architecture(64, 32)
        workload = ParallelMultiplication(bits=4)
        static = EnduranceSimulator(arch, seed=seed).run(
            workload, BalanceConfig(), 60, track_reads=False
        )
        hardware = EnduranceSimulator(arch, seed=seed).run(
            workload, BalanceConfig(hardware=True), 60, track_reads=False
        )
        assert hardware.state.max_writes <= static.state.max_writes + 1e-9


class TestDistributionProperties:
    @given(
        data=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=4,
            max_size=64,
        )
    )
    @settings(max_examples=50)
    def test_statistics_stay_in_range(self, data):
        side = int(np.sqrt(len(data)))
        counts = np.asarray(data[: side * side]).reshape(side, side)
        if side < 2:
            return
        dist = WriteDistribution(counts, iterations=1)
        assert 0.0 <= dist.balance <= 1.0 + 1e-12
        assert -1e-9 <= dist.gini < 1.0
        assert 0.0 <= dist.cell_utilization <= 1.0
        normalized = dist.normalized()
        assert normalized.max() <= 1.0 + 1e-12

    @given(scale=st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=25)
    def test_statistics_scale_invariant(self, scale):
        rng = np.random.default_rng(0)
        counts = rng.random((8, 8)) * 10
        a = WriteDistribution(counts, iterations=1)
        b = WriteDistribution(counts * scale, iterations=1)
        assert a.balance == pytest.approx(b.balance)
        assert a.gini == pytest.approx(b.gini, abs=1e-9)


class TestRemappingCorrectnessProperties:
    @given(
        x=st.integers(0, 255),
        y=st.integers(0, 255),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_programs_compute_the_same_under_any_layout(self, x, y, seed):
        # The simulator re-maps *physical placement*; the logical program
        # is untouched, so results are layout-independent by construction.
        # This pins that: one program evaluated twice is deterministic and
        # correct regardless of the allocator policy that built it.
        from repro.synth.bits import AllocationPolicy

        arch = default_architecture(256, 8)
        for policy in AllocationPolicy:
            workload = ParallelMultiplication(bits=8, allocation_policy=policy)
            program = workload.build_program(arch)
            outputs, _ = program.evaluate({"a": x, "b": y})
            assert outputs["product"] == x * y
