"""Tests for repro.synth.adders: correctness and the paper's gate costs."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY
from repro.synth.adders import (
    carry_adder,
    full_adder,
    half_adder,
    ripple_carry_add,
)
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder

LIBRARIES = [MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY]


def _run_full_adder(library, a, b, cin):
    builder = LaneProgramBuilder(library)
    av = builder.input_vector("a", 1)
    bv = builder.input_vector("b", 1)
    cv = builder.input_vector("c", 1)
    s, cout = full_adder(builder, av[0], bv[0], cv[0])
    builder.mark_output("s", BitVector([s]))
    builder.mark_output("cout", BitVector([cout]))
    outputs, _ = builder.finish().evaluate({"a": a, "b": b, "c": cin})
    return outputs["s"], outputs["cout"], builder


def _run_half_adder(library, a, b):
    builder = LaneProgramBuilder(library)
    av = builder.input_vector("a", 1)
    bv = builder.input_vector("b", 1)
    s, carry = half_adder(builder, av[0], bv[0])
    builder.mark_output("s", BitVector([s]))
    builder.mark_output("carry", BitVector([carry]))
    outputs, _ = builder.finish().evaluate({"a": a, "b": b})
    return outputs["s"], outputs["carry"]


class TestFullAdder:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize(
        "a,b,cin", list(itertools.product([0, 1], repeat=3))
    )
    def test_exhaustive_truth_table(self, library, a, b, cin):
        s, cout, _ = _run_full_adder(library, a, b, cin)
        assert s == (a + b + cin) % 2
        assert cout == (a + b + cin) // 2

    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    def test_gate_cost_matches_library_contract(self, library):
        builder = LaneProgramBuilder(library)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        cv = builder.input_vector("c", 1)
        full_adder(builder, av[0], bv[0], cv[0])
        assert builder.finish().gate_count == library.full_adder_gates

    def test_nand_full_adder_reads(self):
        # 9 two-input NANDs: 18 reads, 9 writes.
        builder = LaneProgramBuilder(NAND_LIBRARY)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        cv = builder.input_vector("c", 1)
        full_adder(builder, av[0], bv[0], cv[0])
        program = builder.finish()
        assert program.total_reads == 18
        assert program.total_writes - 3 == 9  # minus operand loads


class TestCarryAdder:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize(
        "a,b,cin", list(itertools.product([0, 1], repeat=3))
    )
    def test_exhaustive_truth_table(self, library, a, b, cin):
        builder = LaneProgramBuilder(library)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        cv = builder.input_vector("c", 1)
        cout = carry_adder(builder, av[0], bv[0], cv[0])
        builder.mark_output("cout", BitVector([cout]))
        outputs, _ = builder.finish().evaluate({"a": a, "b": b, "c": cin})
        assert outputs["cout"] == (a + b + cin) // 2

    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    def test_gate_cost_matches_library_contract(self, library):
        builder = LaneProgramBuilder(library)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        cv = builder.input_vector("c", 1)
        carry_adder(builder, av[0], bv[0], cv[0])
        assert builder.finish().gate_count == library.carry_adder_gates

    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    def test_cheaper_than_full_adder(self, library):
        assert library.carry_adder_gates < library.full_adder_gates


class TestHalfAdder:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], repeat=2)))
    def test_exhaustive_truth_table(self, library, a, b):
        s, carry = _run_half_adder(library, a, b)
        assert s == a ^ b
        assert carry == a & b

    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    def test_gate_cost_matches_library_contract(self, library):
        builder = LaneProgramBuilder(library)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        half_adder(builder, av[0], bv[0])
        assert builder.finish().gate_count == library.half_adder_gates

    def test_nand_half_adder_reads(self):
        # 4 NANDs (8 reads) + 1 NOT (1 read) = 9 reads.
        builder = LaneProgramBuilder(NAND_LIBRARY)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        half_adder(builder, av[0], bv[0])
        assert builder.finish().total_reads == 9


class TestRippleCarryAdd:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_small_widths(self, library, width):
        for x in range(2**width):
            for y in range(2**width):
                builder = LaneProgramBuilder(library)
                a = builder.input_vector("a", width)
                b = builder.input_vector("b", width)
                total = ripple_carry_add(builder, a, b)
                builder.mark_output("s", total)
                outputs, _ = builder.finish().evaluate({"a": x, "b": y})
                assert outputs["s"] == x + y

    def test_output_is_one_bit_wider(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 8)
        b = builder.input_vector("b", 8)
        assert ripple_carry_add(builder, a, b).width == 9

    @pytest.mark.parametrize("width", [4, 8, 16, 32])
    def test_minimal_gate_count_is_5b_minus_3(self, width):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", width)
        b = builder.input_vector("b", width)
        ripple_carry_add(builder, a, b)
        assert builder.finish().gate_count == 5 * width - 3

    def test_mismatched_widths_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 4)
        b = builder.input_vector("b", 5)
        with pytest.raises(ValueError, match="equal widths"):
            ripple_carry_add(builder, a, b)

    def test_free_inputs_shrinks_live_set(self):
        # Freed operand addresses return to the pool (they may be reused by
        # later gate outputs, so compare live counts, not identities).
        def live_count(free_inputs):
            builder = LaneProgramBuilder(MINIMAL_LIBRARY)
            a = builder.input_vector("a", 4)
            b = builder.input_vector("b", 4)
            ripple_carry_add(builder, a, b, free_inputs=free_inputs)
            return builder.allocator.live_count

        assert live_count(True) == live_count(False) - 8

    @given(
        x=st.integers(0, 2**16 - 1),
        y=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_16bit_additions(self, x, y):
        builder = LaneProgramBuilder(NAND_LIBRARY)
        a = builder.input_vector("a", 16)
        b = builder.input_vector("b", 16)
        total = ripple_carry_add(builder, a, b)
        builder.mark_output("s", total)
        outputs, _ = builder.finish().evaluate({"a": x, "b": y})
        assert outputs["s"] == x + y
