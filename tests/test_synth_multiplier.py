"""Tests for repro.synth.multiplier: correctness and the DADDA census."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY
from repro.synth.bits import AllocationPolicy
from repro.synth.multiplier import multiply
from repro.synth.program import LaneProgramBuilder

LIBRARIES = [MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY]


def _multiply_program(library, width, capacity=None, policy=None):
    builder = LaneProgramBuilder(
        library,
        capacity=capacity,
        policy=policy or AllocationPolicy.LOWEST_FIRST,
    )
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    product = multiply(builder, a, b, free_inputs=True)
    builder.mark_output("p", product)
    return builder.finish()


class TestCorrectness:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_small_widths(self, library, width):
        program = _multiply_program(library, width)
        for x in range(2**width):
            for y in range(2**width):
                outputs, _ = program.evaluate({"a": x, "b": y})
                assert outputs["p"] == x * y, (library.name, width, x, y)

    @given(x=st.integers(0, 2**8 - 1), y=st.integers(0, 2**8 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_8bit_products(self, x, y):
        program = _multiply_program(NAND_LIBRARY, 8)
        outputs, _ = program.evaluate({"a": x, "b": y})
        assert outputs["p"] == x * y

    @given(x=st.integers(0, 2**16 - 1), y=st.integers(0, 2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_16bit_products(self, x, y):
        program = _multiply_program(MINIMAL_LIBRARY, 16)
        outputs, _ = program.evaluate({"a": x, "b": y})
        assert outputs["p"] == x * y

    def test_32bit_spot_checks(self):
        program = _multiply_program(NAND_LIBRARY, 32)
        for x, y in [(0, 0), (1, 2**31), (0xFFFFFFFF, 0xFFFFFFFF), (12345, 67890)]:
            outputs, _ = program.evaluate({"a": x, "b": y})
            assert outputs["p"] == x * y

    def test_ring_policy_is_functionally_identical(self):
        ring = _multiply_program(
            NAND_LIBRARY, 4, capacity=64, policy=AllocationPolicy.RING
        )
        for x in range(16):
            for y in range(16):
                outputs, _ = ring.evaluate({"a": x, "b": y})
                assert outputs["p"] == x * y


class TestCensus:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_gate_count_matches_library_formula(self, library, width):
        program = _multiply_program(library, width)
        assert program.gate_count == library.multiplier_gates(width)

    def test_32bit_nand_is_9824_gates(self):
        # Section 3.1's headline count.
        program = _multiply_program(NAND_LIBRARY, 32)
        assert program.gate_count == 9824
        assert program.total_writes - 64 == 9824  # minus operand loads
        assert program.total_reads == 19616

    def test_product_width_is_2b(self):
        program = _multiply_program(MINIMAL_LIBRARY, 8)
        assert len(program.outputs["p"]) == 16

    def test_compact_footprint_is_small(self):
        # With lowest-first reuse a 32-bit multiply fits in ~200 bits —
        # "practical array sizes can easily accommodate 64-bit operands"
        # (Section 3.1, footnote 3).
        program = _multiply_program(NAND_LIBRARY, 32)
        assert program.footprint < 256


class TestValidation:
    def test_mismatched_widths_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 4)
        b = builder.input_vector("b", 3)
        with pytest.raises(ValueError, match="equal widths"):
            multiply(builder, a, b)

    def test_width_one_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        b = builder.input_vector("b", 1)
        with pytest.raises(ValueError, match="at least 2"):
            multiply(builder, a, b)

    def test_free_inputs_shrinks_live_set(self):
        def live_count(free_inputs):
            builder = LaneProgramBuilder(MINIMAL_LIBRARY)
            a = builder.input_vector("a", 4)
            b = builder.input_vector("b", 4)
            multiply(builder, a, b, free_inputs=free_inputs)
            return builder.allocator.live_count

        assert live_count(True) == live_count(False) - 8
