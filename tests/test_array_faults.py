"""Tests for repro.array.faults (Section 3.3 / Fig. 11)."""

import numpy as np
import pytest

from repro.array.faults import (
    expected_usable_fraction,
    plan_lane_sets,
    usable_fraction_curve,
    usable_offsets,
)
from repro.array.geometry import ArrayGeometry, Orientation


class TestUsableOffsets:
    def test_single_failure_kills_offset_in_all_lanes(self):
        # Fig. 11a: one failed cell removes that address from every lane.
        failed = np.zeros((4, 6), dtype=bool)
        failed[2, 3] = True  # row 2, col 3
        usable = usable_offsets(failed, Orientation.COLUMN_PARALLEL)
        assert usable.tolist() == [True, True, False, True]

    def test_row_parallel_uses_columns_as_offsets(self):
        failed = np.zeros((4, 6), dtype=bool)
        failed[2, 3] = True
        usable = usable_offsets(failed, Orientation.ROW_PARALLEL)
        assert usable.sum() == 5
        assert not usable[3]

    def test_no_failures_everything_usable(self):
        failed = np.zeros((4, 4), dtype=bool)
        assert usable_offsets(failed, Orientation.COLUMN_PARALLEL).all()

    def test_non_boolean_mask_rejected(self):
        with pytest.raises(ValueError):
            usable_offsets(np.zeros((2, 2)), Orientation.COLUMN_PARALLEL)


class TestExpectedUsableFraction:
    def test_analytic_formula(self):
        assert expected_usable_fraction(0.0, 100) == pytest.approx(1.0)
        assert expected_usable_fraction(0.01, 100) == pytest.approx(0.99**100)

    def test_collapse_is_rapid_at_paper_scale(self):
        # At 0.5% failed cells on a 1024-lane array, under 1% of offsets
        # survive — the Section 3.3 point that "even a few cell failures
        # can significantly disrupt operation".
        assert expected_usable_fraction(0.005, 1024) < 0.01

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            expected_usable_fraction(1.5, 10)

    def test_vectorized(self):
        result = expected_usable_fraction(np.array([0.0, 0.1]), 2)
        assert np.allclose(result, [1.0, 0.81])


class TestMonteCarloCurve:
    def test_matches_analytic_at_moderate_scale(self):
        geometry = ArrayGeometry(128, 128)
        fractions = [0.0, 0.001, 0.005, 0.02]
        measured = usable_fraction_curve(
            geometry, Orientation.COLUMN_PARALLEL, fractions, trials=6, rng=0
        )
        analytic = expected_usable_fraction(np.array(fractions), 128)
        assert np.allclose(measured, analytic, atol=0.06)

    def test_monotone_decreasing(self):
        geometry = ArrayGeometry(64, 64)
        measured = usable_fraction_curve(
            geometry, Orientation.COLUMN_PARALLEL,
            [0.0, 0.01, 0.05, 0.2], trials=4, rng=1,
        )
        assert all(a >= b for a, b in zip(measured, measured[1:]))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            usable_fraction_curve(
                ArrayGeometry(8, 8), Orientation.COLUMN_PARALLEL, [2.0]
            )


class TestLaneSets:
    def _mask_with_failures(self, rows, cols, cells):
        failed = np.zeros((rows, cols), dtype=bool)
        for row, col in cells:
            failed[row, col] = True
        return failed

    def test_partition_recovers_usable_offsets(self):
        # Two lanes fail at offset 2, two at offset 5; splitting into two
        # sets that separate them recovers offsets in each set.
        failed = self._mask_with_failures(
            8, 4, [(2, 0), (2, 1), (5, 2), (5, 3)]
        )
        whole = usable_offsets(failed, Orientation.COLUMN_PARALLEL).sum()
        plan = plan_lane_sets(failed, Orientation.COLUMN_PARALLEL, n_sets=2)
        assert whole == 6
        assert plan.min_usable >= 7
        assert plan.latency_multiplier == 2

    def test_all_lanes_covered_exactly_once(self):
        failed = np.zeros((8, 6), dtype=bool)
        plan = plan_lane_sets(failed, Orientation.COLUMN_PARALLEL, n_sets=3)
        lanes = sorted(lane for group in plan.sets for lane in group)
        assert lanes == list(range(6))

    def test_more_sets_never_reduce_min_usable(self):
        rng = np.random.default_rng(0)
        failed = rng.random((32, 16)) < 0.05
        previous = -1
        for n_sets in (1, 2, 4):
            plan = plan_lane_sets(failed, Orientation.COLUMN_PARALLEL, n_sets)
            total_usable = sum(plan.usable_per_set)
            assert total_usable >= previous
            previous = total_usable

    def test_too_many_sets_rejected(self):
        failed = np.zeros((4, 2), dtype=bool)
        with pytest.raises(ValueError, match="cannot split"):
            plan_lane_sets(failed, Orientation.COLUMN_PARALLEL, n_sets=3)

    def test_invalid_inputs_rejected(self):
        failed = np.zeros((4, 4), dtype=bool)
        with pytest.raises(ValueError):
            plan_lane_sets(failed, Orientation.COLUMN_PARALLEL, n_sets=0)
        with pytest.raises(ValueError):
            plan_lane_sets(
                failed.astype(float), Orientation.COLUMN_PARALLEL, n_sets=1
            )
