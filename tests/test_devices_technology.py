"""Tests for repro.devices.technology."""

import pytest

from repro.devices.technology import (
    MRAM,
    PCM,
    RRAM,
    RRAM_OPTIMISTIC,
    TECHNOLOGIES,
    DEFAULT_OP_LATENCY_S,
    Technology,
    technology_by_name,
)


class TestPresets:
    def test_mram_endurance_is_1e12(self):
        # The paper's default: "assume an endurance of 1e12 writes".
        assert MRAM.endurance_writes == 1e12

    def test_rram_endurance_is_1e8(self):
        # The pessimistic endpoint used for the "5 minutes" example.
        assert RRAM.endurance_writes == 1e8

    def test_rram_optimistic_is_1e9(self):
        assert RRAM_OPTIMISTIC.endurance_writes == 1e9

    def test_pcm_endurance_within_published_range(self):
        low, high = PCM.endurance_range
        assert low <= PCM.endurance_writes <= high

    def test_default_latency_is_3ns(self):
        # "assuming 3ns per operation" (Section 4).
        assert DEFAULT_OP_LATENCY_S == pytest.approx(3e-9)
        for tech in (MRAM, RRAM, PCM):
            assert tech.op_latency_s == pytest.approx(3e-9)

    def test_endurance_ordering(self):
        # MRAM >> RRAM >= PCM per Section 2.1.
        assert MRAM.endurance_writes > RRAM_OPTIMISTIC.endurance_writes
        assert RRAM_OPTIMISTIC.endurance_writes >= PCM.endurance_writes


class TestLookup:
    def test_lookup_by_name(self):
        assert technology_by_name("MRAM") is MRAM

    def test_lookup_is_case_insensitive(self):
        assert technology_by_name("rram") == TECHNOLOGIES["RRAM"]

    def test_lookup_strips_whitespace(self):
        assert technology_by_name("  pcm ") == PCM

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="MRAM"):
            technology_by_name("FeRAM")


class TestValidation:
    def test_negative_endurance_rejected(self):
        with pytest.raises(ValueError):
            Technology("X", -1, (1, 10))

    def test_endurance_outside_range_rejected(self):
        with pytest.raises(ValueError, match="outside the"):
            Technology("X", 100, (1, 10))

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError):
            Technology("X", 5, (1, 10), op_latency_s=0)

    def test_with_endurance_moves_operating_point(self):
        moved = RRAM.with_endurance(1e9)
        assert moved.endurance_writes == 1e9
        assert moved.name == "RRAM"

    def test_with_endurance_outside_range_rejected(self):
        with pytest.raises(ValueError):
            RRAM.with_endurance(1e15)

    def test_technologies_registry_contains_all_presets(self):
        for name in ("MRAM", "RRAM", "PCM", "RRAM_OPTIMISTIC"):
            assert name in TECHNOLOGIES
