"""Tests for repro.core.cluster: partitioned dot-products across arrays."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.cluster import PartitionedDotProduct
from repro.gates.library import NAND_LIBRARY


@pytest.fixture
def cluster():
    return PartitionedDotProduct(elements_per_array=32, n_arrays=4, bits=8)


class TestWorkloadConstruction:
    def test_aggregator_does_more_work(self, small_arch, cluster):
        aggregator = cluster.aggregator_workload().build(small_arch)
        slice_mapping = cluster.slice_workload().build(small_arch)
        assert (
            aggregator.writes_per_iteration
            > slice_mapping.writes_per_iteration
        )

    def test_slice_lane0_ships_its_partial(self, small_arch, cluster):
        # Non-aggregator lane 0 must read its final sum out (send), not
        # keep it: its program has a tagged send, no 'sum' output.
        mapping = cluster.slice_workload().build(small_arch)
        program = mapping.assignment[0]
        assert "sum" not in program.outputs

    def test_aggregator_extra_receives_extend_the_sum(
        self, small_arch, cluster
    ):
        aggregator = cluster.aggregator_workload().build(small_arch)
        program = aggregator.assignment[0]
        # Local rounds (log2 32 = 5) + 3 inter-array receives: the final
        # sum is 2b + 8 bits wide.
        assert len(program.outputs["sum"]) == 16 + 5 + 3

    def test_needs_two_arrays(self):
        with pytest.raises(ValueError):
            PartitionedDotProduct(n_arrays=1)


class TestClusterRuns:
    def test_fixed_role_imbalance(self, small_arch, cluster):
        result = cluster.run(small_arch, BalanceConfig(), iterations=100)
        assert result.n_arrays == 4
        assert result.wear_imbalance > 1.05
        lifetimes = result.lifetimes()
        # The aggregator (index 0) is the weakest link.
        assert lifetimes[0].iterations_to_failure == min(
            e.iterations_to_failure for e in lifetimes
        )

    def test_rotation_levels_the_cluster(self, small_arch, cluster):
        fixed = cluster.run(small_arch, BalanceConfig(), iterations=100)
        rotated = cluster.run(
            small_arch, BalanceConfig(), iterations=100,
            rotate_aggregator=True,
        )
        assert rotated.wear_imbalance < fixed.wear_imbalance
        assert rotated.wear_imbalance == pytest.approx(1.0, abs=1e-6)
        assert (
            rotated.cluster_iterations_to_failure
            > fixed.cluster_iterations_to_failure
        )

    def test_rotation_conserves_total_writes(self, small_arch, cluster):
        fixed = cluster.run(small_arch, BalanceConfig(), iterations=100)
        rotated = cluster.run(
            small_arch, BalanceConfig(), iterations=100,
            rotate_aggregator=True,
        )
        total = lambda r: sum(x.state.total_writes for x in r.results)
        assert total(rotated) == pytest.approx(total(fixed))

    def test_rotation_requires_divisible_iterations(self, small_arch, cluster):
        with pytest.raises(ValueError, match="divisible"):
            cluster.run(
                small_arch, BalanceConfig(), iterations=101,
                rotate_aggregator=True,
            )

    def test_invalid_iterations(self, small_arch, cluster):
        with pytest.raises(ValueError):
            cluster.run(small_arch, BalanceConfig(), iterations=0)


class TestFunctionalSanity:
    def test_slice_partial_sums_are_correct(self, cluster):
        # The slice workload's lane-0 program still computes a correct
        # local dot-product partial; check via the base functional wiring.
        from repro.workloads.base import evaluate_networked

        base = cluster.base
        programs, order = base.build_functional(NAND_LIBRARY)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, size=base.n_elements)
        b = rng.integers(0, 256, size=base.n_elements)
        operands = {
            lane: {"a": int(a[lane]), "b": int(b[lane])}
            for lane in range(base.n_elements)
        }
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["sum"] == int(np.dot(a, b))
