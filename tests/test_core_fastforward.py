"""The analytic fast-forward IS the simulated path (where eligible).

Fast-forward's contract has two halves: on periodic (``St``/``Bs``/
``B1``) configurations every counter — and therefore every downstream
lifetime and failure-timeline answer — is bit-identical to simulating
each epoch; on non-periodic configurations (``Ra``, ``Wa``) it refuses
with diagnostic RPR011 instead of approximating. These tests pin both
halves across the strategy grid, recompile intervals, hardware
re-mapping, and both entry points (simulator settings and engine spec).
"""

import numpy as np
import pytest

from repro.array.architecture import CRAM_ROW, default_architecture
from repro.balance.config import BalanceConfig, all_configurations
from repro.balance.software import StrategyKind
from repro.core.failure import failure_timeline, minimum_footprint
from repro.core.fastforward import (
    PERIODIC_KINDS,
    fastforward_eligible,
    fastforward_period,
    strategy_period,
)
from repro.core.lifetime import lifetime_from_result
from repro.core.settings import SimulationSettings
from repro.core.simulator import EnduranceSimulator
from repro.verify import VerificationError, verify_spec
from repro.workloads.multiply import ParallelMultiplication

ARCH = default_architecture(64, 16)

#: The strategy grid restricted to fast-forward-eligible configs.
ELIGIBLE = [
    config
    for config in all_configurations(recompile_interval=7)
    if fastforward_eligible(config)
]

#: Ineligible representatives: random on either axis, wear-aware.
INELIGIBLE_LABELS = ["RaxRa", "StxRa", "RaxSt", "StxWa", "RaxBs+Hw"]


def _run(arch, config, iterations, *, fastforward, seed=3, kernel="batched"):
    sim = EnduranceSimulator(arch)
    return sim.run(
        ParallelMultiplication(bits=8),
        config,
        iterations=iterations,
        settings=SimulationSettings(
            seed=seed, kernel=kernel, fastforward=fastforward
        ),
    )


def _assert_identical(a, b):
    assert np.array_equal(a.state.write_counts, b.state.write_counts)
    assert np.array_equal(a.state.read_counts, b.state.read_counts)
    assert a.epochs == b.epochs


class TestPeriods:
    def test_static_period_is_one(self):
        assert strategy_period(StrategyKind.STATIC, 64) == 1

    def test_byte_shift_period(self):
        # Bs advances one byte per epoch: size // gcd(8, size) steps
        # return the rotation to the identity.
        assert strategy_period(StrategyKind.BYTE_SHIFT, 64) == 8
        assert strategy_period(StrategyKind.BYTE_SHIFT, 64 * 4) == 32
        assert strategy_period(StrategyKind.BYTE_SHIFT, 12) == 3

    def test_bit_shift_period_is_size(self):
        assert strategy_period(StrategyKind.BIT_SHIFT, 64) == 64

    def test_non_periodic_kinds_have_no_period(self):
        assert strategy_period(StrategyKind.RANDOM, 64) is None
        assert strategy_period(StrategyKind.WEAR_AWARE, 64) is None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            strategy_period(StrategyKind.STATIC, 0)

    def test_joint_period_is_lcm(self):
        config = BalanceConfig.from_label("BsxBs")
        # within over lane_size=256 -> 32; between over lane_count=64 -> 8
        assert fastforward_period(config, 256, 64) == 32

    def test_joint_period_none_when_ineligible(self):
        config = BalanceConfig.from_label("RaxRa")
        assert fastforward_period(config, 256, 64) is None

    def test_periodic_kinds_are_the_deterministic_strategies(self):
        assert PERIODIC_KINDS == frozenset(
            {
                StrategyKind.STATIC,
                StrategyKind.BYTE_SHIFT,
                StrategyKind.BIT_SHIFT,
            }
        )


class TestBitIdentity:
    @pytest.mark.parametrize("config", ELIGIBLE, ids=lambda c: c.label)
    def test_eligible_grid_matches_batched(self, config):
        fast = _run(ARCH, config, 40, fastforward=True)
        slow = _run(ARCH, config, 40, fastforward=False)
        _assert_identical(fast, slow)

    @pytest.mark.parametrize("config", ELIGIBLE[:4], ids=lambda c: c.label)
    def test_eligible_grid_matches_epoch_oracle(self, config):
        fast = _run(ARCH, config, 40, fastforward=True)
        oracle = _run(ARCH, config, 40, fastforward=False, kernel="epoch")
        _assert_identical(fast, oracle)

    @pytest.mark.parametrize("interval", [1, 7, 100])
    @pytest.mark.parametrize("label", ["BsxBs", "B1xB1", "BsxB1+Hw"])
    def test_interval_grid(self, label, interval):
        config = BalanceConfig.from_label(label).with_interval(interval)
        for iterations in (3, 40, 203):
            fast = _run(ARCH, config, iterations, fastforward=True)
            slow = _run(ARCH, config, iterations, fastforward=False)
            _assert_identical(fast, slow)

    def test_iterations_shorter_than_interval(self):
        # full_epochs == 0: only the remainder epoch materializes.
        config = BalanceConfig.from_label("BsxBs").with_interval(50)
        fast = _run(ARCH, config, 7, fastforward=True)
        slow = _run(ARCH, config, 7, fastforward=False)
        _assert_identical(fast, slow)

    def test_horizon_far_past_the_period(self):
        # Millions of epochs collapse into one period block.
        config = BalanceConfig.from_label("BsxBs").with_interval(1)
        fast = _run(ARCH, config, 100_000, fastforward=True)
        slow = _run(ARCH, config, 100_000, fastforward=False)
        _assert_identical(fast, slow)

    def test_row_parallel_orientation(self):
        arch = CRAM_ROW.resized(64, 64)
        config = BalanceConfig.from_label("BsxBs")
        fast = _run(arch, config, 40, fastforward=True)
        slow = _run(arch, config, 40, fastforward=False)
        _assert_identical(fast, slow)

    def test_reads_untracked_parity(self):
        config = BalanceConfig.from_label("B1xBs")
        sim = EnduranceSimulator(ARCH)
        kwargs = dict(iterations=40)
        fast = sim.run(
            ParallelMultiplication(bits=8),
            config,
            settings=SimulationSettings(fastforward=True, track_reads=False),
            **kwargs,
        )
        slow = sim.run(
            ParallelMultiplication(bits=8),
            config,
            settings=SimulationSettings(track_reads=False),
            **kwargs,
        )
        assert np.array_equal(
            fast.state.write_counts, slow.state.write_counts
        )
        assert fast.state.read_counts.sum() == 0


class TestDownstreamAnswers:
    """Lifetime and failure-timeline answers must agree exactly."""

    def test_lifetime_identical(self):
        config = BalanceConfig.from_label("BsxBs")
        fast = _run(ARCH, config, 40, fastforward=True)
        slow = _run(ARCH, config, 40, fastforward=False)
        assert (
            lifetime_from_result(fast).iterations_to_failure
            == lifetime_from_result(slow).iterations_to_failure
        )

    def test_failure_timeline_identical(self):
        config = BalanceConfig.from_label("BsxBs")
        workload = ParallelMultiplication(bits=8)
        required = minimum_footprint(workload, ARCH)
        fast = _run(ARCH, config, 40, fastforward=True)
        slow = _run(ARCH, config, 40, fastforward=False)
        t_fast = failure_timeline(fast, required)
        t_slow = failure_timeline(slow, required)
        assert (
            t_fast.first_failure_iterations
            == t_slow.first_failure_iterations
        )
        assert t_fast.unusable_iterations == t_slow.unusable_iterations


class TestRefusal:
    @pytest.mark.parametrize("label", INELIGIBLE_LABELS)
    def test_simulator_refuses_with_rpr011(self, label):
        config = BalanceConfig.from_label(label)
        with pytest.raises(VerificationError) as err:
            _run(ARCH, config, 10, fastforward=True)
        assert "RPR011" in str(err.value)

    @pytest.mark.parametrize("label", INELIGIBLE_LABELS)
    def test_ineligible_runs_fine_without_fastforward(self, label):
        config = BalanceConfig.from_label(label)
        result = _run(ARCH, config, 10, fastforward=False)
        assert result.state.write_counts.sum() > 0

    def test_verify_spec_reports_rpr011(self):
        from repro.engine import JobSpec

        spec = JobSpec(
            workload=ParallelMultiplication(bits=8),
            architecture=ARCH,
            config=BalanceConfig.from_label("RaxRa"),
            iterations=10,
            fastforward=True,
        )
        report = verify_spec(spec)
        assert "RPR011" in report.codes()

    def test_verify_spec_clean_on_eligible(self):
        from repro.engine import JobSpec

        spec = JobSpec(
            workload=ParallelMultiplication(bits=8),
            architecture=ARCH,
            config=BalanceConfig.from_label("BsxBs"),
            iterations=10,
            fastforward=True,
        )
        assert "RPR011" not in verify_spec(spec).codes()

    def test_fastforward_eligible_predicate(self):
        assert fastforward_eligible(BalanceConfig.from_label("BsxBs+Hw"))
        assert not fastforward_eligible(BalanceConfig.from_label("StxRa"))


class TestEngineIntegration:
    def test_engine_runs_fastforward_spec(self, tmp_path):
        from repro.engine import ExperimentEngine, JobSpec, require_ok

        def make(fastforward):
            return JobSpec(
                workload=ParallelMultiplication(bits=8),
                architecture=ARCH,
                config=BalanceConfig.from_label("BsxBs"),
                iterations=40,
                seed=3,
                fastforward=fastforward,
            )

        engine = ExperimentEngine()
        fast = require_ok([engine.run_one(make(True))])[0].result
        slow = require_ok([engine.run_one(make(False))])[0].result
        assert np.array_equal(
            fast.state.write_counts, slow.state.write_counts
        )

    def test_fleet_calibration_with_fastforward(self):
        from repro.fleet import FleetSpec, run_campaign
        from repro.fleet.population import CohortSpec, PopulationSpec
        from repro.fleet.traffic import TrafficSpec

        def campaign(fastforward):
            return run_campaign(
                FleetSpec(
                    population=PopulationSpec(
                        n_arrays=4,
                        cohorts=(
                            CohortSpec(workload="mult", config="BsxBs"),
                        ),
                    ),
                    traffic=TrafficSpec(model="deterministic", rate=50.0),
                    days=10,
                    rows=256,
                    cols=64,
                    cohort_iterations=40,
                    fastforward=fastforward,
                )
            )

        assert (
            campaign(True).content_hash()
            == campaign(False).content_hash()
        )
