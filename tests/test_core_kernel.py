"""Tests for repro.core.kernel: the batched path IS the epoch path.

The batched kernel's whole contract is bit-identity with the sequential
per-epoch loop — same permutation stream, same wear-aware decisions, same
counters to the last bit — under any chunking. These tests pin that for
the full strategy grid (including the stateful ``Wa`` path and hardware
re-mapping), both pre-set accounting modes, and both lane orientations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.architecture import CRAM_ROW, PINATUBO, default_architecture
from repro.balance.config import BalanceConfig, all_configurations
from repro.balance.software import (
    StrategyKind,
    make_permutation,
    make_permutations,
)
from repro.core.kernel import epoch_lengths, make_epoch_maps
from repro.core.simulator import EnduranceSimulator
from repro.workloads.dotproduct import DotProduct
from repro.workloads.multiply import ParallelMultiplication


ARCH = default_architecture(64, 16)


def _run(arch, config, *, kernel, seed=3, iterations=40, chunk_size=None,
         workload=None, track_reads=True):
    sim = EnduranceSimulator(arch, seed=seed, kernel=kernel,
                             chunk_size=chunk_size)
    return sim.run(
        workload or ParallelMultiplication(bits=8),
        config,
        iterations=iterations,
        track_reads=track_reads,
    )


def _assert_identical(a, b):
    assert np.array_equal(a.state.write_counts, b.state.write_counts)
    assert np.array_equal(a.state.read_counts, b.state.read_counts)
    assert a.epochs == b.epochs


class TestBitIdentity:
    @pytest.mark.parametrize(
        "config", all_configurations(recompile_interval=7),
        ids=lambda c: c.label,
    )
    def test_all_18_configurations(self, config):
        batched = _run(ARCH, config, kernel="batched", chunk_size=13)
        sequential = _run(ARCH, config, kernel="epoch")
        _assert_identical(batched, sequential)

    @pytest.mark.parametrize("interval", [1, 7, 50])
    @pytest.mark.parametrize("chunk_size", [1, 13, 1024])
    def test_interval_chunk_grid(self, interval, chunk_size):
        config = BalanceConfig.from_label(
            "RaxRa", recompile_interval=interval
        )
        batched = _run(
            ARCH, config, kernel="batched", chunk_size=chunk_size,
            iterations=60,
        )
        sequential = _run(ARCH, config, kernel="epoch", iterations=60)
        _assert_identical(batched, sequential)

    @given(
        within=st.sampled_from(
            [StrategyKind.STATIC, StrategyKind.RANDOM,
             StrategyKind.BYTE_SHIFT, StrategyKind.BIT_SHIFT]
        ),
        between=st.sampled_from(
            [StrategyKind.STATIC, StrategyKind.RANDOM,
             StrategyKind.BYTE_SHIFT, StrategyKind.WEAR_AWARE]
        ),
        hardware=st.booleans(),
        presets=st.booleans(),
        interval=st.sampled_from([1, 7, 50]),
        chunk_size=st.sampled_from([1, 13, 1024]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_samples_across_the_grid(
        self, within, between, hardware, presets, interval, chunk_size, seed
    ):
        arch = ARCH if presets else PINATUBO.resized(64, 16)
        config = BalanceConfig(
            within=within, between=between, hardware=hardware,
            recompile_interval=interval,
        )
        batched = _run(
            arch, config, kernel="batched", seed=seed, iterations=55,
            chunk_size=chunk_size,
        )
        sequential = _run(arch, config, kernel="epoch", seed=seed,
                          iterations=55)
        _assert_identical(batched, sequential)

    def test_wear_aware_incremental_wear_multi_group(self):
        # Wa is the stateful path: every epoch's assignment depends on all
        # earlier epochs' wear. A multi-role workload at interval 1
        # maximizes the chances for the incremental wear vector to drift
        # from the state-derived one — it must not, even with hardware
        # re-mapping layered on top.
        workload = DotProduct(n_elements=16, bits=8)
        for hardware in (False, True):
            config = BalanceConfig(
                within=StrategyKind.RANDOM,
                between=StrategyKind.WEAR_AWARE,
                hardware=hardware,
                recompile_interval=1,
            )
            batched = _run(
                ARCH, config, kernel="batched", chunk_size=7,
                iterations=30, workload=workload,
            )
            sequential = _run(
                ARCH, config, kernel="epoch", iterations=30,
                workload=workload,
            )
            _assert_identical(batched, sequential)

    def test_row_parallel_orientation(self):
        arch = CRAM_ROW.resized(16, 64)
        config = BalanceConfig.from_label("RaxBs+Hw", recompile_interval=5)
        batched = _run(arch, config, kernel="batched", chunk_size=3)
        sequential = _run(arch, config, kernel="epoch")
        _assert_identical(batched, sequential)

    def test_reads_untracked_parity(self):
        config = BalanceConfig.from_label("RaxRa", recompile_interval=3)
        batched = _run(ARCH, config, kernel="batched", track_reads=False)
        sequential = _run(ARCH, config, kernel="epoch", track_reads=False)
        _assert_identical(batched, sequential)
        assert batched.state.total_reads == 0

    def test_chunking_never_changes_results(self):
        config = BalanceConfig.from_label("RaxRa", recompile_interval=1)
        reference = _run(ARCH, config, kernel="batched", iterations=50)
        for chunk_size in (1, 13, 1024):
            other = _run(
                ARCH, config, kernel="batched", chunk_size=chunk_size,
                iterations=50,
            )
            _assert_identical(reference, other)


class TestBatchedPermutations:
    @pytest.mark.parametrize(
        "kind",
        [StrategyKind.STATIC, StrategyKind.BYTE_SHIFT, StrategyKind.BIT_SHIFT],
    )
    def test_deterministic_rows_match_per_epoch_function(self, kind):
        batch = make_permutations(kind, 48, 6, epoch_start=2)
        for row, epoch in enumerate(range(2, 8)):
            assert np.array_equal(batch[row], make_permutation(kind, 48, epoch))

    def test_random_rows_are_permutations(self):
        batch = make_permutations(
            StrategyKind.RANDOM, 32, 10, rng=np.random.default_rng(0)
        )
        expected = np.arange(32)
        for row in batch:
            assert np.array_equal(np.sort(row), expected)

    def test_random_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            make_permutations(StrategyKind.RANDOM, 8, 2)

    def test_wear_aware_rejected(self):
        with pytest.raises(ValueError, match="stateful"):
            make_permutations(StrategyKind.WEAR_AWARE, 8, 2)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_permutations(StrategyKind.STATIC, 8, -1)

    def test_chunked_draws_equal_per_epoch_draws(self):
        # The contract that makes chunk_size a pure performance knob: one
        # (E, k) block consumes the stream exactly like E per-epoch draws.
        whole_w, whole_b = make_epoch_maps(
            StrategyKind.RANDOM, StrategyKind.RANDOM, 24, 8, 5,
            np.random.default_rng(42),
        )
        rng = np.random.default_rng(42)
        for epoch in range(5):
            one_w, one_b = make_epoch_maps(
                StrategyKind.RANDOM, StrategyKind.RANDOM, 24, 8, 1, rng,
                epoch_start=epoch,
            )
            assert np.array_equal(whole_w[epoch], one_w[0])
            assert np.array_equal(whole_b[epoch], one_b[0])

    def test_wear_aware_between_maps_are_none(self):
        _, between = make_epoch_maps(
            StrategyKind.RANDOM, StrategyKind.WEAR_AWARE, 16, 4, 3,
            np.random.default_rng(0),
        )
        assert between is None


class TestEpochLengths:
    def test_static_is_one_epoch(self):
        lengths = epoch_lengths(BalanceConfig(), 1000)
        assert lengths.tolist() == [1000]

    def test_interval_splits_with_remainder(self):
        config = BalanceConfig.from_label("RaxRa", recompile_interval=100)
        lengths = epoch_lengths(config, 250)
        assert lengths.tolist() == [100, 100, 50]

    def test_exact_multiple_has_no_remainder_epoch(self):
        config = BalanceConfig.from_label("RaxRa", recompile_interval=50)
        assert epoch_lengths(config, 100).tolist() == [50, 50]

    def test_non_positive_iterations_rejected(self):
        with pytest.raises(ValueError):
            epoch_lengths(BalanceConfig(), 0)


class TestKernelKnob:
    def test_unknown_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError, match="kernel"):
            EnduranceSimulator(ARCH, kernel="magic")

    def test_unknown_kernel_rejected_at_run(self):
        sim = EnduranceSimulator(ARCH)
        with pytest.raises(ValueError, match="kernel"):
            sim.run(
                ParallelMultiplication(bits=8), BalanceConfig(),
                iterations=5, kernel="magic",
            )

    def test_non_positive_chunk_rejected(self):
        sim = EnduranceSimulator(ARCH, chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            sim.run(
                ParallelMultiplication(bits=8),
                BalanceConfig.from_label("RaxRa"),
                iterations=5,
            )

    def test_run_override_beats_simulator_default(self):
        sim = EnduranceSimulator(ARCH, seed=9, kernel="epoch")
        config = BalanceConfig.from_label("RaxRa", recompile_interval=4)
        a = sim.run(ParallelMultiplication(bits=8), config, iterations=20)
        b = sim.run(
            ParallelMultiplication(bits=8), config, iterations=20,
            kernel="batched",
        )
        _assert_identical(a, b)
