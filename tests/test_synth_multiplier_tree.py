"""Tests for repro.synth.multiplier_tree (the Dadda tree alternative)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import (
    MAJ_LIBRARY,
    MINIMAL_LIBRARY,
    NAND_LIBRARY,
)
from repro.synth.multiplier import multiply
from repro.synth.multiplier_tree import dadda_heights, tree_multiply
from repro.synth.program import LaneProgramBuilder

LIBRARIES = [MINIMAL_LIBRARY, NAND_LIBRARY, MAJ_LIBRARY]


def _tree_program(library, width):
    builder = LaneProgramBuilder(library)
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    product = tree_multiply(builder, a, b)
    builder.mark_output("p", product)
    return builder.finish()


def _array_program(library, width):
    builder = LaneProgramBuilder(library)
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    product = multiply(builder, a, b)
    builder.mark_output("p", product)
    return builder.finish()


class TestHeights:
    def test_sequence(self):
        assert dadda_heights(13) == [2, 3, 4, 6, 9, 13]
        assert dadda_heights(2) == [2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            dadda_heights(1)


class TestCorrectness:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_exhaustive_small_widths(self, library, width):
        program = _tree_program(library, width)
        for x in range(2**width):
            for y in range(2**width):
                outputs, _ = program.evaluate({"a": x, "b": y})
                assert outputs["p"] == x * y

    @given(x=st.integers(0, 2**12 - 1), y=st.integers(0, 2**12 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_12bit(self, x, y):
        program = _tree_program(NAND_LIBRARY, 12)
        outputs, _ = program.evaluate({"a": x, "b": y})
        assert outputs["p"] == x * y


class TestTreeVsArray:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_adder_census_is_identical(self, width):
        # Any FA/HA reduction of b^2 partial products to a 2b-bit result
        # uses the same adder count — the tree and the array tie on gates,
        # which is why the paper's census applies to either.
        tree = _tree_program(NAND_LIBRARY, width)
        array = _array_program(NAND_LIBRARY, width)
        assert tree.gate_count == array.gate_count

    @pytest.mark.parametrize("width,factor", [(8, 1.5), (16, 2.5)])
    def test_tree_needs_far_more_workspace(self, width, factor):
        tree = _tree_program(NAND_LIBRARY, width)
        array = _array_program(NAND_LIBRARY, width)
        assert tree.footprint > factor * array.footprint

    def test_32bit_tree_does_not_fit_the_papers_lane(self):
        # The quantified justification for the paper's array structure: at
        # 32 bits the tree's live set exceeds a 1024-bit lane.
        tree = _tree_program(NAND_LIBRARY, 32)
        assert tree.footprint > 1024
        array = _array_program(NAND_LIBRARY, 32)
        assert array.footprint < 256


class TestValidation:
    def test_mismatched_widths_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 4)
        b = builder.input_vector("b", 3)
        with pytest.raises(ValueError, match="equal widths"):
            tree_multiply(builder, a, b)

    def test_width_one_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        b = builder.input_vector("b", 1)
        with pytest.raises(ValueError, match="at least 2"):
            tree_multiply(builder, a, b)
