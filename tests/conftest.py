"""Shared fixtures: small architectures that keep tests fast."""

from __future__ import annotations

import pytest

from repro.array.architecture import PINATUBO, default_architecture


@pytest.fixture
def small_arch():
    """A 128x128 CRAM-style column-parallel array (presets on)."""
    return default_architecture(128, 128)


@pytest.fixture
def tiny_arch():
    """A 64x64 CRAM-style array for the cheapest checks."""
    return default_architecture(64, 64)


@pytest.fixture
def sense_amp_arch():
    """A 128x128 Pinatubo-style array (sense amps, no presets)."""
    return PINATUBO.resized(128, 128)


@pytest.fixture
def row_parallel_arch():
    """A 128x128 row-parallel CRAM-2T array."""
    from repro.array.architecture import CRAM_ROW

    return CRAM_ROW.resized(128, 128)
