"""Row-parallel architecture integration: the CRAM-2T orientation.

The paper evaluates column-parallel hardware but describes both
orientations as "logically equivalent" (Section 2.2). These tests pin that
equivalence: the same workload on a row-parallel array produces the
transposed wear pattern and identical lifetimes.
"""

import numpy as np
import pytest

from repro.array.architecture import CRAM_COLUMN, CRAM_ROW
from repro.balance.config import BalanceConfig
from repro.core.lifetime import lifetime_from_result
from repro.core.simulator import EnduranceSimulator
from repro.workloads.dotproduct import DotProduct
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def row_arch():
    return CRAM_ROW.resized(128, 128)


@pytest.fixture
def col_arch():
    return CRAM_COLUMN.resized(128, 128)


class TestOrientationEquivalence:
    def test_wear_pattern_is_transposed(self, row_arch, col_arch):
        workload = ParallelMultiplication(bits=8)
        config = BalanceConfig()
        row = EnduranceSimulator(row_arch, seed=0).run(
            workload, config, 50, track_reads=False
        )
        col = EnduranceSimulator(col_arch, seed=0).run(
            workload, config, 50, track_reads=False
        )
        assert np.allclose(
            row.state.write_counts, col.state.write_counts.T
        )

    def test_lifetimes_identical(self, row_arch, col_arch):
        workload = DotProduct(n_elements=32, bits=8)
        config = BalanceConfig.from_label("RaxRa")
        row = EnduranceSimulator(row_arch, seed=3).run(
            workload, config, 200, track_reads=False
        )
        col = EnduranceSimulator(col_arch, seed=3).run(
            workload, config, 200, track_reads=False
        )
        assert lifetime_from_result(row).iterations_to_failure == (
            pytest.approx(
                lifetime_from_result(col).iterations_to_failure, rel=1e-9
            )
        )

    def test_hardware_remapping_works_row_parallel(self, row_arch):
        workload = ParallelMultiplication(bits=8)
        static = EnduranceSimulator(row_arch, seed=0).run(
            workload, BalanceConfig(), 100, track_reads=False
        )
        hardware = EnduranceSimulator(row_arch, seed=0).run(
            workload, BalanceConfig(hardware=True), 100, track_reads=False
        )
        assert hardware.state.max_writes <= static.state.max_writes
        assert hardware.state.total_writes == pytest.approx(
            static.state.total_writes
        )

    def test_dot_product_hot_stripe_lands_on_rows(self, row_arch):
        # In a row-parallel array lanes are rows: the reduction's hot
        # stripe appears across rows instead of columns.
        workload = DotProduct(n_elements=32, bits=8)
        result = EnduranceSimulator(row_arch, seed=0).run(
            workload, BalanceConfig(), 50, track_reads=False
        )
        row_sums = result.state.write_counts.sum(axis=1)
        assert row_sums[0] == row_sums.max()

    def test_lane_geometry(self, row_arch):
        arch = CRAM_ROW.resized(64, 256)
        assert arch.lane_count == 64  # rows
        assert arch.lane_size == 256  # bits per row

    def test_distribution_orientation_views(self, row_arch):
        workload = ParallelMultiplication(bits=8)
        result = EnduranceSimulator(row_arch, seed=0).run(
            workload, BalanceConfig(), 20, track_reads=False
        )
        dist = result.write_distribution
        # offset_profile is per lane-offset: identical across lanes here.
        lanes = dist.lane_profile()
        assert np.allclose(lanes, lanes[0])
