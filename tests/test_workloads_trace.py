"""Tests for the trace-driven workload frontend.

Covers the parser (typed IR, line-numbered errors), the address-mapping
bijections (property-tested per policy), the lowering golden path
(parse -> lower -> verify clean), functional equivalence of the lowered
GEMV network, and bit-determinism through the simulator, engine, and
fleet cohorts.
"""

import hashlib
import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.architecture import default_architecture
from repro.balance.config import BalanceConfig
from repro.core.settings import SimulationSettings
from repro.core.simulator import EnduranceSimulator
from repro.gates.library import NAND_LIBRARY
from repro.verify import verify_mapping, verify_network
from repro.workloads.base import evaluate_networked
from repro.workloads.trace import (
    MAPPING_POLICIES,
    PIMULATOR_FORMAT,
    AddressFormat,
    AddressMapping,
    TraceLoweringError,
    TraceOp,
    TraceParseError,
    TraceWorkload,
    fixture_path,
    gemv_addresses,
    iter_trace,
    load_gemv_fixture,
    parse_trace,
    write_gemv_trace,
)

DETERMINISM_CONFIGS = ("StxSt", "RaxRa", "BsxBs+Hw")


def small_gemv(tmp_path, rows=4, cols=4):
    """A 4x4 GEMV trace workload (fast enough for simulator tests)."""
    path = write_gemv_trace(tmp_path / "small.trace", rows=rows, cols=cols)
    return TraceWorkload.from_file(path, name="gemv-small")


class TestParser:
    def test_fixture_parses_to_typed_ir(self):
        instructions = parse_trace(fixture_path())
        ops = [instr.op for instr in instructions]
        assert ops.count(TraceOp.PIM_MAC) == 256
        assert ops.count(TraceOp.MEM_WRITE) == 16
        assert ops[-1] is TraceOp.PIM_EXIT
        mac = next(i for i in instructions if i.op is TraceOp.PIM_MAC)
        assert mac.dst == mac.operands[0]
        assert mac.sources == mac.operands[1:]
        assert mac.line > 0

    def test_comments_and_blank_lines_tolerated(self):
        text = (
            "# full-line hash comment\n"
            "// full-line slash comment\n"
            "\n"
            "PIM ADD 0x10 0x20 0x30  # trailing comment\n"
            "PIM EXIT // done\n"
        )
        instructions = parse_trace(text)
        assert [i.op for i in instructions] == [
            TraceOp.PIM_ADD, TraceOp.PIM_EXIT,
        ]

    def test_mem_accepts_both_address_forms(self):
        composed = PIMULATOR_FORMAT.compose(row=7)
        decomposed = parse_trace("W MEM 0 0 7\nPIM EXIT\n")[0]
        direct = parse_trace(f"W MEM 0x{composed:X}\nPIM EXIT\n")[0]
        assert decomposed.op is TraceOp.MEM_WRITE
        assert decomposed.operands == direct.operands

    def test_register_and_scratchpad_ops(self):
        text = "W GPR 3\nR CFR 1\nSB W [0x100]\nPIM EXIT\n"
        ops = [i.op for i in parse_trace(text)]
        assert TraceOp.GPR_WRITE in ops
        assert TraceOp.CFR_READ in ops

    def test_stops_after_exit(self):
        text = "PIM EXIT\nPIM ADD 0x10 0x20 0x30\n"
        assert [i.op for i in parse_trace(text)] == [TraceOp.PIM_EXIT]

    def test_errors_carry_line_numbers(self):
        text = "PIM ADD 0x10 0x20 0x30\nPIM FROBNICATE 0x1\n"
        with pytest.raises(TraceParseError) as excinfo:
            parse_trace(text)
        assert excinfo.value.line == 2
        assert "trace line 2" in str(excinfo.value)

    def test_arity_checked(self):
        with pytest.raises(TraceParseError, match="line 1"):
            parse_trace("PIM ADD 0x10\n")

    def test_non_strict_skips_unknown_dialect(self):
        text = "PIM FROBNICATE 0x1\nPIM ADD 0x10 0x20 0x30\nPIM EXIT\n"
        ops = [i.op for i in iter_trace(text, strict=False)]
        assert ops == [TraceOp.PIM_ADD, TraceOp.PIM_EXIT]


class TestAddressFormat:
    def test_pimulator_layout(self):
        assert PIMULATOR_FORMAT.total_bits == 35
        assert PIMULATOR_FORMAT.index_bits == 24

    def test_compose_decompose_roundtrip(self):
        address = PIMULATOR_FORMAT.compose(
            rank=1, channel=5, bankgroup=2, bank=3, row=1000, column=17,
            offset=9,
        )
        fields = PIMULATOR_FORMAT.decompose(address)
        assert (fields.rank, fields.channel, fields.bankgroup,
                fields.bank, fields.row, fields.column,
                fields.offset) == (1, 5, 2, 3, 1000, 17, 9)

    def test_flat_index_ignores_rank_column_offset(self):
        base = PIMULATOR_FORMAT.compose(channel=2, bank=1, row=9)
        shifted = PIMULATOR_FORMAT.compose(
            rank=1, channel=2, bank=1, row=9, column=3, offset=4
        )
        assert PIMULATOR_FORMAT.flat_index(base) == \
            PIMULATOR_FORMAT.flat_index(shifted)


SMALL_FORMATS = st.builds(
    AddressFormat,
    channel_bits=st.integers(min_value=1, max_value=3),
    bankgroup_bits=st.integers(min_value=0, max_value=2),
    bank_bits=st.integers(min_value=0, max_value=2),
    row_bits=st.integers(min_value=1, max_value=5),
)


class TestAddressMappingBijectivity:
    @pytest.mark.parametrize("policy", MAPPING_POLICIES)
    @given(address_format=SMALL_FORMATS)
    @settings(max_examples=25, deadline=None)
    def test_policy_permutation_is_bijective(self, policy, address_format):
        mapping = AddressMapping(
            lane_count=4, policy=policy, address_format=address_format
        )
        space = 1 << address_format.index_bits
        images = {mapping.permute(i) for i in range(space)}
        assert images == set(range(space))

    @given(
        address_format=SMALL_FORMATS,
        lane_count=st.integers(min_value=1, max_value=9),
        policy=st.sampled_from(MAPPING_POLICIES),
    )
    @settings(max_examples=50, deadline=None)
    def test_lane_of_is_total_and_in_range(
        self, address_format, lane_count, policy
    ):
        mapping = AddressMapping(
            lane_count=lane_count, policy=policy,
            address_format=address_format,
        )
        for flat in range(1 << address_format.index_bits):
            lane = mapping.permute(flat) % lane_count
            assert 0 <= lane < lane_count

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown mapping policy"):
            AddressMapping(lane_count=4, policy="zigzag")

    def test_out_of_range_index_rejected(self):
        mapping = AddressMapping(lane_count=4)
        with pytest.raises(ValueError, match="outside"):
            mapping.permute(1 << PIMULATOR_FORMAT.index_bits)


class TestGoldenRoundTrip:
    """Bundled fixture: parse -> lower -> verify, zero diagnostics."""

    def test_fixture_lowers_and_verifies_clean(self):
        arch = default_architecture(256, 64)
        workload = load_gemv_fixture()
        mapping = workload.build(arch)
        assert len(mapping.assignment) == 32
        mapping.validate_schedule()  # raises on an inconsistent schedule
        for label in ("StxSt", "BsxBs", "BsxBs+Hw"):
            report = verify_mapping(
                mapping, BalanceConfig.from_label(label), functional=True
            )
            assert report.ok, report.render_text()

    def test_functional_network_verifies_clean(self):
        workload = load_gemv_fixture()
        programs, order = workload.build_functional(
            NAND_LIBRARY, 64, capacity=255
        )
        report = verify_network(programs, order=order)
        assert not report.errors, report.render_text()

    def test_lowered_network_computes_gemv(self):
        workload = load_gemv_fixture()
        programs, order = workload.build_functional(
            NAND_LIBRARY, 64, capacity=255
        )
        out, matrix, vector = gemv_addresses()
        rng = random.Random(7)
        weights = [[rng.randrange(256) for _ in range(16)] for _ in range(16)]
        x = [rng.randrange(256) for _ in range(16)]
        operands = {
            lane: {name: 0 for name in program.inputs}
            for lane, program in programs.items()
        }
        for i in range(16):
            for j in range(16):
                operands[i][f"m{matrix[i][j]:x}"] = weights[i][j]
        for j in range(16):
            operands[16 + j][f"m{vector[j]:x}"] = x[j]
        outputs, _pool = evaluate_networked(programs, operands, order)
        for i in range(16):
            want = sum(weights[i][j] * x[j] for j in range(16))
            assert outputs[i][f"out_{out[i]:x}"] == want


class TestTraceWorkload:
    def test_signature_is_content_addressed(self, tmp_path):
        bundled = load_gemv_fixture()
        copy_path = tmp_path / "copy.trace"
        copy_path.write_text(fixture_path().read_text())
        again = TraceWorkload.from_file(copy_path, name="elsewhere")
        assert bundled.trace_hash == again.trace_hash
        other = small_gemv(tmp_path)
        assert bundled.trace_hash != other.trace_hash
        assert f"trace={bundled.trace_hash}" in bundled.signature

    def test_from_text_equivalent_to_from_file(self, tmp_path):
        text = fixture_path().read_text()
        assert TraceWorkload.from_text(text).trace_hash == \
            load_gemv_fixture().trace_hash

    def test_validation_rejects_bad_parameters(self):
        text = "PIM ADD 0x10 0x20 0x30\nPIM EXIT\n"
        with pytest.raises(ValueError, match="bits"):
            TraceWorkload.from_text(text, bits=1)
        with pytest.raises(ValueError, match="policy"):
            TraceWorkload.from_text(text, policy="zigzag")
        with pytest.raises(TraceLoweringError):
            TraceWorkload.from_text("W GPR 1\nPIM EXIT\n")

    def test_minimum_footprint_supported(self, tmp_path):
        from repro.core.failure import minimum_footprint

        arch = default_architecture(256, 64)
        footprint = minimum_footprint(small_gemv(tmp_path), arch)
        assert 0 < footprint <= arch.lane_size


class TestDeterminism:
    """Same seed, same trace => bit-identical wear, per balance config."""

    @pytest.mark.parametrize("label", DETERMINISM_CONFIGS)
    def test_simulator_bit_deterministic(self, tmp_path, label):
        arch = default_architecture(256, 64)
        workload = small_gemv(tmp_path)
        config = BalanceConfig.from_label(label)
        counts = []
        for _ in range(2):
            sim = EnduranceSimulator(
                arch, settings=SimulationSettings(seed=11)
            )
            result = sim.run(workload, config, 40)
            counts.append(np.array(result.state.write_counts, copy=True))
        assert np.array_equal(counts[0], counts[1])

    def test_engine_matches_direct_simulation(self, tmp_path):
        from repro.engine import run_simulation

        arch = default_architecture(256, 64)
        workload = small_gemv(tmp_path)
        config = BalanceConfig.from_label("BsxBs")
        settings = SimulationSettings(seed=11)
        direct = EnduranceSimulator(arch, settings=settings).run(
            workload, config, 40
        )
        routed = run_simulation(workload, config, arch, 40, settings=settings)
        assert np.array_equal(
            direct.state.write_counts, routed.state.write_counts
        )

    def test_fleet_cohort_runs_gemv_trace(self):
        from repro.fleet import (
            CohortSpec,
            FleetSpec,
            PopulationSpec,
            TrafficSpec,
            run_campaign,
        )

        spec = FleetSpec(
            population=PopulationSpec(
                n_arrays=2,
                technology_mix=(("PCM", 1.0),),
                cohorts=(CohortSpec("gemv-trace"),),
            ),
            traffic=TrafficSpec(model="deterministic", rate=100.0),
            days=2,
            seed=3,
            rows=256,
            cols=64,
            cohort_iterations=25,
        )
        def canonical(report):
            payload = report.to_json()
            # wall-clock timing is the one legitimately nondeterministic
            # field; everything else must be bit-stable.
            def strip(node):
                if isinstance(node, dict):
                    return {
                        k: strip(v) for k, v in node.items() if k != "wall_s"
                    }
                if isinstance(node, list):
                    return [strip(v) for v in node]
                return node

            return json.dumps(strip(payload), sort_keys=True)

        assert canonical(run_campaign(spec)) == canonical(run_campaign(spec))


class TestCapacityExhaustion:
    def test_overfull_lane_raises_memoryerror(self):
        # 16 MACs accumulate into one lane; a tiny lane cannot hold them.
        arch = default_architecture(32, 8)
        with pytest.raises(MemoryError):
            load_gemv_fixture().build(arch)


def test_fixture_file_matches_generator(tmp_path):
    regenerated = write_gemv_trace(tmp_path / "regen.trace")
    assert regenerated.read_text() == fixture_path().read_text()


def test_fixture_hash_pinned():
    """The bundled fixture is part of the benchmark contract (E35)."""
    digest = hashlib.sha256(fixture_path().read_bytes()).hexdigest()
    assert load_gemv_fixture().trace_hash  # content hash derives from IR
    assert len(digest) == 64
