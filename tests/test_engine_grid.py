"""Engine-routed sweeps must be bit-identical to the serial paths."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.simulator import EnduranceSimulator
from repro.core.sweep import (
    configuration_grid,
    remap_frequency_sweep,
    simulate_configs,
)
from repro.engine import EngineError
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def workload():
    return ParallelMultiplication(bits=8)


def fresh_sim(arch, seed=7):
    return EnduranceSimulator(arch, seed=seed)


class TestGridDeterminism:
    def test_parallel_grid_matches_serial_bit_exactly(
        self, tiny_arch, workload, tmp_path
    ):
        """jobs=4 through the engine == the in-process loop, per config."""
        serial = configuration_grid(
            fresh_sim(tiny_arch), workload, iterations=150
        )
        parallel = configuration_grid(
            fresh_sim(tiny_arch),
            workload,
            iterations=150,
            jobs=4,
            cache_dir=str(tmp_path),
        )
        assert [e.label for e in serial] == [e.label for e in parallel]
        for ours, theirs in zip(serial, parallel):
            assert np.array_equal(
                ours.result.state.write_counts,
                theirs.result.state.write_counts,
            ), ours.label
            assert ours.improvement == theirs.improvement
            assert (
                ours.lifetime.iterations_to_failure
                == theirs.lifetime.iterations_to_failure
            )

    def test_cached_rerun_matches_first_run(self, tiny_arch, workload, tmp_path):
        first = configuration_grid(
            fresh_sim(tiny_arch), workload, iterations=150,
            jobs=2, cache_dir=str(tmp_path),
        )
        rerun = configuration_grid(
            fresh_sim(tiny_arch), workload, iterations=150,
            cache_dir=str(tmp_path),
        )
        for ours, theirs in zip(first, rerun):
            assert np.array_equal(
                ours.result.state.write_counts,
                theirs.result.state.write_counts,
            )

    def test_engine_grid_keeps_figure_order_and_baseline(
        self, tiny_arch, workload, tmp_path
    ):
        entries = configuration_grid(
            fresh_sim(tiny_arch), workload, iterations=100,
            cache_dir=str(tmp_path),
        )
        assert len(entries) == 18
        static = [e for e in entries if e.config.is_static]
        assert static[0].improvement == pytest.approx(1.0)


class TestRemapSweepViaEngine:
    def test_engine_path_matches_serial(self, tiny_arch, workload, tmp_path):
        serial = remap_frequency_sweep(
            fresh_sim(tiny_arch), workload,
            intervals=(100, 25), iterations=400,
        )
        routed = remap_frequency_sweep(
            fresh_sim(tiny_arch), workload,
            intervals=(100, 25), iterations=400,
            jobs=2, cache_dir=str(tmp_path),
        )
        assert serial == routed


class TestSimulateConfigs:
    def test_duplicates_collapse(self, tiny_arch, workload):
        sim = fresh_sim(tiny_arch)
        configs = [BalanceConfig(), BalanceConfig()]
        results = simulate_configs(sim, workload, configs, iterations=100)
        assert len(results) == 1

    def test_engine_failures_surface_as_engine_error(self, tiny_arch, tmp_path):
        doomed = ParallelMultiplication(bits=32)  # cannot fit a 63-bit lane
        with pytest.raises(EngineError):
            simulate_configs(
                fresh_sim(tiny_arch),
                doomed,
                [BalanceConfig()],
                iterations=50,
                cache_dir=str(tmp_path),
            )
