"""Tests for repro.synth.popcount."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import (
    MAJ_LIBRARY,
    MINIMAL_LIBRARY,
    NAND_LIBRARY,
    NOR_LIBRARY,
)
from repro.synth.popcount import popcount
from repro.synth.program import LaneProgramBuilder

LIBRARIES = [MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY, MAJ_LIBRARY]


def _popcount_program(library, width):
    builder = LaneProgramBuilder(library)
    bits = builder.input_vector("v", width)
    count = popcount(builder, bits)
    builder.mark_output("count", count)
    return builder.finish()


class TestCorrectness:
    @pytest.mark.parametrize("library", LIBRARIES, ids=lambda l: l.name)
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
    def test_exhaustive_small_widths(self, library, width):
        program = _popcount_program(library, width)
        for value in range(2**width):
            outputs, _ = program.evaluate({"v": value})
            assert outputs["count"] == bin(value).count("1")

    @given(value=st.integers(0, 2**20 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_20bit(self, value):
        program = _popcount_program(MINIMAL_LIBRARY, 20)
        outputs, _ = program.evaluate({"v": value})
        assert outputs["count"] == bin(value).count("1")


class TestStructure:
    def test_result_width_is_logarithmic(self):
        for width, expected in ((1, 1), (3, 2), (7, 3), (8, 4), (15, 4)):
            program = _popcount_program(MINIMAL_LIBRARY, width)
            assert len(program.outputs["count"]) == expected

    def test_single_bit_passthrough(self):
        program = _popcount_program(MINIMAL_LIBRARY, 1)
        assert program.gate_count == 0

    @pytest.mark.parametrize("width", [4, 8, 16, 32])
    def test_adder_count_is_linear(self, width):
        # A popcount tree uses about `width` adders, i.e. ~5*width gates in
        # the minimal library — nothing quadratic.
        program = _popcount_program(MINIMAL_LIBRARY, width)
        assert program.gate_count <= 5 * width

    def test_inputs_freed(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        bits = builder.input_vector("v", 8)
        result = popcount(builder, bits)
        live = builder.allocator.live_count
        assert live == result.width  # only the count bits survive

    def test_zero_width_rejected(self):
        from repro.synth.bits import BitVector

        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        with pytest.raises(ValueError):
            popcount(builder, BitVector([]))
