"""Tests for repro.core.io: result persistence."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.io import load_result, save_result, save_distributions_csv
from repro.core.lifetime import lifetime_from_result
from repro.core.simulator import EnduranceSimulator
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def result(small_arch):
    sim = EnduranceSimulator(small_arch, seed=5)
    return sim.run(
        ParallelMultiplication(bits=8),
        BalanceConfig.from_label("RaxSt+Hw"),
        iterations=100,
    )


class TestRoundTrip:
    def test_counters_survive(self, result, tmp_path):
        path = str(tmp_path / "run.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert np.allclose(loaded.state.write_counts, result.state.write_counts)
        assert np.allclose(loaded.state.read_counts, result.state.read_counts)

    def test_metadata_survives(self, result, tmp_path):
        path = str(tmp_path / "run.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.workload_name == result.workload_name
        assert loaded.config.label == "RaxSt+Hw"
        assert loaded.iterations == result.iterations
        assert loaded.epochs == result.epochs
        assert loaded.iteration_latency_s == pytest.approx(
            result.iteration_latency_s
        )
        assert loaded.architecture.geometry == result.architecture.geometry
        assert (
            loaded.architecture.technology.name
            == result.architecture.technology.name
        )

    def test_lifetime_computable_from_loaded(self, result, tmp_path):
        path = str(tmp_path / "run.npz")
        save_result(result, path)
        loaded = load_result(path)
        original = lifetime_from_result(result)
        restored = lifetime_from_result(loaded)
        assert restored.iterations_to_failure == pytest.approx(
            original.iterations_to_failure
        )
        assert restored.seconds_to_failure == pytest.approx(
            original.seconds_to_failure
        )

    def test_distributions_from_loaded(self, result, tmp_path):
        path = str(tmp_path / "run.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.write_distribution.max == result.write_distribution.max
        assert "RaxSt+Hw" in loaded.write_distribution.label

    def test_version_check(self, result, tmp_path):
        import json

        path = str(tmp_path / "run.npz")
        save_result(result, path)
        # Corrupt the version field.
        with np.load(path) as archive:
            metadata = json.loads(str(archive["metadata"]))
            write_counts = archive["write_counts"]
            read_counts = archive["read_counts"]
        metadata["format_version"] = 99
        np.savez_compressed(
            path,
            write_counts=write_counts,
            read_counts=read_counts,
            metadata=json.dumps(metadata),
        )
        with pytest.raises(ValueError, match="unsupported"):
            load_result(path)


class TestCsvExport:
    def test_writes_one_file_per_distribution(self, result, tmp_path):
        paths = save_distributions_csv(
            [result.write_distribution, result.read_distribution],
            str(tmp_path / "out"),
        )
        assert len(paths) == 2
        for path in paths:
            loaded = np.loadtxt(path, delimiter=",")
            assert loaded.shape == (128, 128)
