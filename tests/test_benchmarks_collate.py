"""The benchmark trajectory collator (``benchmarks/collate.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_COLLATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "collate.py"
)


def _load_collate():
    spec = importlib.util.spec_from_file_location("bench_collate", _COLLATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


collate_mod = _load_collate()


def write_payload(results, experiment_id, payload):
    path = results / f"BENCH_{experiment_id}.json"
    path.write_text(json.dumps(payload))
    return path


class TestSummarizePayload:
    def test_extracts_conventions(self):
        row = collate_mod.summarize_payload(
            "E99",
            {
                "experiment": "E99_demo",
                "speedup": 4.2,
                "bit_identical": True,
                "cold": {"seconds": 1.5, "array_days_per_second": 1000.0},
                "label": "not a metric",
            },
        )
        assert row == {
            "id": "E99",
            "experiment": "E99_demo",
            "speedup": 4.2,
            "bit_identical": True,
            "throughput": {"cold.array_days_per_second": 1000.0},
            "timings": {"cold.seconds": 1.5},
        }

    def test_optional_fields_stay_absent(self):
        row = collate_mod.summarize_payload("E98", {"experiment": "E98_min"})
        assert row == {"id": "E98", "experiment": "E98_min"}

    def test_missing_experiment_name_rejected(self):
        with pytest.raises(ValueError, match="experiment"):
            collate_mod.summarize_payload("E97", {"speedup": 2.0})


class TestCollate:
    def test_sorted_numerically_with_summary(self, tmp_path):
        write_payload(
            tmp_path, "E10", {"experiment": "E10_a", "speedup": 2.0}
        )
        write_payload(
            tmp_path,
            "E2",
            {"experiment": "E2_b", "speedup": 9.0, "bit_identical": True},
        )
        doc = collate_mod.collate(tmp_path)
        assert [row["id"] for row in doc["benchmarks"]] == ["E2", "E10"]
        assert doc["summary"] == {
            "n_benchmarks": 2,
            "all_bit_identical": True,
            "max_speedup": 9.0,
        }

    def test_non_bench_files_ignored(self, tmp_path):
        write_payload(tmp_path, "E1", {"experiment": "E1_x"})
        (tmp_path / "E01_opcounts.txt").write_text("prose\n")
        (tmp_path / "notes.json").write_text("{}")
        doc = collate_mod.collate(tmp_path)
        assert len(doc["benchmarks"]) == 1

    def test_invalid_json_raises(self, tmp_path):
        (tmp_path / "BENCH_E5.json").write_text("{nope")
        with pytest.raises(ValueError, match="BENCH_E5.json"):
            collate_mod.collate(tmp_path)

    def test_broken_identity_fails_main(self, tmp_path, capsys):
        write_payload(
            tmp_path,
            "E3",
            {"experiment": "E3_bad", "bit_identical": False},
        )
        code = collate_mod.main(["--results", str(tmp_path)])
        assert code == 1
        assert "E3" in capsys.readouterr().out

    def test_main_writes_then_check_passes(self, tmp_path):
        write_payload(
            tmp_path,
            "E4",
            {"experiment": "E4_ok", "speedup": 3.0, "bit_identical": True},
        )
        assert collate_mod.main(["--results", str(tmp_path)]) == 0
        out = tmp_path / collate_mod.OUTPUT_NAME
        assert out.exists()
        assert collate_mod.main(["--results", str(tmp_path), "--check"]) == 0
        # A payload change makes --check fail until regenerated.
        write_payload(
            tmp_path,
            "E4",
            {"experiment": "E4_ok", "speedup": 5.0, "bit_identical": True},
        )
        assert collate_mod.main(["--results", str(tmp_path), "--check"]) == 1


class TestRepoTrajectory:
    def test_checked_in_trajectory_is_current(self):
        """The committed BENCH_TRAJECTORY.json matches the payloads."""
        results = _COLLATE_PATH.parent / "results"
        committed = results / collate_mod.OUTPUT_NAME
        assert committed.exists(), "run benchmarks/collate.py"
        doc = collate_mod.collate(results)
        assert collate_mod.render(doc) == committed.read_text()
        assert doc["summary"]["all_bit_identical"] is True
        ids = [row["id"] for row in doc["benchmarks"]]
        assert "E33" in ids
