"""The backend seam: delegation identity, pooling, graceful fallback."""

from __future__ import annotations

import builtins

import numpy as np
import pytest

from repro.core.backend import (
    BACKENDS,
    Backend,
    BufferPool,
    blas_implementation,
    flush_pool_counters,
    get_backend,
    reset_backend_cache,
)
from repro.core.fastforward import PERIODIC_KINDS
from repro.core.settings import SimulationSettings
from repro.telemetry import CaptureSink, get_telemetry
from repro.verify.wear import _FASTFORWARD_KINDS


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test resolves backends from a clean cache."""
    reset_backend_cache()
    yield
    reset_backend_cache()


class TestNumpyDelegation:
    """The numpy backend must be a pure pass-through to numpy."""

    def test_default_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.requested == "numpy"
        assert backend.is_numpy
        assert not backend.fell_back
        assert backend.xp is np

    def test_ops_match_numpy(self):
        backend = get_backend("numpy")
        rng = np.random.default_rng(3)
        a = rng.integers(0, 50, size=(6, 4)).astype(float)
        b = rng.integers(0, 50, size=(4, 5)).astype(float)
        assert np.array_equal(backend.matmul(a, b), a @ b)
        assert np.array_equal(backend.gemm(a, b), a @ b)
        assert np.array_equal(
            backend.argsort(a, axis=1), np.argsort(a, axis=1)
        )
        counts = rng.integers(0, 8, size=30)
        assert np.array_equal(
            backend.bincount(counts, minlength=10),
            np.bincount(counts, minlength=10),
        )
        assert np.array_equal(backend.cumsum(a, axis=0), np.cumsum(a, axis=0))
        assert np.array_equal(
            backend.outer(a[:, 0], b[0]), np.multiply.outer(a[:, 0], b[0])
        )
        bits = rng.integers(0, 2, size=64).astype(np.uint8)
        assert np.array_equal(
            backend.packbits(bits, bitorder="little"),
            np.packbits(bits, bitorder="little"),
        )

    def test_to_numpy_is_identity_on_host_arrays(self):
        backend = get_backend("numpy")
        a = np.arange(5.0)
        assert backend.to_numpy(a) is a

    def test_cached_instance(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestBufferPool:
    def test_same_key_returns_same_buffer(self):
        pool = BufferPool()
        a = pool.get("scratch", (4, 4))
        b = pool.get("scratch", (4, 4))
        assert a is b
        assert pool.hits == 1 and pool.misses == 1

    def test_distinct_shapes_get_distinct_buffers(self):
        pool = BufferPool()
        a = pool.get("scratch", (4, 4))
        b = pool.get("scratch", (2, 4))
        assert a is not b
        assert len(pool) == 2

    def test_distinct_dtypes_get_distinct_buffers(self):
        pool = BufferPool()
        a = pool.get("scratch", (4,), np.float64)
        b = pool.get("scratch", (4,), np.int64)
        assert a.dtype == np.float64 and b.dtype == np.int64
        assert a is not b

    def test_zero_refills(self):
        pool = BufferPool()
        a = pool.get("scratch", (3,), zero=True)
        a[:] = 7.0
        b = pool.get("scratch", (3,), zero=True)
        assert b is a
        assert np.array_equal(b, np.zeros(3))

    def test_without_zero_contents_persist(self):
        pool = BufferPool()
        a = pool.get("scratch", (3,))
        a[:] = 7.0
        assert np.array_equal(pool.get("scratch", (3,)), np.full(3, 7.0))

    def test_clear_drops_buffers(self):
        pool = BufferPool()
        pool.get("scratch", (3,))
        pool.clear()
        assert len(pool) == 0


class TestPoolCounterFlush:
    """Pool hit/miss totals publish to telemetry as deltas only."""

    @pytest.fixture
    def tele(self):
        from repro.telemetry import Telemetry, set_telemetry

        fresh = Telemetry()
        previous = set_telemetry(fresh)
        try:
            yield fresh
        finally:
            set_telemetry(previous)

    def test_flush_publishes_deltas_not_totals(self, tele):
        backend = get_backend("numpy")
        backend.pool.get("a", (4,))  # miss
        backend.pool.get("a", (4,))  # hit
        backend.flush_pool_counters()
        assert tele.counters["backend.pool.hits"] == 1
        assert tele.counters["backend.pool.misses"] == 1

        # A second flush with no pool traffic adds nothing.
        backend.flush_pool_counters()
        assert tele.counters["backend.pool.hits"] == 1
        assert tele.counters["backend.pool.misses"] == 1

        # Only the increments since the last flush are counted.
        backend.pool.get("a", (4,))  # hit
        backend.flush_pool_counters()
        assert tele.counters["backend.pool.hits"] == 2
        assert tele.counters["backend.pool.misses"] == 1

    def test_quiet_flush_writes_no_counter_keys(self, tele):
        backend = get_backend("numpy")
        backend.flush_pool_counters()
        assert "backend.pool.hits" not in tele.counters
        assert "backend.pool.misses" not in tele.counters

    def test_module_flush_covers_cached_backends(self, tele):
        backend = get_backend("numpy")
        backend.pool.get("a", (2, 2))
        flush_pool_counters()
        assert tele.counters["backend.pool.misses"] == 1


class TestGracefulFallback:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            get_backend("torch")

    @pytest.mark.parametrize("name", ["cupy", "numba"])
    def test_missing_import_falls_back_with_telemetry(
        self, name, monkeypatch
    ):
        def refuse(module_name):
            raise ImportError(f"No module named {module_name!r}")

        monkeypatch.setattr(
            "repro.core.backend._try_import", refuse
        )
        tele = get_telemetry()
        sink = tele.add_sink(CaptureSink())
        before = tele.counters.get("backend.fallbacks", 0)
        try:
            backend = get_backend(name)
        finally:
            tele.remove_sink(sink)
        assert backend.name == "numpy"
        assert backend.requested == name
        assert backend.fell_back
        assert backend.xp is np
        assert tele.counters.get("backend.fallbacks", 0) == before + 1
        events = sink.of("backend_fallback")
        assert len(events) == 1
        assert events[0]["requested"] == name
        assert events[0]["fallback"] == "numpy"

    def test_fallback_backend_still_simulates(self, monkeypatch, tiny_arch):
        """A missing accelerator degrades to numpy, never to a crash."""
        from repro.balance.config import BalanceConfig
        from repro.core.simulator import EnduranceSimulator
        from repro.workloads import ParallelMultiplication

        def refuse(module_name):
            raise ImportError("absent")

        monkeypatch.setattr("repro.core.backend._try_import", refuse)
        wl = ParallelMultiplication(bits=4)
        cfg = BalanceConfig.from_label("BsxBs")
        sim = EnduranceSimulator(tiny_arch)
        base = sim.run(wl, cfg, 10, settings=SimulationSettings())
        for name in ("cupy", "numba"):
            other = sim.run(
                wl, cfg, 10, settings=SimulationSettings(backend=name)
            )
            assert np.array_equal(
                base.state.write_counts, other.state.write_counts
            )
            assert np.array_equal(
                base.state.read_counts, other.state.read_counts
            )

    def test_numba_keeps_numpy_semantics_when_importable(self, monkeypatch):
        """Even a present numba backend computes on numpy arrays."""
        monkeypatch.setattr(
            "repro.core.backend._try_import", lambda name: builtins
        )
        backend = get_backend("numba")
        assert backend.name == "numba"
        assert not backend.fell_back
        assert backend.xp is np


class TestSettingsValidation:
    def test_backend_names_accepted(self):
        for name in BACKENDS:
            assert SimulationSettings(backend=name).backend == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationSettings(backend="torch")

    def test_fastforward_defaults_off(self):
        assert SimulationSettings().fastforward is False


class TestProvenance:
    def test_blas_implementation_is_nonempty_string(self):
        label = blas_implementation()
        assert isinstance(label, str) and label

    def test_backend_namespace_instantiable_directly(self):
        backend = Backend("numpy")
        assert backend.pool is not None
        assert isinstance(backend.zeros((2, 2)), np.ndarray)


def test_verify_periodic_kinds_pinned_to_core():
    """repro.verify duplicates the periodic-kind set (no core import);
    this pin keeps the two definitions from drifting apart."""
    assert _FASTFORWARD_KINDS == PERIODIC_KINDS
