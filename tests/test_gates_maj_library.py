"""Tests for the CRAM-style majority-gate library."""

import itertools

import pytest

from repro.gates.library import MAJ_LIBRARY, NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.adders import full_adder, half_adder, ripple_carry_add
from repro.synth.analysis import (
    carry_adder_counts,
    full_adder_counts,
    half_adder_counts,
    multiplier_counts,
)
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder


class TestLibraryContract:
    def test_native_ops(self):
        assert MAJ_LIBRARY.supports(GateOp.MAJ)
        assert MAJ_LIBRARY.supports(GateOp.NOT)
        assert not MAJ_LIBRARY.supports(GateOp.AND)

    def test_full_adder_is_4_gates(self):
        assert MAJ_LIBRARY.full_adder_gates == 4
        assert full_adder_counts(MAJ_LIBRARY).gates == 4

    def test_half_adder_is_4_gates(self):
        assert half_adder_counts(MAJ_LIBRARY).gates == 4

    def test_carry_adder_is_1_gate(self):
        # The comparator's borrow chain is a single native majority.
        assert MAJ_LIBRARY.carry_adder_gates == 1
        assert carry_adder_counts(MAJ_LIBRARY).gates == 1

    def test_multiplier_roughly_halves_nand_cost(self):
        maj = multiplier_counts(32, MAJ_LIBRARY)
        nand = multiplier_counts(32, NAND_LIBRARY)
        assert maj.gates == 5 * 32 * 32 - 4 * 32  # 4(b^2-2b) + 4b + b^2
        assert maj.cell_writes < 0.55 * nand.cell_writes


class TestMajArithmetic:
    @pytest.mark.parametrize(
        "a,b,cin", list(itertools.product([0, 1], repeat=3))
    )
    def test_full_adder_truth_table(self, a, b, cin):
        builder = LaneProgramBuilder(MAJ_LIBRARY)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        cv = builder.input_vector("c", 1)
        s, cout = full_adder(builder, av[0], bv[0], cv[0])
        builder.mark_output("s", BitVector([s]))
        builder.mark_output("cout", BitVector([cout]))
        outputs, _ = builder.finish().evaluate({"a": a, "b": b, "c": cin})
        assert outputs["s"] == (a + b + cin) % 2
        assert outputs["cout"] == (a + b + cin) // 2

    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], repeat=2)))
    def test_half_adder_truth_table(self, a, b):
        builder = LaneProgramBuilder(MAJ_LIBRARY)
        av = builder.input_vector("a", 1)
        bv = builder.input_vector("b", 1)
        s, carry = half_adder(builder, av[0], bv[0])
        builder.mark_output("s", BitVector([s]))
        builder.mark_output("carry", BitVector([carry]))
        outputs, _ = builder.finish().evaluate({"a": a, "b": b})
        assert outputs["s"] == a ^ b
        assert outputs["carry"] == a & b

    def test_ripple_carry_add_exhaustive(self):
        for x in range(16):
            for y in range(16):
                builder = LaneProgramBuilder(MAJ_LIBRARY)
                a = builder.input_vector("a", 4)
                b = builder.input_vector("b", 4)
                total = ripple_carry_add(builder, a, b)
                builder.mark_output("s", total)
                outputs, _ = builder.finish().evaluate({"a": x, "b": y})
                assert outputs["s"] == x + y

    def test_and_via_majority_with_shared_zero(self):
        builder = LaneProgramBuilder(MAJ_LIBRARY)
        a = builder.input_vector("a", 1)
        b = builder.input_vector("b", 1)
        builder.and_bit(a[0], b[0])
        builder.and_bit(a[0], b[0])
        program = builder.finish()
        # Two ANDs cost two gates but only ONE constant-zero write.
        assert program.gate_count == 2
        const_writes = sum(
            1
            for instr in program.instructions
            if hasattr(instr, "source")
            and type(instr.source).__name__ == "ConstBit"
        )
        assert const_writes == 1
        builder2 = LaneProgramBuilder(MAJ_LIBRARY)
        av = builder2.input_vector("a", 1)
        bv = builder2.input_vector("b", 1)
        out = builder2.and_bit(av[0], bv[0])
        builder2.mark_output("z", BitVector([out]))
        for x, y in itertools.product([0, 1], repeat=2):
            outputs, _ = builder2.finish().evaluate({"a": x, "b": y})
            assert outputs["z"] == (x & y)


class TestMajEndurancePayoff:
    def test_maj_architecture_lives_longer(self, small_arch):
        # Fewer gates per multiply = fewer writes = longer lifetime: the
        # device/architecture co-design lever the paper's conclusion
        # points at.
        from dataclasses import replace

        from repro.balance.config import BalanceConfig
        from repro.core.lifetime import lifetime_from_result
        from repro.core.simulator import EnduranceSimulator
        from repro.workloads.multiply import ParallelMultiplication

        nand_arch = small_arch
        maj_arch = replace(small_arch, library=MAJ_LIBRARY, name="CRAM-MAJ")
        workload = ParallelMultiplication(bits=8)
        nand_life = lifetime_from_result(
            EnduranceSimulator(nand_arch, seed=0).run(
                workload, BalanceConfig(), 200, track_reads=False
            )
        )
        maj_life = lifetime_from_result(
            EnduranceSimulator(maj_arch, seed=0).run(
                workload, BalanceConfig(), 200, track_reads=False
            )
        )
        assert maj_life.iterations_to_failure > 1.5 * nand_life.iterations_to_failure
