"""Tests for repro.core.writedist."""

import numpy as np
import pytest

from repro.array.geometry import Orientation
from repro.core.writedist import WriteDistribution, compare_balance


def _dist(counts, iterations=1, orientation=Orientation.COLUMN_PARALLEL, label=""):
    return WriteDistribution(np.asarray(counts, dtype=float), iterations,
                             orientation, label)


class TestStatistics:
    def test_max_mean_total(self):
        dist = _dist([[1, 2], [3, 4]])
        assert dist.max == 4
        assert dist.total == 10
        assert dist.mean == 2.5

    def test_max_per_iteration(self):
        dist = _dist([[10, 0], [0, 0]], iterations=5)
        assert dist.max_per_iteration == 2.0

    def test_cell_utilization(self):
        dist = _dist([[1, 0], [0, 2]])
        assert dist.cell_utilization == 0.5

    def test_balance_perfect_when_uniform(self):
        dist = _dist([[3, 3], [3, 3]])
        assert dist.balance == pytest.approx(1.0)

    def test_balance_ignores_unwritten_cells(self):
        dist = _dist([[4, 4], [0, 0]])
        assert dist.balance == pytest.approx(1.0)

    def test_balance_of_empty_distribution(self):
        dist = _dist([[0, 0], [0, 0]])
        assert dist.balance == 1.0
        assert dist.gini == 0.0

    def test_gini_uniform_is_zero(self):
        dist = _dist(np.full((4, 4), 7.0))
        assert dist.gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        counts = np.zeros((8, 8))
        counts[0, 0] = 100.0
        assert _dist(counts).gini > 0.9


class TestViews:
    def test_normalized_scale(self):
        dist = _dist([[2, 4], [0, 8]])
        normalized = dist.normalized()
        assert normalized.max() == pytest.approx(1.0)
        assert normalized[0, 0] == pytest.approx(0.25)

    def test_lane_matrix_orientation(self):
        counts = np.array([[1.0, 2.0], [3.0, 4.0]])
        column = _dist(counts, orientation=Orientation.COLUMN_PARALLEL)
        row = _dist(counts, orientation=Orientation.ROW_PARALLEL)
        assert np.array_equal(column.lane_matrix(), counts)
        assert np.array_equal(row.lane_matrix(), counts.T)

    def test_offset_profile_is_fig5_view(self):
        counts = np.array([[1.0, 3.0], [5.0, 7.0]])
        dist = _dist(counts)
        assert np.allclose(dist.offset_profile(), [2.0, 6.0])
        assert np.allclose(dist.lane_profile(), [3.0, 5.0])

    def test_downsample_block_means(self):
        counts = np.arange(16, dtype=float).reshape(4, 4)
        grid = _dist(counts).downsample((2, 2))
        assert grid.shape == (2, 2)
        assert grid[0, 0] == pytest.approx(counts[:2, :2].mean())

    def test_downsample_requires_divisible_blocks(self):
        with pytest.raises(ValueError, match="not divisible"):
            _dist(np.zeros((4, 4))).downsample((3, 2))


class TestRenderings:
    def test_ascii_heatmap_dimensions(self):
        counts = np.random.default_rng(0).random((32, 64))
        text = _dist(counts, label="demo").ascii_heatmap(blocks=(8, 16))
        lines = text.splitlines()
        assert "demo" in lines[0]
        assert len(lines) == 9
        assert all(len(line) == 16 for line in lines[1:])

    def test_ascii_heatmap_empty(self):
        text = _dist(np.zeros((8, 8))).ascii_heatmap(blocks=(2, 2))
        assert "no writes" in text

    def test_csv_round_trip(self, tmp_path):
        counts = np.arange(4, dtype=float).reshape(2, 2)
        path = tmp_path / "dist.csv"
        _dist(counts).to_csv(str(path))
        loaded = np.loadtxt(path, delimiter=",")
        assert np.allclose(loaded, counts)

    def test_csv_string(self):
        text = _dist([[1, 2], [3, 4]]).to_csv_string()
        assert text.splitlines()[0] == "1,2"

    def test_summary_contains_stats(self):
        summary = _dist([[1, 2], [3, 4]], label="x").summary()
        assert "max=4" in summary
        assert "balance=" in summary


class TestValidation:
    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            WriteDistribution(np.zeros(4), 1)

    def test_nonpositive_iterations_rejected(self):
        with pytest.raises(ValueError):
            WriteDistribution(np.zeros((2, 2)), 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            WriteDistribution(np.array([[-1.0, 0.0]]), 1)

    def test_compare_balance_sorts_descending(self):
        even = _dist([[1, 1]], label="even")
        skewed = _dist([[9, 1]], label="skewed")
        ranking = compare_balance([skewed, even])
        assert [label for label, _, _ in ranking] == ["even", "skewed"]
