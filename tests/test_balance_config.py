"""Tests for repro.balance.config: the 18-configuration space."""

import pytest

from repro.balance.config import BalanceConfig, all_configurations
from repro.balance.software import StrategyKind


class TestLabels:
    def test_label_format(self):
        config = BalanceConfig(
            within=StrategyKind.RANDOM,
            between=StrategyKind.BYTE_SHIFT,
            hardware=True,
        )
        assert config.label == "RaxBs+Hw"

    def test_from_label_round_trip(self):
        for config in all_configurations():
            assert BalanceConfig.from_label(config.label) == config

    def test_from_label_case_insensitive_hw(self):
        assert BalanceConfig.from_label("stxst+HW").hardware

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            BalanceConfig.from_label("Static")


class TestConfigurationSpace:
    def test_exactly_18_configurations(self):
        configs = all_configurations()
        assert len(configs) == 18
        assert len({config.label for config in configs}) == 18

    def test_nine_per_hardware_setting(self):
        configs = all_configurations()
        assert sum(1 for c in configs if c.hardware) == 9
        assert sum(1 for c in configs if not c.hardware) == 9

    def test_first_configuration_is_static_baseline(self):
        configs = all_configurations()
        assert configs[0].is_static
        assert configs[0].label == "StxSt"

    def test_is_static_excludes_hardware(self):
        assert not BalanceConfig(hardware=True).is_static

    def test_needs_recompilation(self):
        assert not BalanceConfig().needs_recompilation
        assert BalanceConfig(within=StrategyKind.RANDOM).needs_recompilation
        assert BalanceConfig(between=StrategyKind.BYTE_SHIFT).needs_recompilation
        # Hardware-only re-mapping needs no recompiles (Section 4).
        assert not BalanceConfig(hardware=True).needs_recompilation

    def test_with_interval(self):
        config = BalanceConfig().with_interval(50)
        assert config.recompile_interval == 50

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            BalanceConfig(recompile_interval=0)

    def test_custom_interval_propagates_to_all(self):
        for config in all_configurations(recompile_interval=500):
            assert config.recompile_interval == 500
