"""Tests for repro.devices.endurance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.endurance import LognormalEndurance, UniformEndurance


class TestUniformEndurance:
    def test_budgets_are_constant(self):
        model = UniformEndurance(1e6)
        budgets = model.sample_budgets((3, 4))
        assert budgets.shape == (3, 4)
        assert np.all(budgets == 1e6)

    def test_first_failure_is_endurance_over_max(self):
        # Eq. 4's core: with uniform endurance only the hottest cell matters.
        model = UniformEndurance(100.0)
        writes = np.array([1.0, 4.0, 2.0])
        assert model.iterations_to_first_failure(writes) == pytest.approx(25.0)

    def test_no_writes_means_infinite_lifetime(self):
        model = UniformEndurance(10)
        assert model.iterations_to_first_failure(np.zeros(5)) == float("inf")

    def test_cells_failed_threshold(self):
        model = UniformEndurance(10)
        writes = np.array([9.0, 10.0, 11.0])
        assert list(model.cells_failed(writes)) == [False, True, True]

    def test_nonpositive_endurance_rejected(self):
        with pytest.raises(ValueError):
            UniformEndurance(0)

    def test_repr_mentions_endurance(self):
        assert "1e+06" in repr(UniformEndurance(1e6))

    @given(
        peak=st.floats(min_value=0.1, max_value=1e6),
        endurance=st.floats(min_value=1.0, max_value=1e12),
    )
    @settings(max_examples=50)
    def test_lifetime_scales_inversely_with_peak(self, peak, endurance):
        model = UniformEndurance(endurance)
        writes = np.array([peak / 2, peak])
        assert model.iterations_to_first_failure(writes) == pytest.approx(
            endurance / peak
        )


class TestLognormalEndurance:
    def test_median_is_respected(self):
        model = LognormalEndurance(1e6, sigma=0.5, rng=0)
        budgets = model.sample_budgets((20000,))
        assert np.median(budgets) == pytest.approx(1e6, rel=0.05)

    def test_zero_sigma_degenerates_to_uniform(self):
        model = LognormalEndurance(1e5, sigma=0.0, rng=1)
        budgets = model.sample_budgets((100,))
        assert np.allclose(budgets, 1e5)

    def test_variation_reduces_expected_first_failure(self):
        # With per-cell spread, some cell is weaker than the median: the
        # first failure comes earlier than the uniform model predicts —
        # the paper's "more pessimistic" remark inverted.
        writes = np.ones(4096)
        uniform = UniformEndurance(1e6).iterations_to_first_failure(writes)
        lognormal = LognormalEndurance(1e6, sigma=0.7, rng=2)
        assert lognormal.iterations_to_first_failure(writes) < uniform

    def test_reproducible_with_seed(self):
        a = LognormalEndurance(1e6, rng=42).sample_budgets((10,))
        b = LognormalEndurance(1e6, rng=42).sample_budgets((10,))
        assert np.allclose(a, b)

    def test_budget_shape_mismatch_rejected(self):
        model = LognormalEndurance(1e6, rng=0)
        with pytest.raises(ValueError):
            model.cells_failed(np.zeros((2, 2)), budgets=np.zeros(3))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LognormalEndurance(0)
        with pytest.raises(ValueError):
            LognormalEndurance(1e6, sigma=-1)

    def test_first_failure_respects_write_pattern(self):
        # A cell that is never written cannot cause failure even if weak.
        model = LognormalEndurance(100, sigma=1.0, rng=3)
        writes = np.array([0.0, 1.0])
        horizon = model.iterations_to_first_failure(writes)
        assert np.isfinite(horizon)
        assert horizon > 0
