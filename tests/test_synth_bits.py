"""Tests for repro.synth.bits: allocation policies and bit vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.bits import AllocationPolicy, BitAllocator, BitVector


class TestLowestFirstAllocator:
    def test_fresh_allocation_is_sequential(self):
        allocator = BitAllocator()
        assert allocator.alloc_many(3) == [0, 1, 2]

    def test_freed_lowest_address_reused_first(self):
        allocator = BitAllocator()
        allocator.alloc_many(5)
        allocator.free(3)
        allocator.free(1)
        assert allocator.alloc() == 1
        assert allocator.alloc() == 3
        assert allocator.alloc() == 5

    def test_high_water_mark_tracks_peak(self):
        allocator = BitAllocator()
        bits = allocator.alloc_many(4)
        allocator.free_many(bits)
        allocator.alloc_many(2)
        assert allocator.high_water_mark == 4

    def test_capacity_exhaustion_raises(self):
        allocator = BitAllocator(capacity=2)
        allocator.alloc_many(2)
        with pytest.raises(MemoryError, match="capacity 2"):
            allocator.alloc()

    def test_double_free_rejected(self):
        allocator = BitAllocator()
        address = allocator.alloc()
        allocator.free(address)
        with pytest.raises(ValueError, match="not allocated"):
            allocator.free(address)

    def test_live_count(self):
        allocator = BitAllocator()
        bits = allocator.alloc_many(3)
        allocator.free(bits[0])
        assert allocator.live_count == 2
        assert not allocator.is_live(bits[0])
        assert allocator.is_live(bits[1])


class TestRingAllocator:
    def test_requires_capacity(self):
        with pytest.raises(ValueError, match="bounded capacity"):
            BitAllocator(policy=AllocationPolicy.RING)

    def test_ring_advances_past_freed_addresses(self):
        # Freed cells are not reused until the cursor wraps back around —
        # the sweep that spreads workspace wear across the whole lane.
        allocator = BitAllocator(capacity=4, policy=AllocationPolicy.RING)
        a = allocator.alloc()  # 0
        allocator.free(a)
        assert allocator.alloc() == 1
        assert allocator.alloc() == 2
        assert allocator.alloc() == 3
        assert allocator.alloc() == 0  # wrapped

    def test_ring_skips_live_cells(self):
        allocator = BitAllocator(capacity=3, policy=AllocationPolicy.RING)
        keep = allocator.alloc()  # 0, stays live
        b = allocator.alloc()  # 1
        allocator.free(b)
        assert allocator.alloc() == 2
        assert allocator.alloc() == 1  # 0 is live, so wrap lands on 1
        assert allocator.is_live(keep)

    def test_ring_exhaustion_raises(self):
        allocator = BitAllocator(capacity=2, policy=AllocationPolicy.RING)
        allocator.alloc_many(2)
        with pytest.raises(MemoryError):
            allocator.alloc()

    @given(ops=st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_ring_never_double_allocates(self, ops):
        allocator = BitAllocator(capacity=16, policy=AllocationPolicy.RING)
        live = set()
        for op in ops:
            if op == 0 and len(live) < 16:
                address = allocator.alloc()
                assert address not in live
                live.add(address)
            elif op == 1 and live:
                address = live.pop()
                allocator.free(address)


class TestBitVector:
    def test_width_and_iteration(self):
        vector = BitVector([3, 1, 7])
        assert vector.width == 3
        assert list(vector) == [3, 1, 7]

    def test_indexing_and_slicing(self):
        vector = BitVector([3, 1, 7, 9])
        assert vector[0] == 3
        assert vector[1:3] == BitVector([1, 7])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BitVector([1, 1])

    def test_concat(self):
        assert BitVector([0, 1]).concat(BitVector([5])) == BitVector([0, 1, 5])

    def test_value_bits_round_trip(self):
        bits = BitVector.value_bits(0b1011, 6)
        assert bits == [1, 1, 0, 1, 0, 0]
        assert BitVector.bits_value(bits) == 0b1011

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            BitVector.value_bits(16, 4)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitVector.value_bits(-1, 4)

    @given(value=st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_round_trip_property(self, value):
        assert BitVector.bits_value(BitVector.value_bits(value, 32)) == value
