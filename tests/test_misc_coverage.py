"""Coverage for utility paths: netlists, networked-evaluation errors,
shuffled programs on every library, CLI remap-sweep."""

import pytest

from repro.balance.access_aware import build_shuffled_multiply
from repro.cli import main
from repro.gates.library import MAJ_LIBRARY, NOR_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder
from repro.workloads.base import evaluate_networked


class TestNetlist:
    def _program(self):
        builder = LaneProgramBuilder(NOR_LIBRARY, name="demo")
        a = builder.input_vector("a", 2)
        x = builder.gate(GateOp.NOR, a[0], a[1])
        builder.mark_output("z", BitVector([x]))
        builder.read_out(BitVector([x]), tag="z")
        return builder.finish()

    def test_netlist_lists_every_instruction_kind(self):
        text = self._program().format_netlist()
        assert "WRITE" in text and "NOR" in text and "READ" in text
        assert "a[0]" in text
        assert "z[0]" in text

    def test_netlist_limit_elides(self):
        text = self._program().format_netlist(limit=1)
        assert "more instructions" in text

    def test_netlist_full(self):
        text = self._program().format_netlist(limit=None)
        assert "more instructions" not in text

    def test_netlist_shows_const_and_external(self):
        builder = LaneProgramBuilder(MAJ_LIBRARY)
        builder.const_bit(1)
        builder.receive_vector("stream", 1)
        text = builder.finish().format_netlist()
        assert "const 1" in text
        assert "<stream[0]>" in text


class TestEvaluateNetworkedErrors:
    def _pair(self):
        sender_builder = LaneProgramBuilder(NOR_LIBRARY)
        value = sender_builder.input_vector("v", 1)
        sender_builder.send_vector(value, "link")
        sender = sender_builder.finish()
        receiver_builder = LaneProgramBuilder(NOR_LIBRARY)
        incoming = receiver_builder.receive_vector("link", 1)
        receiver_builder.mark_output("got", incoming)
        receiver = receiver_builder.finish()
        return sender, receiver

    def test_happy_path(self):
        sender, receiver = self._pair()
        outputs, pool = evaluate_networked(
            {1: sender, 0: receiver}, {1: {"v": 1}}, order=[1, 0]
        )
        assert outputs[0]["got"] == 1
        assert pool["link"] == [1]

    def test_order_must_cover_lanes(self):
        sender, receiver = self._pair()
        with pytest.raises(ValueError, match="exactly the mapped lanes"):
            evaluate_networked({0: receiver, 1: sender}, {}, order=[0])

    def test_duplicate_tag_rejected(self):
        sender, _ = self._pair()
        with pytest.raises(ValueError, match="duplicate transfer tag"):
            evaluate_networked(
                {0: sender, 1: sender},
                {0: {"v": 1}, 1: {"v": 0}},
                order=[0, 1],
            )

    def test_preseeded_externals(self):
        _, receiver = self._pair()
        outputs, _ = evaluate_networked(
            {0: receiver}, {}, order=[0], externals={"link": [1]}
        )
        assert outputs[0]["got"] == 1


class TestShuffledMultiplyOtherLibraries:
    @pytest.mark.parametrize(
        "library", [NOR_LIBRARY, MAJ_LIBRARY], ids=lambda l: l.name
    )
    def test_correct_on_copy_free_fabrics(self, library):
        program = build_shuffled_multiply(library, 3)
        for x in range(8):
            for y in range(8):
                outputs, _ = program.evaluate({"a": x, "b": y})
                assert outputs["product"] == x * y


class TestCliRemapSweep:
    def test_remap_sweep_runs(self, capsys):
        main([
            "--rows", "256", "--cols", "32",
            "remap-sweep", "--workload", "mult",
            "--iterations", "200", "--intervals", "100", "20",
        ])
        out = capsys.readouterr().out
        assert "Recompile" in out
