"""Tests for repro.synth.comparator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY
from repro.synth.bits import BitVector
from repro.synth.comparator import compare_ge
from repro.synth.program import LaneProgramBuilder


def _compare_program(library, width, free_inputs=False):
    builder = LaneProgramBuilder(library)
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    result = compare_ge(builder, a, b, free_inputs=free_inputs)
    builder.mark_output("ge", BitVector([result]))
    return builder.finish()


class TestCorrectness:
    @pytest.mark.parametrize(
        "library", [MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY],
        ids=lambda l: l.name,
    )
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive_small_widths(self, library, width):
        program = _compare_program(library, width)
        for x in range(2**width):
            for y in range(2**width):
                outputs, _ = program.evaluate({"a": x, "b": y})
                assert outputs["ge"] == int(x >= y), (library.name, x, y)

    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_random_8bit_comparisons(self, x, y):
        program = _compare_program(NAND_LIBRARY, 8)
        outputs, _ = program.evaluate({"a": x, "b": y})
        assert outputs["ge"] == int(x >= y)


class TestCostsAndValidation:
    @pytest.mark.parametrize(
        "library", [MINIMAL_LIBRARY, NAND_LIBRARY, NOR_LIBRARY],
        ids=lambda l: l.name,
    )
    def test_gate_cost_is_nots_plus_carry_adders(self, library):
        width = 8
        program = _compare_program(library, width)
        expected = width * (1 + library.carry_adder_gates)
        assert program.gate_count == expected

    def test_no_dead_sum_writes(self):
        # The carry-only chain reads every gate output it writes; a full
        # adder per bit would leave `width` discarded sum cells behind.
        program = _compare_program(NAND_LIBRARY, 8)
        read_addresses = {
            addr for instr in program.instructions
            for addr in getattr(instr, "inputs", ())
        }
        output_addrs = {
            addr for bits in program.outputs.values() for addr in bits
        }
        for instr in program.instructions:
            if getattr(instr, "op", None) is not None:
                assert (
                    instr.output in read_addresses
                    or instr.output in output_addrs
                )

    def test_one_constant_seed_write(self):
        program = _compare_program(MINIMAL_LIBRARY, 4)
        # 8 operand loads + 1 constant carry seed + gate outputs.
        assert program.total_writes == 8 + 1 + program.gate_count

    def test_mismatched_widths_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 4)
        b = builder.input_vector("b", 2)
        with pytest.raises(ValueError, match="equal widths"):
            compare_ge(builder, a, b)

    def test_free_inputs_shrinks_live_set(self):
        def live_count(free_inputs):
            builder = LaneProgramBuilder(MINIMAL_LIBRARY)
            a = builder.input_vector("a", 4)
            b = builder.input_vector("b", 4)
            compare_ge(builder, a, b, free_inputs=free_inputs)
            return builder.allocator.live_count

        assert live_count(True) == live_count(False) - 8
