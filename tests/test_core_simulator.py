"""Tests for repro.core.simulator."""

import numpy as np
import pytest

from repro.array.architecture import default_architecture
from repro.array.executor import replay_assignment
from repro.array.state import ArrayState
from repro.balance.config import BalanceConfig
from repro.balance.software import StrategyKind
from repro.core.simulator import EnduranceSimulator
from repro.workloads.dotproduct import DotProduct
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def sim(small_arch):
    return EnduranceSimulator(small_arch, seed=11)


@pytest.fixture
def workload():
    return ParallelMultiplication(bits=8)


class TestConservation:
    def test_total_writes_invariant_across_configs(self, sim, workload):
        # Load balancing moves writes; it never creates or destroys them.
        totals = set()
        for label in ("StxSt", "RaxRa", "BsxBs", "StxSt+Hw", "RaxBs+Hw"):
            result = sim.run(
                workload, BalanceConfig.from_label(label), iterations=300
            )
            totals.add(round(result.state.total_writes, 3))
        assert len(totals) == 1

    def test_totals_scale_linearly_with_iterations(self, sim, workload):
        one = sim.run(workload, BalanceConfig(), iterations=100)
        two = sim.run(workload, BalanceConfig(), iterations=200)
        assert two.state.total_writes == pytest.approx(
            2 * one.state.total_writes
        )

    def test_reads_tracked_by_default(self, sim, workload):
        result = sim.run(workload, BalanceConfig(), iterations=50)
        assert result.state.total_reads > 0

    def test_track_reads_off_zeroes_reads(self, sim, workload):
        result = sim.run(
            workload, BalanceConfig(), iterations=50, track_reads=False
        )
        assert result.state.total_reads == 0


class TestAgainstReplay:
    def test_static_run_matches_instruction_replay(self, workload):
        arch = default_architecture(64, 16)
        sim = EnduranceSimulator(arch, seed=0)
        result = sim.run(workload, BalanceConfig(), iterations=7)
        expected = ArrayState(arch.geometry)
        mapping = workload.build(arch)
        replay_assignment(arch, mapping.assignment, expected, repetitions=7)
        assert np.allclose(result.state.write_counts, expected.write_counts)
        assert np.allclose(result.state.read_counts, expected.read_counts)

    def test_software_epochs_match_manual_composition(self, workload):
        # Byte-shift is deterministic, so the simulator's epoch loop can be
        # recomposed by hand.
        from repro.balance.mapping import byte_shift_permutation

        arch = default_architecture(64, 16)
        sim = EnduranceSimulator(arch, seed=0)
        config = BalanceConfig(
            within=StrategyKind.BYTE_SHIFT, recompile_interval=3
        )
        result = sim.run(workload, config, iterations=7)

        expected = ArrayState(arch.geometry)
        mapping = workload.build(arch)
        for epoch, length in ((0, 3), (1, 3), (2, 1)):
            replay_assignment(
                arch,
                mapping.assignment,
                expected,
                within_map=byte_shift_permutation(arch.lane_size, epoch),
                repetitions=length,
            )
        assert np.allclose(result.state.write_counts, expected.write_counts)


class TestEpochSemantics:
    def test_static_config_is_single_epoch(self, sim, workload):
        result = sim.run(workload, BalanceConfig(), iterations=1000)
        assert result.epochs == 1

    def test_hardware_only_is_single_epoch(self, sim, workload):
        result = sim.run(
            workload, BalanceConfig(hardware=True), iterations=1000
        )
        assert result.epochs == 1

    def test_software_configs_epoch_count(self, sim, workload):
        config = BalanceConfig(
            within=StrategyKind.RANDOM, recompile_interval=100
        )
        result = sim.run(workload, config, iterations=250)
        assert result.epochs == 3  # 100 + 100 + 50

    def test_seed_reproducibility(self, small_arch, workload):
        config = BalanceConfig.from_label("RaxRa")
        a = EnduranceSimulator(small_arch, seed=5).run(
            workload, config, iterations=300
        )
        b = EnduranceSimulator(small_arch, seed=5).run(
            workload, config, iterations=300
        )
        assert np.allclose(a.state.write_counts, b.state.write_counts)

    def test_different_seeds_differ(self, small_arch, workload):
        config = BalanceConfig.from_label("RaxRa")
        a = EnduranceSimulator(small_arch, seed=1).run(
            workload, config, iterations=300
        )
        b = EnduranceSimulator(small_arch, seed=2).run(
            workload, config, iterations=300
        )
        assert not np.allclose(a.state.write_counts, b.state.write_counts)

    def test_invalid_iterations_rejected(self, sim, workload):
        with pytest.raises(ValueError):
            sim.run(workload, BalanceConfig(), iterations=0)


class TestHardwarePath:
    def test_hardware_run_matches_explicit_remapper(self, workload):
        # End-to-end: the simulator's Hw path equals the remapper's naive
        # stateful simulation broadcast over lanes.
        from repro.balance.hardware import HardwareRemapper

        arch = default_architecture(64, 8)
        sim = EnduranceSimulator(arch, seed=0)
        result = sim.run(
            workload, BalanceConfig(hardware=True), iterations=5
        )
        program = workload.build(arch).distinct_programs()[0]
        remapper = HardwareRemapper(program, arch.lane_size, True)
        writes, reads = remapper.simulate_explicit(5)
        expected_writes = np.outer(writes, np.ones(arch.lane_count))
        assert np.allclose(result.state.write_counts, expected_writes)

    def test_hardware_spreads_multi_role_workload(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=3)
        workload = DotProduct(n_elements=32, bits=8)
        static = sim.run(workload, BalanceConfig(), iterations=200)
        hardware = sim.run(
            workload, BalanceConfig(hardware=True), iterations=200
        )
        assert hardware.state.max_writes <= static.state.max_writes
        assert hardware.state.total_writes == pytest.approx(
            static.state.total_writes
        )

    def test_result_metadata(self, sim, workload):
        config = BalanceConfig.from_label("RaxSt+Hw")
        result = sim.run(workload, config, iterations=120)
        assert result.iterations == 120
        assert result.config is config
        assert result.workload_name == workload.name
        assert result.max_writes_per_iteration > 0
        assert result.iteration_latency_s > 0
        dist = result.write_distribution
        assert "RaxSt+Hw" in dist.label


class TestMappingCache:
    """Regression: the mapping cache must key on parameters, not name."""

    def test_same_name_different_params_do_not_collide(self, sim):
        from repro.synth.bits import AllocationPolicy

        ring = ParallelMultiplication(bits=8)
        packed = ParallelMultiplication(
            bits=8, allocation_policy=AllocationPolicy.LOWEST_FIRST
        )
        assert ring.name == packed.name  # the collision the bug needed
        first = sim.run(ring, BalanceConfig(), iterations=50)
        second = sim.run(packed, BalanceConfig(), iterations=50)
        # LOWEST_FIRST packs the workspace tight; RING sweeps the lane.
        # With the name-keyed cache both runs reused the ring mapping and
        # these distributions came out identical.
        assert not np.array_equal(
            first.state.write_counts, second.state.write_counts
        )

    def test_equal_params_reuse_one_mapping(self, sim, workload):
        sim.run(workload, BalanceConfig(), iterations=20)
        cached = dict(sim._mapping_cache)
        sim.run(ParallelMultiplication(bits=8), BalanceConfig(), iterations=20)
        assert dict(sim._mapping_cache) == cached
        assert len(cached) == 1

    def test_signature_covers_class_and_params(self):
        ring = ParallelMultiplication(bits=8)
        wide = ParallelMultiplication(bits=16)
        assert ring.signature != wide.signature
        assert "ParallelMultiplication" in ring.signature
        assert "bits=8" in ring.signature


class TestResultSurface:
    def test_lane_utilization_exposed_on_result(self, sim, workload):
        result = sim.run(workload, BalanceConfig(), iterations=30)
        assert result.lane_utilization == result.mapping.lane_utilization
