"""Tests for the first-class workload registry."""

import warnings

import pytest

from repro.workloads import VectorAdd, Workload
from repro.workloads.registry import (
    RESERVED_NAMES,
    UnknownWorkloadError,
    WorkloadRegistrationError,
    available_workloads,
    deprecate_workload,
    get_workload,
    get_workload_factory,
    register,
    unregister,
    workload_entries,
    workload_factories,
)

BUILTINS = ("add", "bnn", "conv", "dot", "gemv-trace", "matvec", "mult")


@pytest.fixture
def scratch_name():
    """A throwaway registration name, unregistered on teardown."""
    name = "pytest-scratch"
    yield name
    for candidate in (name, name + "-alias"):
        try:
            unregister(candidate)
        except UnknownWorkloadError:
            pass


class TestResolution:
    def test_builtins_are_registered(self):
        assert set(BUILTINS) <= set(available_workloads())

    def test_get_workload_builds_fresh_instances(self):
        first = get_workload("add")
        second = get_workload("add")
        assert isinstance(first, Workload)
        assert first is not second

    def test_factory_identity_is_stable(self):
        assert get_workload_factory("add") is get_workload_factory("add")

    def test_builtin_signatures_match_direct_construction(self):
        assert get_workload("add").signature == VectorAdd(bits=32).signature

    def test_unknown_name_raises_keyerror_subclass(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("no-such-kernel")
        with pytest.raises(KeyError):
            get_workload("no-such-kernel")

    def test_unknown_message_has_suggestion_and_provenance(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("mutl")
        message = str(excinfo.value)
        assert "did you mean 'mult'" in message
        assert "registered workloads:" in message
        assert "built-in kernel" in message
        assert "bundled PIMulator GEMV trace" in message


class TestRegistration:
    def test_register_and_unregister(self, scratch_name):
        register(scratch_name, lambda: VectorAdd(bits=8))
        assert scratch_name in available_workloads()
        assert get_workload(scratch_name).signature == \
            VectorAdd(bits=8).signature
        unregister(scratch_name)
        assert scratch_name not in available_workloads()

    def test_collision_requires_replace(self, scratch_name):
        register(scratch_name, lambda: VectorAdd(bits=8))
        with pytest.raises(WorkloadRegistrationError, match="already"):
            register(scratch_name, lambda: VectorAdd(bits=16))
        entry = register(
            scratch_name, lambda: VectorAdd(bits=16), replace=True
        )
        assert entry.name == scratch_name
        assert get_workload(scratch_name).signature == \
            VectorAdd(bits=16).signature

    @pytest.mark.parametrize("bad", ["", "two words", "tab\tname", 42, None])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(WorkloadRegistrationError):
            register(bad, lambda: VectorAdd(bits=8))

    @pytest.mark.parametrize("reserved", RESERVED_NAMES)
    def test_reserved_names_rejected(self, reserved):
        with pytest.raises(WorkloadRegistrationError, match="reserved"):
            register(reserved, lambda: VectorAdd(bits=8))

    def test_non_callable_factory_rejected(self):
        with pytest.raises(WorkloadRegistrationError, match="callable"):
            register("pytest-bad-factory", "not-a-factory")

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownWorkloadError):
            unregister("never-registered")


class TestDeprecation:
    def test_alias_resolves_with_warning_and_is_hidden(self, scratch_name):
        register(scratch_name, lambda: VectorAdd(bits=8))
        alias = scratch_name + "-alias"
        deprecate_workload(alias, use=scratch_name)
        assert alias not in available_workloads()
        assert alias in workload_factories  # still resolvable
        with pytest.warns(DeprecationWarning, match=scratch_name):
            workload = get_workload(alias)
        assert workload.signature == VectorAdd(bits=8).signature

    def test_alias_target_must_exist(self):
        with pytest.raises(UnknownWorkloadError):
            deprecate_workload("old-name", use="never-registered")

    def test_entries_expose_deprecation(self, scratch_name):
        register(scratch_name, lambda: VectorAdd(bits=8))
        alias = scratch_name + "-alias"
        deprecate_workload(alias, use=scratch_name)
        by_name = {entry.name: entry for entry in workload_entries()}
        assert by_name[alias].deprecated_for == scratch_name
        assert by_name[scratch_name].deprecated_for is None


class TestFactoryView:
    """The legacy dicts are live read-only views over the registry."""

    def test_item_access_returns_registered_factory(self):
        assert workload_factories["mult"] is get_workload_factory("mult")

    def test_iteration_matches_available(self):
        assert tuple(workload_factories) == available_workloads()
        assert len(workload_factories) == len(available_workloads())

    def test_membership(self):
        assert "mult" in workload_factories
        assert "no-such-kernel" not in workload_factories

    def test_unknown_key_raises_rich_error(self):
        with pytest.raises(UnknownWorkloadError):
            workload_factories["no-such-kernel"]

    def test_view_sees_new_registrations(self, scratch_name):
        assert scratch_name not in workload_factories
        register(scratch_name, lambda: VectorAdd(bits=8))
        assert scratch_name in workload_factories

    def test_legacy_aliases_point_at_the_view(self):
        import repro.cli
        import repro.fleet.population

        assert repro.cli._WORKLOADS is workload_factories
        assert (
            repro.fleet.population.WORKLOAD_FACTORIES is workload_factories
        )


class TestFleetIntegration:
    def test_cohort_spec_resolves_registered_names(self, scratch_name):
        from repro.fleet import CohortSpec

        register(scratch_name, lambda: VectorAdd(bits=8))
        spec = CohortSpec(scratch_name)
        assert spec.build_workload().signature == VectorAdd(bits=8).signature

    def test_cohort_spec_unknown_name_is_valueerror(self):
        from repro.fleet import CohortSpec

        with pytest.raises(ValueError, match="did you mean"):
            CohortSpec("mutl")

    def test_cohort_spec_accepts_deprecated_alias(self, scratch_name):
        from repro.fleet import CohortSpec

        register(scratch_name, lambda: VectorAdd(bits=8))
        alias = scratch_name + "-alias"
        deprecate_workload(alias, use=scratch_name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            spec = CohortSpec(alias)
            workload = spec.build_workload()
        assert workload.signature == VectorAdd(bits=8).signature
