"""Tests for repro.balance.hardware: the cycle algebra is bit-exact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.hardware import HardwareRemapper, _cycles_of
from repro.gates.library import NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder


def _program(width=2):
    builder = LaneProgramBuilder(NAND_LIBRARY, name="probe")
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    x = builder.gate(GateOp.NAND, a[0], b[0])
    y = builder.gate(GateOp.NAND, a[1], b[1])
    z = builder.gate(GateOp.NAND, x, y)
    builder.free_many((x, y))
    builder.read_out(BitVector([z]), tag="z")
    return builder.finish()


class TestCycles:
    def test_identity_has_singleton_cycles(self):
        cycles = _cycles_of(np.arange(4))
        assert len(cycles) == 4

    def test_rotation_is_one_cycle(self):
        tau = np.array([1, 2, 3, 0])
        cycles = _cycles_of(tau)
        assert len(cycles) == 1
        assert cycles[0].tolist() == [0, 1, 2, 3]

    def test_cycle_orbit_order(self):
        tau = np.array([2, 0, 1])  # 0 -> 2 -> 1 -> 0
        cycles = _cycles_of(tau)
        assert cycles[0].tolist() == [0, 2, 1]


class TestAlgebraMatchesExplicit:
    @given(
        iterations=st.integers(1, 60),
        lane_size=st.integers(12, 24),
        presets=st.booleans(),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_profile_equals_explicit_simulation(
        self, iterations, lane_size, presets, seed
    ):
        # The closed-form cycle algebra must match the stateful replay
        # exactly, for any horizon and any initial software mapping.
        program = _program()
        remapper = HardwareRemapper(program, lane_size, presets)
        within = np.random.default_rng(seed).permutation(lane_size)
        fast_w, fast_r = remapper.profile(iterations, within)
        slow_w, slow_r = remapper.simulate_explicit(iterations, within)
        assert np.allclose(fast_w, slow_w)
        assert np.allclose(fast_r, slow_r)

    def test_identity_map_default(self):
        program = _program()
        remapper = HardwareRemapper(program, 16, include_presets=True)
        fast = remapper.profile(10)
        slow = remapper.simulate_explicit(10)
        assert np.allclose(fast[0], slow[0])
        assert np.allclose(fast[1], slow[1])


class TestSemantics:
    def test_total_writes_preserved(self):
        # Renaming redirects writes; it never adds or removes them.
        program = _program()
        for presets in (False, True):
            remapper = HardwareRemapper(program, 16, presets)
            writes, _ = remapper.profile(25)
            per_iteration = program.write_counts(include_presets=presets).sum()
            assert writes.sum() == pytest.approx(25 * per_iteration)

    def test_total_reads_preserved(self):
        program = _program()
        remapper = HardwareRemapper(program, 16, False)
        _, reads = remapper.profile(13)
        assert reads.sum() == pytest.approx(13 * program.read_counts().sum())

    def test_renaming_spreads_writes(self):
        # Under static mapping the hottest cell takes every reuse; renaming
        # rotates the free bit so the peak must drop (Section 3.2's goal).
        builder = LaneProgramBuilder(NAND_LIBRARY)
        a = builder.input_vector("a", 2)
        hot = builder.gate(GateOp.NAND, a[0], a[1])
        for _ in range(20):  # hammer one logical bit
            builder.free(hot)
            hot = builder.gate(GateOp.NAND, a[0], a[1])
        program = builder.finish()
        lane_size = 32
        static_peak = program.write_counts(lane_size).max() * 50
        remapper = HardwareRemapper(program, lane_size, False)
        writes, _ = remapper.profile(50)
        # Renaming rotates the free bit through every written cell (plus
        # the spare): 4 cells share what one hot cell used to absorb.
        assert writes.max() < static_peak / 3
        assert np.count_nonzero(writes) == 4

    def test_preset_rides_on_same_cell(self):
        # A preset plus the gate write must land on one physical cell per
        # event: per-cell counts under presets are exactly double.
        program = _program()
        base = HardwareRemapper(program, 16, False)
        doubled = HardwareRemapper(program, 16, True)
        writes_base, _ = base.profile(7)
        writes_doubled, _ = doubled.profile(7)
        # Subtract the (unweighted) operand-load writes to compare gates.
        gate_only_base = writes_base.sum() - 7 * 4
        gate_only_doubled = writes_doubled.sum() - 7 * 4
        assert gate_only_doubled == pytest.approx(2 * gate_only_base)

    def test_footprint_must_leave_spare_bit(self):
        program = _program()
        with pytest.raises(ValueError, match="spare bit"):
            HardwareRemapper(program, program.footprint, False)

    def test_negative_iterations_rejected(self):
        remapper = HardwareRemapper(_program(), 16, False)
        with pytest.raises(ValueError):
            remapper.profile(-1)

    def test_zero_iterations_is_empty(self):
        remapper = HardwareRemapper(_program(), 16, False)
        writes, reads = remapper.profile(0)
        assert writes.sum() == 0
        assert reads.sum() == 0

    def test_profile_cache_consistency(self):
        remapper = HardwareRemapper(_program(), 16, True)
        first = remapper.profile(9)[0].copy()
        second = remapper.profile(9)[0]
        assert np.allclose(first, second)
