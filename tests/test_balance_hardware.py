"""Tests for repro.balance.hardware: the cycle algebra is bit-exact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.hardware import HardwareRemapper, _cycles_of
from repro.gates.library import NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import LaneProgramBuilder


def _program(width=2):
    builder = LaneProgramBuilder(NAND_LIBRARY, name="probe")
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    x = builder.gate(GateOp.NAND, a[0], b[0])
    y = builder.gate(GateOp.NAND, a[1], b[1])
    z = builder.gate(GateOp.NAND, x, y)
    builder.free_many((x, y))
    builder.read_out(BitVector([z]), tag="z")
    return builder.finish()


class TestCycles:
    def test_identity_has_singleton_cycles(self):
        cycles = _cycles_of(np.arange(4))
        assert len(cycles) == 4

    def test_rotation_is_one_cycle(self):
        tau = np.array([1, 2, 3, 0])
        cycles = _cycles_of(tau)
        assert len(cycles) == 1
        assert cycles[0].tolist() == [0, 1, 2, 3]

    def test_cycle_orbit_order(self):
        tau = np.array([2, 0, 1])  # 0 -> 2 -> 1 -> 0
        cycles = _cycles_of(tau)
        assert cycles[0].tolist() == [0, 2, 1]


class TestAlgebraMatchesExplicit:
    @given(
        iterations=st.integers(1, 60),
        lane_size=st.integers(12, 24),
        presets=st.booleans(),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_profile_equals_explicit_simulation(
        self, iterations, lane_size, presets, seed
    ):
        # The closed-form cycle algebra must match the stateful replay
        # exactly, for any horizon and any initial software mapping.
        program = _program()
        remapper = HardwareRemapper(program, lane_size, presets)
        within = np.random.default_rng(seed).permutation(lane_size)
        fast_w, fast_r = remapper.profile(iterations, within)
        slow_w, slow_r = remapper.simulate_explicit(iterations, within)
        assert np.allclose(fast_w, slow_w)
        assert np.allclose(fast_r, slow_r)

    def test_identity_map_default(self):
        program = _program()
        remapper = HardwareRemapper(program, 16, include_presets=True)
        fast = remapper.profile(10)
        slow = remapper.simulate_explicit(10)
        assert np.allclose(fast[0], slow[0])
        assert np.allclose(fast[1], slow[1])


class TestSemantics:
    def test_total_writes_preserved(self):
        # Renaming redirects writes; it never adds or removes them.
        program = _program()
        for presets in (False, True):
            remapper = HardwareRemapper(program, 16, presets)
            writes, _ = remapper.profile(25)
            per_iteration = program.write_counts(include_presets=presets).sum()
            assert writes.sum() == pytest.approx(25 * per_iteration)

    def test_total_reads_preserved(self):
        program = _program()
        remapper = HardwareRemapper(program, 16, False)
        _, reads = remapper.profile(13)
        assert reads.sum() == pytest.approx(13 * program.read_counts().sum())

    def test_renaming_spreads_writes(self):
        # Under static mapping the hottest cell takes every reuse; renaming
        # rotates the free bit so the peak must drop (Section 3.2's goal).
        builder = LaneProgramBuilder(NAND_LIBRARY)
        a = builder.input_vector("a", 2)
        hot = builder.gate(GateOp.NAND, a[0], a[1])
        for _ in range(20):  # hammer one logical bit
            builder.free(hot)
            hot = builder.gate(GateOp.NAND, a[0], a[1])
        program = builder.finish()
        lane_size = 32
        static_peak = program.write_counts(lane_size).max() * 50
        remapper = HardwareRemapper(program, lane_size, False)
        writes, _ = remapper.profile(50)
        # Renaming rotates the free bit through every written cell (plus
        # the spare): 4 cells share what one hot cell used to absorb.
        assert writes.max() < static_peak / 3
        assert np.count_nonzero(writes) == 4

    def test_preset_rides_on_same_cell(self):
        # A preset plus the gate write must land on one physical cell per
        # event: per-cell counts under presets are exactly double.
        program = _program()
        base = HardwareRemapper(program, 16, False)
        doubled = HardwareRemapper(program, 16, True)
        writes_base, _ = base.profile(7)
        writes_doubled, _ = doubled.profile(7)
        # Subtract the (unweighted) operand-load writes to compare gates.
        gate_only_base = writes_base.sum() - 7 * 4
        gate_only_doubled = writes_doubled.sum() - 7 * 4
        assert gate_only_doubled == pytest.approx(2 * gate_only_base)

    def test_footprint_must_leave_spare_bit(self):
        program = _program()
        with pytest.raises(ValueError, match="spare bit"):
            HardwareRemapper(program, program.footprint, False)

    def test_negative_iterations_rejected(self):
        remapper = HardwareRemapper(_program(), 16, False)
        with pytest.raises(ValueError):
            remapper.profile(-1)

    def test_zero_iterations_is_empty(self):
        remapper = HardwareRemapper(_program(), 16, False)
        writes, reads = remapper.profile(0)
        assert writes.sum() == 0
        assert reads.sum() == 0

    def test_profile_cache_consistency(self):
        remapper = HardwareRemapper(_program(), 16, True)
        first = remapper.profile(9)[0].copy()
        second = remapper.profile(9)[0]
        assert np.allclose(first, second)

    def test_writes_per_iteration_matches_profile_total(self):
        program = _program()
        for presets in (False, True):
            remapper = HardwareRemapper(program, 16, presets)
            writes, _ = remapper.profile(11)
            assert writes.sum() == pytest.approx(
                11 * remapper.writes_per_iteration
            )


def _hammer_program(reuses=20):
    """One logical bit rewritten many times -> one long renaming cycle."""
    builder = LaneProgramBuilder(NAND_LIBRARY)
    a = builder.input_vector("a", 2)
    hot = builder.gate(GateOp.NAND, a[0], a[1])
    for _ in range(reuses):
        builder.free(hot)
        hot = builder.gate(GateOp.NAND, a[0], a[1])
    return builder.finish()


class TestDomainCountRemainder:
    """Regression for the prefix-sum remainder pass in ``_domain_counts``.

    The optimized wrapped-backward-window computation must be bit-equal to
    the original one-roll-per-phase accumulation it replaced, on every
    horizon — in particular ones where ``K mod L`` is large relative to
    the cycle length.
    """

    @staticmethod
    def _roll_loop_counts(remapper, events, iterations):
        # The pre-optimization implementation, kept verbatim as the oracle.
        n = remapper.lane_size
        counts = np.zeros(n)
        if iterations == 0 or not events:
            return counts
        weights = np.zeros(n)
        for domain_element, weight in events:
            weights[domain_element] += weight
        for cycle in remapper._cycles:
            length = cycle.size
            m = weights[cycle]
            if not m.any():
                continue
            full, remainder = divmod(iterations, length)
            cycle_counts = np.full(length, full * m.sum())
            for delta in range(remainder):
                cycle_counts += np.roll(m, delta)
            counts[cycle] += cycle_counts
        return counts

    @given(
        iterations=st.integers(0, 200),
        reuses=st.integers(5, 40),
        presets=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_equal_to_roll_loop_on_long_cycles(
        self, iterations, reuses, presets
    ):
        program = _hammer_program(reuses)
        remapper = HardwareRemapper(program, program.footprint + 8, presets)
        for events in (
            remapper._write_events,
            [(e, 1) for e in remapper._read_events],
        ):
            fast = remapper._domain_counts(events, iterations)
            slow = self._roll_loop_counts(remapper, events, iterations)
            assert np.array_equal(fast, slow)

    def test_every_remainder_phase_of_one_cycle(self):
        # Walk the full phase range of the longest cycle so every
        # remainder value (including 0 and L-1) hits the windowed path.
        remapper = HardwareRemapper(_hammer_program(12), 24, False)
        longest = max(cycle.size for cycle in remapper._cycles)
        for iterations in range(2 * longest + 1):
            fast = remapper._domain_counts(remapper._write_events, iterations)
            slow = self._roll_loop_counts(
                remapper, remapper._write_events, iterations
            )
            assert np.array_equal(fast, slow)


class TestProfileMany:
    def test_rows_equal_per_epoch_profile(self):
        remapper = HardwareRemapper(_program(), 16, True)
        rng = np.random.default_rng(5)
        lengths = np.array([7, 3, 7, 0, 12, 3])
        maps = np.stack([rng.permutation(16) for _ in lengths])
        many_w, many_r = remapper.profile_many(lengths, maps)
        for e, length in enumerate(lengths):
            one_w, one_r = remapper.profile(int(length), maps[e])
            assert np.array_equal(many_w[e], one_w)
            assert np.array_equal(many_r[e], one_r)

    def test_identity_maps_when_omitted(self):
        remapper = HardwareRemapper(_program(), 16, False)
        many_w, many_r = remapper.profile_many(np.array([5, 9]))
        for e, length in enumerate((5, 9)):
            one_w, one_r = remapper.profile(length)
            assert np.array_equal(many_w[e], one_w)
            assert np.array_equal(many_r[e], one_r)

    def test_empty_batch(self):
        remapper = HardwareRemapper(_program(), 16, False)
        many_w, many_r = remapper.profile_many(np.array([], dtype=np.int64))
        assert many_w.shape == (0, 16)
        assert many_r.shape == (0, 16)

    def test_batch_does_not_corrupt_domain_cache(self):
        # The scatter writes into fresh arrays; the cached domain vectors
        # behind them must stay pristine for later profile() calls.
        remapper = HardwareRemapper(_program(), 16, True)
        expected = remapper.profile(6)[0].copy()
        maps = np.stack([np.roll(np.arange(16), k) for k in (3, 5)])
        remapper.profile_many(np.array([6, 6]), maps)
        assert np.array_equal(remapper.profile(6)[0], expected)

    def test_shape_validation(self):
        remapper = HardwareRemapper(_program(), 16, False)
        with pytest.raises(ValueError, match="one-dimensional"):
            remapper.profile_many(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            remapper.profile_many(np.array([3, -1]))
        with pytest.raises(ValueError, match="shape"):
            remapper.profile_many(
                np.array([3, 4]), np.zeros((2, 15), dtype=np.int64)
            )
