"""Tests for repro.core.report."""

import numpy as np

from repro.array.geometry import Orientation
from repro.balance.config import BalanceConfig
from repro.core.report import (
    format_fig5,
    format_fig11b,
    format_fig17,
    format_heatmap_grid,
    format_heatmap_stats,
    format_lifetimes,
    format_remap_frequency,
    format_table,
    format_table2,
    format_table3,
)
from repro.core.simulator import EnduranceSimulator
from repro.core.sweep import configuration_grid
from repro.core.writedist import WriteDistribution
from repro.workloads.multiply import ParallelMultiplication


class TestGenericTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[1234567.0], [0.0001234]])
        assert "1.23e+06" in text
        assert "0.000123" in text


class TestPaperTables:
    def test_table2_contains_paper_values(self):
        text = format_table2()
        for value in ("25.00", "2.17", "61.78", "60.88"):
            assert value in text

    def test_table3_formats_percent_and_factor(self):
        text = format_table3([("mult", 1.0, 1.59), ("conv", 0.8478, 2.22)])
        assert "100.00%" in text
        assert "1.59x" in text

    def test_fig17_bars(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        entries = configuration_grid(
            sim, ParallelMultiplication(bits=8), iterations=100,
            configs=[BalanceConfig(), BalanceConfig.from_label("RaxSt")],
        )
        text = format_fig17(entries, "mult")
        assert "StxSt" in text and "RaxSt" in text
        assert "#" in text


class TestFigureRenderings:
    def test_fig5_highlights_imbalance(self):
        writes = np.concatenate([np.ones(16), np.full(48, 20.0)])
        reads = np.concatenate([np.ones(16), np.full(48, 40.0)])
        text = format_fig5(writes, reads, used_bits=64, bars=8)
        assert "workspace" in text
        assert "bits 0-7" in text

    def test_fig11b_table(self):
        text = format_fig11b([0.0, 0.01], [1.0, 0.5], [1.0, 0.55])
        assert "100.00%" in text
        assert "50.00%" in text

    def test_heatmap_grid_and_stats(self):
        dist = WriteDistribution(
            np.random.default_rng(0).random((32, 32)), 1,
            Orientation.COLUMN_PARALLEL, label="demo",
        )
        grid_text = format_heatmap_grid([dist], blocks=(8, 16))
        assert "demo" in grid_text
        stats_text = format_heatmap_stats([dist])
        assert "Balance" in stats_text

    def test_remap_frequency_sorted_descending(self):
        text = format_remap_frequency({10: 1.5, 1000: 1.2})
        lines = text.splitlines()
        assert lines[3].startswith("1000")

    def test_full_report(self, small_arch):
        from repro.core.report import format_full_report
        from repro.devices.technology import MRAM, RRAM

        sim = EnduranceSimulator(small_arch, seed=0)
        result = sim.run(
            ParallelMultiplication(bits=8), BalanceConfig(), iterations=50
        )
        text = format_full_report(result, technologies=[MRAM, RRAM])
        assert "Eq. 4 lifetime" in text
        assert "RRAM" in text
        assert "128x128" in text

    def test_full_report_on_loaded_result(self, small_arch, tmp_path):
        from repro.core.io import load_result, save_result
        from repro.core.report import format_full_report

        sim = EnduranceSimulator(small_arch, seed=0)
        result = sim.run(
            ParallelMultiplication(bits=8), BalanceConfig(), iterations=50
        )
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        text = format_full_report(load_result(path))
        assert "Eq. 4 lifetime" in text

    def test_lifetimes_table(self):
        from repro.core.lifetime import LifetimeEstimate

        estimates = {
            "MRAM": LifetimeEstimate(1e10, 3e6, 10.0, 1e12),
        }
        text = format_lifetimes(estimates)
        assert "MRAM" in text
        assert "1.0e+12" in text
