"""Tests for repro.core.sweep."""

import pytest

from repro.balance.config import BalanceConfig, all_configurations
from repro.core.simulator import EnduranceSimulator
from repro.core.sweep import (
    best_improvement,
    configuration_grid,
    remap_frequency_sweep,
    technology_sweep,
)
from repro.devices.technology import MRAM, PCM, RRAM
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def sim(small_arch):
    return EnduranceSimulator(small_arch, seed=1)


@pytest.fixture
def workload():
    return ParallelMultiplication(bits=8)


class TestConfigurationGrid:
    def test_grid_covers_requested_configs(self, sim, workload):
        configs = [
            BalanceConfig.from_label(label)
            for label in ("StxSt", "RaxSt", "StxSt+Hw")
        ]
        entries = configuration_grid(
            sim, workload, iterations=200, configs=configs
        )
        assert [entry.label for entry in entries] == ["StxSt", "RaxSt", "StxSt+Hw"]

    def test_static_entry_has_improvement_one(self, sim, workload):
        entries = configuration_grid(
            sim, workload, iterations=200,
            configs=[BalanceConfig(), BalanceConfig.from_label("RaxSt")],
        )
        assert entries[0].improvement == pytest.approx(1.0)

    def test_default_grid_is_18_configs(self, sim, workload):
        entries = configuration_grid(sim, workload, iterations=100)
        assert len(entries) == 18
        assert {e.label for e in entries} == {
            c.label for c in all_configurations()
        }

    def test_best_improvement(self, sim, workload):
        entries = configuration_grid(sim, workload, iterations=200)
        best = best_improvement(entries)
        assert best.improvement == max(e.improvement for e in entries)

    def test_best_improvement_empty_rejected(self):
        with pytest.raises(ValueError):
            best_improvement([])


class TestRemapFrequencySweep:
    def test_more_frequent_remap_is_no_worse(self, sim, workload):
        improvements = remap_frequency_sweep(
            sim, workload, intervals=(500, 50), iterations=2000
        )
        assert improvements[50] >= improvements[500] * 0.98

    def test_returns_requested_intervals(self, sim, workload):
        improvements = remap_frequency_sweep(
            sim, workload, intervals=(100, 10), iterations=500
        )
        assert set(improvements) == {100, 10}


class TestTechnologySweep:
    def test_lifetimes_order_by_endurance(self, sim, workload):
        result = sim.run(workload, BalanceConfig(), iterations=100)
        sweep = technology_sweep(result, [MRAM, RRAM, PCM])
        assert (
            sweep["MRAM"].iterations_to_failure
            > sweep["RRAM"].iterations_to_failure
            > sweep["PCM"].iterations_to_failure
        )

    def test_ratio_matches_endurance_ratio(self, sim, workload):
        result = sim.run(workload, BalanceConfig(), iterations=100)
        sweep = technology_sweep(result, [MRAM, RRAM])
        assert sweep["MRAM"].iterations_to_failure / sweep[
            "RRAM"
        ].iterations_to_failure == pytest.approx(
            MRAM.endurance_writes / RRAM.endurance_writes
        )
