"""Tests for repro.balance.software."""

import numpy as np
import pytest

from repro.balance.software import StrategyKind, make_permutation


class TestStrategyKind:
    def test_labels_match_paper(self):
        assert StrategyKind.STATIC.label == "St"
        assert StrategyKind.RANDOM.label == "Ra"
        assert StrategyKind.BYTE_SHIFT.label == "Bs"

    def test_from_label_round_trip(self):
        for kind in StrategyKind:
            assert StrategyKind.from_label(kind.label) is kind

    def test_from_label_case_insensitive(self):
        assert StrategyKind.from_label("ra") is StrategyKind.RANDOM

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError, match="St/Ra/Bs"):
            StrategyKind.from_label("Xx")


class TestMakePermutation:
    def test_static_ignores_epoch(self):
        for epoch in (0, 5, 100):
            perm = make_permutation(StrategyKind.STATIC, 16, epoch)
            assert np.array_equal(perm, np.arange(16))

    def test_byte_shift_advances_one_byte_per_epoch(self):
        perm0 = make_permutation(StrategyKind.BYTE_SHIFT, 64, 0)
        perm1 = make_permutation(StrategyKind.BYTE_SHIFT, 64, 1)
        assert np.array_equal(perm0, np.arange(64))
        assert perm1[0] == 8

    def test_random_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            make_permutation(StrategyKind.RANDOM, 16, 0)

    def test_random_draws_fresh_per_call(self):
        rng = np.random.default_rng(0)
        a = make_permutation(StrategyKind.RANDOM, 64, 0, rng)
        b = make_permutation(StrategyKind.RANDOM, 64, 1, rng)
        assert not np.array_equal(a, b)

    def test_random_stream_reproducible(self):
        seq1 = [
            make_permutation(StrategyKind.RANDOM, 32, e, np.random.default_rng(9))
            for e in range(1)
        ]
        seq2 = [
            make_permutation(StrategyKind.RANDOM, 32, e, np.random.default_rng(9))
            for e in range(1)
        ]
        assert np.array_equal(seq1[0], seq2[0])

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            make_permutation(StrategyKind.STATIC, 8, -1)

    def test_all_outputs_are_permutations(self):
        rng = np.random.default_rng(3)
        for kind in StrategyKind:
            if kind is StrategyKind.WEAR_AWARE:
                continue  # stateful: resolved by the simulator, not here
            perm = make_permutation(kind, 48, 7, rng)
            assert sorted(perm.tolist()) == list(range(48))
