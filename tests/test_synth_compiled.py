"""Property tests: the compiled SWAR evaluator against the interpreter.

``CompiledProgram.evaluate_batch`` / ``switch_counts_batch`` must be
bit-identical, per draw, to ``LaneProgram.evaluate`` and the
per-instruction switching loop — for any gate library, operand widths,
external streams, and stuck-at fault maps. The strategies below generate
random gate DAGs (including in-place ``gate_into`` overwrites that force
the hazard leveling to split ranks) and compare both paths exhaustively.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.switching import measure_switching
from repro.gates.library import (
    MAJ_LIBRARY,
    MINIMAL_LIBRARY,
    NAND_LIBRARY,
    NOR_LIBRARY,
)
from repro.gates.gate import Gate
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.compiled import (
    CompiledProgram,
    compile_program,
    pack_bitplanes,
    unpack_bitplanes,
)
from repro.synth.program import (
    LaneProgram,
    LaneProgramBuilder,
    OperandBit,
    ReadInstr,
    WriteInstr,
)

LIBRARIES = (NAND_LIBRARY, MINIMAL_LIBRARY, NOR_LIBRARY, MAJ_LIBRARY)

#: Batch sizes straddling the 64-draw word boundary.
BATCH_SIZES = (1, 3, 64, 65, 130)


@st.composite
def random_programs(draw):
    """A random gate DAG over 1-2 operands, optional externals/read-outs."""
    library = draw(st.sampled_from(LIBRARIES))
    builder = LaneProgramBuilder(library, name="prop")
    widths = {"a": draw(st.integers(1, 4))}
    if draw(st.booleans()):
        widths["b"] = draw(st.integers(1, 4))
    live = []
    for name, width in widths.items():
        live.extend(builder.input_vector(name, width))
    ext_width = draw(st.integers(0, 3))
    if ext_width:
        live.extend(builder.receive_vector("net", ext_width))
    if draw(st.booleans()):
        live.append(builder.const_bit(draw(st.integers(0, 1))))
    ops = sorted(library.native_ops, key=lambda op: op.value)
    for _ in range(draw(st.integers(1, 12))):
        op = draw(st.sampled_from(ops))
        inputs = [draw(st.sampled_from(live)) for _ in range(op.arity)]
        if draw(st.booleans()):
            live.append(builder.gate(op, *inputs))
        else:
            # In-place overwrite of a live bit: forces hazard splits in
            # the compiled gate leveling.
            candidates = [bit for bit in live if bit not in inputs]
            if not candidates:
                live.append(builder.gate(op, *inputs))
                continue
            target = draw(st.sampled_from(candidates))
            builder.gate_into(op, target, *inputs)
    out_bits = draw(
        st.lists(st.sampled_from(live), min_size=1, max_size=3, unique=True)
    )
    builder.mark_output("out", BitVector(out_bits))
    if draw(st.booleans()):
        obs = draw(
            st.lists(
                st.sampled_from(live), min_size=1, max_size=3, unique=True
            )
        )
        builder.read_out(BitVector(obs), tag="obs")
    return builder.finish(), widths, ext_width


def _draw_batch_inputs(draw, widths, ext_width, n):
    operands = {
        name: [draw(st.integers(0, 2**width - 1)) for _ in range(n)]
        for name, width in widths.items()
    }
    externals = None
    if ext_width:
        externals = {
            "net": np.array(
                [
                    [draw(st.integers(0, 1)) for _ in range(ext_width)]
                    for _ in range(n)
                ],
                dtype=np.uint8,
            )
        }
    return operands, externals


class TestBitplanePacking:
    @given(
        n=st.integers(1, 200),
        rows=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, n, rows, seed):
        bits = np.random.default_rng(seed).integers(
            0, 2, size=(rows, n), dtype=np.uint8
        )
        assert np.array_equal(unpack_bitplanes(pack_bitplanes(bits), n), bits)


class TestEvaluateBatchEquivalence:
    @given(
        data=st.data(),
        spec=random_programs(),
        n=st.sampled_from(BATCH_SIZES),
        stuck_mode=st.sampled_from(["none", "uniform", "per-draw"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_interpreter_per_draw(self, data, spec, n, stuck_mode):
        program, widths, ext_width = spec
        operands, externals = _draw_batch_inputs(
            data.draw, widths, ext_width, n
        )
        if stuck_mode == "none":
            stuck = None
        else:
            def one_map():
                count = data.draw(st.integers(0, 2))
                addresses = data.draw(
                    st.lists(
                        st.integers(0, program.footprint - 1),
                        min_size=count,
                        max_size=count,
                        unique=True,
                    )
                )
                return {
                    address: data.draw(st.integers(0, 1))
                    for address in addresses
                }

            stuck = (
                one_map()
                if stuck_mode == "uniform"
                else [one_map() for _ in range(n)]
            )

        batch_outputs, batch_readouts = program.compiled().evaluate_batch(
            operands, externals=externals, stuck=stuck, draws=n
        )
        for index in range(n):
            per_draw_stuck = (
                None
                if stuck is None
                else (stuck if isinstance(stuck, dict) else stuck[index])
            )
            outputs, readouts = program.evaluate(
                {name: values[index] for name, values in operands.items()},
                externals=(
                    {"net": list(externals["net"][index])}
                    if externals
                    else None
                ),
                stuck=per_draw_stuck,
            )
            for name, value in outputs.items():
                assert int(batch_outputs[name][index]) == value
            for tag, bits in readouts.items():
                assert list(batch_readouts[tag][index]) == list(bits)

    def test_uninitialized_read_raises_like_interpreter(self):
        program = LaneProgram(
            name="uninit",
            instructions=[
                WriteInstr(0, OperandBit("a", 0)),
                Gate(GateOp.AND, (0, 1), 2),
            ],
            footprint=3,
            inputs={"a": (0,)},
            outputs={"out": (2,)},
        )
        with pytest.raises((KeyError, ValueError)):
            program.evaluate({"a": 1})
        with pytest.raises(ValueError, match="uninitialized"):
            program.compiled().evaluate_batch({"a": [1, 0]})

    def test_object_dtype_is_exact_beyond_64_bits(self):
        # A 33-bit output value cannot be represented if intermediate
        # planes were collapsed through int64 incorrectly.
        builder = LaneProgramBuilder(MINIMAL_LIBRARY, name="wide")
        a = builder.input_vector("a", 70)
        builder.mark_output("out", a)
        program = builder.finish()
        value = (1 << 69) | 5
        outputs, _ = program.compiled().evaluate_batch({"a": [value]})
        assert int(outputs["out"][0]) == value


class TestSwitchCountsBatch:
    @given(
        data=st.data(),
        spec=random_programs(),
        seed=st.integers(0, 500),
        samples=st.sampled_from([1, 5, 64, 70]),
    )
    @settings(max_examples=40, deadline=None)
    def test_measure_switching_backends_agree(self, data, spec, seed, samples):
        program, widths, ext_width = spec
        ext = {"net": ext_width} if ext_width else None
        compiled = measure_switching(
            program, samples=samples, rng=seed, externals_width=ext,
            evaluator="compiled",
        )
        interpreted = measure_switching(
            program, samples=samples, rng=seed, externals_width=ext,
            evaluator="interpreted",
        )
        assert np.array_equal(compiled.switches, interpreted.switches)
        assert np.array_equal(compiled.writes, interpreted.writes)


class TestCompiledStructure:
    def test_event_counts_match_program_counts(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="counts")
        a = builder.input_vector("a", 3)
        b = builder.input_vector("b", 3)
        x = builder.gate(GateOp.NAND, a[0], b[0])
        y = builder.gate(GateOp.AND, x, a[1])
        builder.read_out(BitVector([y]), tag="z")
        program = builder.finish()
        compiled = compile_program(program)
        size = program.footprint
        assert np.array_equal(
            compiled.write_event_counts(size, writes_per_gate=1),
            program.write_counts(size, include_presets=False),
        )
        assert np.array_equal(
            compiled.write_event_counts(size, writes_per_gate=2),
            program.write_counts(size, include_presets=True),
        )
        assert np.array_equal(
            compiled.read_event_counts(size), program.read_counts(size)
        )

    def test_compile_is_cached_per_program(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="cache")
        a = builder.input_vector("a", 2)
        builder.mark_output("out", a)
        program = builder.finish()
        assert program.compiled() is program.compiled()
        assert compile_program(program) is program.compiled()
        assert isinstance(program.compiled(), CompiledProgram)

    def test_external_tags_recorded(self):
        builder = LaneProgramBuilder(NAND_LIBRARY, name="tags")
        net = builder.receive_vector("partial", 2)
        builder.mark_output("out", net)
        builder.read_out(net, tag="echo")
        program = builder.finish()
        compiled = program.compiled()
        assert compiled.external_tags == frozenset({"partial"})
        assert compiled.readout_sizes == {"echo": 2}

    def test_readout_streams_preallocated_to_max_index(self):
        # Sparse tagged reads (index 2 never preceded by 0/1) used to
        # trigger a quadratic pad loop; both paths must zero-fill.
        program = LaneProgram(
            name="sparse",
            instructions=[
                WriteInstr(0, OperandBit("a", 0)),
                ReadInstr(0, tag="s", index=2),
            ],
            footprint=1,
            inputs={"a": (0,)},
            outputs={},
        )
        assert program.compiled().readout_sizes == {"s": 3}
        _, readouts = program.evaluate({"a": 1})
        assert readouts["s"] == [0, 0, 1]
        _, batch_readouts = program.compiled().evaluate_batch({"a": [1, 0]})
        assert batch_readouts["s"].tolist() == [[0, 0, 1], [0, 0, 0]]

    def test_levels_split_on_hazards(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY, name="levels")
        a = builder.input_vector("a", 2)
        x = builder.gate(GateOp.AND, a[0], a[1])   # level 1
        y = builder.gate(GateOp.OR, x, a[0])       # reads x -> level 2
        builder.mark_output("out", BitVector([y]))
        program = builder.finish()
        assert program.compiled().levels == 2
