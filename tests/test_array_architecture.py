"""Tests for repro.array.architecture."""

from repro.array.architecture import (
    CRAM_COLUMN,
    CRAM_ROW,
    MAGIC_RRAM,
    PINATUBO,
    LogicStyle,
    default_architecture,
)
from repro.array.geometry import Orientation
from repro.devices.technology import MRAM, RRAM


class TestPresets:
    def test_default_matches_paper_evaluation(self):
        # Section 4: 1024x1024, column-parallel, CRAM-style presets, MTJ.
        arch = default_architecture()
        assert arch.geometry.rows == 1024
        assert arch.geometry.cols == 1024
        assert arch.orientation is Orientation.COLUMN_PARALLEL
        assert arch.presets_output
        assert arch.technology == MRAM

    def test_pinatubo_uses_sense_amps_without_presets(self):
        assert PINATUBO.logic_style is LogicStyle.SENSE_AMP
        assert not PINATUBO.presets_output
        assert PINATUBO.writes_per_gate == 1

    def test_cram_presets_double_gate_writes(self):
        assert CRAM_COLUMN.writes_per_gate == 2

    def test_cram_row_is_row_parallel(self):
        assert CRAM_ROW.orientation is Orientation.ROW_PARALLEL

    def test_magic_is_nor_native_on_rram(self):
        assert MAGIC_RRAM.library.name == "nor"
        assert MAGIC_RRAM.technology == RRAM


class TestDerivedProperties:
    def test_lane_count_and_size_follow_orientation(self):
        arch = CRAM_COLUMN.resized(512, 256)
        assert arch.lane_count == 256  # columns
        assert arch.lane_size == 512  # rows
        row_arch = CRAM_ROW.resized(512, 256)
        assert row_arch.lane_count == 512
        assert row_arch.lane_size == 256

    def test_resized_preserves_other_fields(self):
        arch = CRAM_COLUMN.resized(64, 64)
        assert arch.presets_output == CRAM_COLUMN.presets_output
        assert arch.library is CRAM_COLUMN.library

    def test_with_technology(self):
        arch = CRAM_COLUMN.with_technology(RRAM)
        assert arch.technology == RRAM
        assert arch.geometry == CRAM_COLUMN.geometry
