"""Tests for repro.balance.access_aware (Table 2)."""

import pytest

from repro.balance.access_aware import (
    build_shuffled_multiply,
    shuffle_copy_gates,
    shuffle_overhead_percent,
    table2_rows,
)
from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY
from repro.synth.analysis import multiplier_counts


class TestCopyCounts:
    def test_multiply_needs_4b_copies(self):
        # Section 3.2: 2b for inputs, 2b for the double-width output.
        assert shuffle_copy_gates("multiply", 32) == 128

    def test_add_needs_3b_plus_1_copies(self):
        assert shuffle_copy_gates("add", 32) == 97

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="operation"):
            shuffle_copy_gates("divide", 8)

    def test_tiny_width_rejected(self):
        with pytest.raises(ValueError):
            shuffle_copy_gates("multiply", 1)


class TestTable2:
    # The paper's Table 2, to two decimals.
    PAPER = {
        4: (25.0, 76.47),
        8: (10.0, 67.57),
        16: (4.55, 63.64),
        32: (2.17, 61.78),
        64: (1.06, 60.88),
    }

    @pytest.mark.parametrize("bits", sorted(PAPER))
    def test_multiplication_overhead(self, bits):
        expected, _ = self.PAPER[bits]
        assert shuffle_overhead_percent("multiply", bits) == pytest.approx(
            expected, abs=0.01
        )

    @pytest.mark.parametrize("bits", sorted(PAPER))
    def test_addition_overhead(self, bits):
        _, expected = self.PAPER[bits]
        assert shuffle_overhead_percent("add", bits) == pytest.approx(
            expected, abs=0.01
        )

    def test_table2_rows_structure(self):
        rows = table2_rows()
        assert [bits for bits, _, _ in rows] == [4, 8, 16, 32, 64]
        for bits, mult, add in rows:
            paper_mult, paper_add = self.PAPER[bits]
            assert mult == pytest.approx(paper_mult, abs=0.01)
            assert add == pytest.approx(paper_add, abs=0.01)

    def test_overhead_shrinks_with_precision_for_multiply(self):
        values = [shuffle_overhead_percent("multiply", b) for b in (4, 8, 16, 32)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_addition_overhead_approaches_60_percent(self):
        # (3b+1)/(5b-3) -> 3/5 as b grows.
        assert shuffle_overhead_percent("add", 1024) == pytest.approx(60.0, abs=0.2)

    def test_non_native_copy_doubles_overhead(self):
        # NOT-based copies cost twice the gates (footnote 5: "8 x b NOT").
        minimal = shuffle_overhead_percent("multiply", 32, MINIMAL_LIBRARY)
        # Compare copy gate counts directly since NAND's compute gates differ.
        assert NAND_LIBRARY.copy_gate_cost == 2 * MINIMAL_LIBRARY.copy_gate_cost
        assert minimal > 0


class TestShuffledProgram:
    @pytest.mark.parametrize("bits", [4, 8])
    def test_gate_overhead_is_exactly_the_copy_cost(self, bits):
        for library in (MINIMAL_LIBRARY, NAND_LIBRARY):
            program = build_shuffled_multiply(library, bits)
            plain = multiplier_counts(bits, library).gates
            copies = shuffle_copy_gates("multiply", bits) * library.copy_gate_cost
            assert program.gate_count == plain + copies

    @pytest.mark.parametrize("bits", [3, 4])
    def test_shuffled_multiply_still_multiplies(self, bits):
        for library in (MINIMAL_LIBRARY, NAND_LIBRARY):
            program = build_shuffled_multiply(library, bits)
            for x in range(2**bits):
                for y in range(2**bits):
                    outputs, _ = program.evaluate({"a": x, "b": y})
                    assert outputs["p" if "p" in outputs else "product"] == x * y
