"""Documentation coverage: every public item carries a doc comment."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                # getdoc follows the MRO: overrides of documented base
                # methods (Workload.build, EnduranceModel.sample_budgets)
                # inherit their contract docs.
                doc = inspect.getdoc(getattr(obj, method_name))
                if not (doc and doc.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_design_and_experiments_docs_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    assert (root / "README.md").stat().st_size > 1000
    assert (root / "DESIGN.md").stat().st_size > 1000
