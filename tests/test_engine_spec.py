"""JobSpec content hashing: stability and sensitivity."""

import pytest

from repro.balance.config import BalanceConfig
from repro.engine import JobSpec
from repro.synth.bits import AllocationPolicy
from repro.workloads.multiply import ParallelMultiplication


def spec(arch, **overrides):
    defaults = dict(
        workload=ParallelMultiplication(bits=8),
        architecture=arch,
        config=BalanceConfig.from_label("RaxBs"),
        iterations=500,
        seed=7,
        track_reads=False,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestHashStability:
    def test_equal_parts_equal_hash(self, tiny_arch):
        assert spec(tiny_arch).content_hash == spec(tiny_arch).content_hash

    def test_fresh_workload_instance_same_hash(self, tiny_arch):
        a = spec(tiny_arch, workload=ParallelMultiplication(bits=8))
        b = spec(tiny_arch, workload=ParallelMultiplication(bits=8))
        assert a.content_hash == b.content_hash

    def test_hash_is_hex_sha256(self, tiny_arch):
        digest = spec(tiny_arch).content_hash
        assert len(digest) == 64
        int(digest, 16)


class TestHashSensitivity:
    def test_iterations_change_hash(self, tiny_arch):
        assert (
            spec(tiny_arch).content_hash
            != spec(tiny_arch, iterations=501).content_hash
        )

    def test_seed_changes_hash(self, tiny_arch):
        assert (
            spec(tiny_arch).content_hash
            != spec(tiny_arch, seed=8).content_hash
        )

    def test_config_changes_hash(self, tiny_arch):
        other = spec(tiny_arch, config=BalanceConfig.from_label("RaxBs+Hw"))
        assert spec(tiny_arch).content_hash != other.content_hash

    def test_recompile_interval_changes_hash(self, tiny_arch):
        other = spec(
            tiny_arch,
            config=BalanceConfig.from_label("RaxBs").with_interval(50),
        )
        assert spec(tiny_arch).content_hash != other.content_hash

    def test_track_reads_changes_hash(self, tiny_arch):
        assert (
            spec(tiny_arch).content_hash
            != spec(tiny_arch, track_reads=True).content_hash
        )

    def test_architecture_changes_hash(self, tiny_arch, small_arch):
        assert (
            spec(tiny_arch).content_hash
            != spec(small_arch).content_hash
        )

    def test_workload_params_change_hash_despite_shared_name(self, tiny_arch):
        """Two workloads sharing a display name must not collide."""
        ring = ParallelMultiplication(bits=8)
        packed = ParallelMultiplication(
            bits=8, allocation_policy=AllocationPolicy.LOWEST_FIRST
        )
        assert ring.name == packed.name
        assert (
            spec(tiny_arch, workload=ring).content_hash
            != spec(tiny_arch, workload=packed).content_hash
        )


class TestHashExclusions:
    """Pure-speed knobs must not change the content hash."""

    def test_kernel_hash_excluded(self, tiny_arch):
        assert (
            spec(tiny_arch, kernel="epoch").content_hash
            == spec(tiny_arch).content_hash
        )

    def test_backend_hash_excluded(self, tiny_arch):
        assert (
            spec(tiny_arch, backend="cupy").content_hash
            == spec(tiny_arch).content_hash
        )

    def test_fastforward_hash_excluded(self, tiny_arch):
        assert (
            spec(tiny_arch, fastforward=True).content_hash
            == spec(tiny_arch).content_hash
        )

    def test_settings_round_trip_carries_speed_knobs(self, tiny_arch):
        s = spec(
            tiny_arch, backend="numba", fastforward=True, kernel="epoch"
        ).settings
        assert s.backend == "numba"
        assert s.fastforward is True
        assert s.kernel == "epoch"


class TestValidation:
    def test_rejects_non_positive_iterations(self, tiny_arch):
        with pytest.raises(ValueError, match="iterations"):
            spec(tiny_arch, iterations=0)

    def test_rejects_unknown_backend(self, tiny_arch):
        with pytest.raises(ValueError, match="backend"):
            spec(tiny_arch, backend="torch")

    def test_label_mentions_workload_and_config(self, tiny_arch):
        label = spec(tiny_arch).label
        assert "multiplication-8b" in label
        assert "RaxBs" in label
