"""Tests for the repro-endurance CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "opcounts", "table2", "fig5", "heatmap", "fig17",
            "table3", "lifetime", "fig11b", "remap-sweep",
        ):
            assert command in text

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_opcounts_prints_paper_numbers(self, capsys):
        assert main(["opcounts"]) == 0
        out = capsys.readouterr().out
        assert "9824" in out
        assert "153.5x" in out

    def test_table2(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "61.78" in out

    def test_fig5(self, capsys):
        main(["--rows", "256", "--cols", "64", "fig5", "--bits", "8"])
        out = capsys.readouterr().out
        assert "Writes/cell" in out

    def test_heatmap(self, capsys):
        main([
            "--rows", "256", "--cols", "128",
            "heatmap", "--workload", "mult", "--config", "RaxSt",
            "--iterations", "50",
        ])
        out = capsys.readouterr().out
        assert "max" in out

    def test_fig17_small(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "fig17", "--workload", "mult", "--iterations", "30",
        ])
        out = capsys.readouterr().out
        assert "RaxBs+Hw" in out

    def test_fig11b(self, capsys):
        main(["--rows", "64", "--cols", "64", "fig11b", "--trials", "2"])
        out = capsys.readouterr().out
        assert "usable" in out.lower()

    def test_lifetime(self, capsys):
        main([
            "--rows", "256", "--cols", "128",
            "lifetime", "--technology", "RRAM", "--iterations", "50",
        ])
        out = capsys.readouterr().out
        assert "Eq. 1 bound" in out
        assert "RRAM" in out

    def test_report(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "report", "--workload", "mult", "--config", "StxSt+Hw",
            "--iterations", "20",
        ])
        out = capsys.readouterr().out
        assert "Eq. 4 lifetime" in out
        assert "PCM" in out

    def test_export(self, capsys, tmp_path):
        main([
            "--rows", "256", "--cols", "64",
            "export", "--workload", "mult", "--config", "RaxSt",
            "--iterations", "20", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert "saved" in out
        files = {p.suffix for p in tmp_path.iterdir()}
        assert files == {".npz", ".csv", ".pgm"}

    def test_switching(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "switching", "--bits", "8", "--samples", "4",
        ])
        out = capsys.readouterr().out
        assert "switch fraction" in out

    def test_switching_evaluators_agree(self, capsys):
        argv = [
            "--rows", "256", "--cols", "64",
            "switching", "--bits", "6", "--samples", "8",
        ]
        main(argv + ["--evaluator", "compiled"])
        compiled = capsys.readouterr().out
        main(argv + ["--evaluator", "interpreted"])
        interpreted = capsys.readouterr().out
        assert compiled == interpreted

    def test_deployment(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "deployment", "--iterations", "50", "--arrays", "16",
        ])
        out = capsys.readouterr().out
        assert "Duty cycle" in out
        assert "farm" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["heatmap", "--workload", "sorting"])

    def test_unknown_workload_message_suggests_and_lists(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["heatmap", "--workload", "mutl"])
        message = str(excinfo.value)
        assert "did you mean 'mult'" in message
        assert "registered workloads:" in message
        assert "gemv-trace" in message

    def test_registry_workload_accepted_by_heatmap(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "heatmap", "--workload", "gemv-trace", "--config", "StxSt",
            "--iterations", "20",
        ])
        out = capsys.readouterr().out
        assert "max" in out

    def test_trace_runs_bundled_fixture(self, capsys):
        assert main([
            "--rows", "256", "--cols", "64",
            "trace", "--config", "StxSt", "BsxBs", "--iterations", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "gemv-trace" in out
        assert "verify: no diagnostics (2 configs)" in out
        assert "days to failure" in out

    def test_trace_verify_only_skips_simulation(self, capsys):
        assert main([
            "--rows", "256", "--cols", "64",
            "trace", "--verify-only",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify: no diagnostics" in out
        assert "days to failure" not in out

    def test_trace_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("PIM FROBNICATE 0x0 0x1\nPIM EXIT\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--file", str(bad)])
        assert "invalid trace" in str(excinfo.value)

    def test_trace_rejects_missing_file(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--file", "/nonexistent/x.trace"])
        assert "cannot read trace" in str(excinfo.value)


FLEET_ARGS = [
    "--rows", "128", "--cols", "128",
    "fleet", "--arrays", "6", "--days", "3",
    "--workloads", "add:2", "conv",
    "--technology-mix", "MRAM", "RRAM",
    "--traffic", "deterministic", "--rate", "100",
    "--cohort-iterations", "100",
]


class TestFleetCommand:
    def test_fleet_renders_report(self, capsys):
        assert main(FLEET_ARGS) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "survival at horizon" in out
        assert "report hash" in out

    def test_fleet_json_output(self, capsys):
        import json

        assert main(FLEET_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["days_simulated"] == 3
        assert len(payload["death_days"]) == 6
        assert "report_hash" in payload

    def test_fleet_pause_and_resume_matches_straight_run(
        self, capsys, tmp_path
    ):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(FLEET_ARGS + ["--json"] + cache) == 0
        straight = capsys.readouterr().out

        argv = FLEET_ARGS + cache + [
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(argv + ["--stop-after-day", "2"]) == 0
        assert "paused after day 2" in capsys.readouterr().out
        assert main(argv + ["--json"]) == 0
        resumed = capsys.readouterr().out

        import json

        assert (
            json.loads(resumed)["report_hash"]
            == json.loads(straight)["report_hash"]
        )

    def test_fleet_execution_knobs_preserve_output(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(FLEET_ARGS + ["--json"] + cache) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                FLEET_ARGS
                + ["--json", "--fleet-workers", "2", "--window", "2"]
                + cache
            )
            == 0
        )
        tuned = capsys.readouterr().out

        import json

        assert (
            json.loads(tuned)["report_hash"]
            == json.loads(serial)["report_hash"]
        )
        assert json.loads(tuned)["runtime"]["fleet_workers"] == 2

    def test_fleet_bad_execution_knobs_rejected(self):
        with pytest.raises(ValueError, match="fleet_workers"):
            main(FLEET_ARGS + ["--fleet-workers", "0"])
        with pytest.raises(ValueError, match="window"):
            main(FLEET_ARGS + ["--window", "-1"])

    def test_fleet_bad_mix_token_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--technology-mix", "MRAM:heavy"])

    def test_fleet_stop_without_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError):
            main(FLEET_ARGS + ["--stop-after-day", "1"])


class TestEngineFlags:
    """--jobs / --cache-dir route grid commands through repro.engine."""

    def test_engine_flags_registered(self):
        parser = build_parser()
        for argv in (
            ["heatmap", "--jobs", "2", "--cache-dir", "x"],
            ["fig17", "--jobs", "2", "--cache-dir", "x"],
            ["table3", "--jobs", "2", "--cache-dir", "x"],
            ["remap-sweep", "--jobs", "2", "--cache-dir", "x"],
        ):
            args = parser.parse_args(argv)
            assert args.jobs == 2
            assert args.cache_dir == "x"

    def test_fig17_with_cache_populates_store_and_reruns_warm(
        self, capsys, tmp_path
    ):
        argv = [
            "--rows", "256", "--cols", "64",
            "fig17", "--workload", "mult", "--iterations", "30",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "RaxBs+Hw" in cold.out
        assert "18 to simulate" in cold.err
        assert any(tmp_path.rglob("*.npz"))

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "18 cached, 0 to simulate" in warm.err
        assert cold.out == warm.out

    def test_heatmap_with_jobs_and_cache(self, capsys, tmp_path):
        main([
            "--rows", "256", "--cols", "128",
            "heatmap", "--workload", "mult", "--config", "RaxSt",
            "--iterations", "50", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert "max" in captured.out
        assert "[engine]" in captured.err

    def test_remap_sweep_with_cache(self, capsys, tmp_path):
        main([
            "--rows", "256", "--cols", "64",
            "remap-sweep", "--workload", "mult", "--iterations", "200",
            "--intervals", "100", "50",
            "--cache-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert "50" in captured.out
        assert "3 job(s)" in captured.err


SIM_SUBCOMMANDS = (
    "heatmap", "fig17", "table3", "lifetime", "report", "export",
    "deployment", "remap-sweep", "fleet", "trace",
)

#: Subcommands that take a ``--workload`` name (resolved via the
#: registry — any registered name must parse, not just the historical
#: choices list).
WORKLOAD_SUBCOMMANDS = ("heatmap", "fig17", "report", "export", "remap-sweep")


class TestRegistryFlagAudit:
    """Every --workload flag accepts every registered name."""

    @pytest.mark.parametrize("command", WORKLOAD_SUBCOMMANDS)
    def test_all_registered_names_parse(self, command):
        from repro.workloads.registry import available_workloads

        parser = build_parser()
        for name in available_workloads():
            args = parser.parse_args([command, "--workload", name])
            assert args.workload == name


class TestFlagAudit:
    """Every simulation-backed subcommand accepts the full flag set."""

    @pytest.mark.parametrize("command", SIM_SUBCOMMANDS)
    def test_full_flag_set_parses_after_subcommand(self, command):
        parser = build_parser()
        args = parser.parse_args([
            command,
            "--jobs", "2", "--cache-dir", "x",
            "--seed", "9", "--kernel", "epoch", "--chunk-size", "64",
            "--backend", "numpy", "--fast-forward",
            "--log-level", "info", "--trace", "t.jsonl", "--progress",
        ])
        assert args.jobs == 2
        assert args.cache_dir == "x"
        assert args.seed == 9
        assert args.kernel == "epoch"
        assert args.chunk_size == 64
        assert args.backend == "numpy"
        assert args.fast_forward is True
        assert args.log_level == "info"
        assert args.trace == "t.jsonl"
        assert args.progress is True

    @pytest.mark.parametrize("command", SIM_SUBCOMMANDS)
    def test_global_flags_survive_subcommand_defaults(self, command):
        """Subcommand duplicates must not clobber main-parser values."""
        parser = build_parser()
        args = parser.parse_args(
            ["--seed", "9", "--kernel", "epoch", "--trace", "t.jsonl",
             "--backend", "numba", "--fast-forward", command]
        )
        assert args.seed == 9
        assert args.kernel == "epoch"
        assert args.trace == "t.jsonl"
        assert args.backend == "numba"
        assert args.fast_forward is True


class TestFastForwardFlag:
    def test_eligible_config_renders_identically(self, capsys):
        args = ["--rows", "256", "--cols", "64", "heatmap",
                "--workload", "mult", "--config", "BsxBs",
                "--iterations", "40"]
        assert main(args) == 0
        slow = capsys.readouterr().out
        assert main(["--fast-forward", *args[:4], *args[4:]]) == 0
        fast = capsys.readouterr().out
        assert fast == slow

    def test_ineligible_config_refused_cleanly(self, capsys):
        status = main([
            "--rows", "256", "--cols", "64", "--fast-forward",
            "heatmap", "--workload", "mult", "--config", "RaxRa",
            "--iterations", "40",
        ])
        captured = capsys.readouterr()
        assert status == 1
        assert "RPR011" in captured.err
        assert "Traceback" not in captured.err


class TestTelemetryFlags:
    def test_trace_writes_jsonl_and_stats_summarizes(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "--rows", "256", "--cols", "64",
            "heatmap", "--iterations", "50", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert trace.exists()

        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "record(s)" in out
        assert "simulations: 1 run(s)" in out
        assert "kernel" in out  # per-phase timings

    def test_traced_engine_run_reports_cache_and_jobs(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        argv = [
            "--rows", "256", "--cols", "64", "--trace", str(trace),
            "heatmap", "--iterations", "50",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # warm: trace rewritten with a cache hit
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cache: 1 hit(s), 0 miss(es)" in out
        assert "cached" in out

    def test_progress_flag_renders_lines_on_stderr(self, capsys):
        main([
            "--rows", "256", "--cols", "64",
            "heatmap", "--iterations", "50", "--progress",
        ])
        captured = capsys.readouterr()
        assert "[sim]" in captured.err
        assert "[phase]" in captured.err

    def test_stats_rejects_malformed_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "phase"}\n')
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["stats", str(bad)])

    def test_stats_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["stats", str(tmp_path / "absent.jsonl")])


class TestVerifyWholeSystem:
    """``verify --fleet/--self/--shard-plan``: the static whole-system
    passes behind the workload-sweep subcommand (RPR012-RPR018)."""

    def test_fleet_and_self_clean_json(self, capsys):
        import json

        code = main([
            "verify", "--fleet", "--self", "--arrays", "16", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {
            "errors": 0, "warnings": 0, "total": 0, "exit_code": 0,
        }

    def test_overlapping_shard_plan_exits_one(self, capsys, tmp_path):
        fixture = tmp_path / "bad-plan.json"
        fixture.write_text('{"n_arrays": 8, "bounds": [[0, 5], [4, 8]]}')
        assert main(["verify", "--shard-plan", str(fixture)]) == 1
        out = capsys.readouterr().out
        assert "RPR012" in out
        assert "RPR013" in out

    def test_unsound_window_exits_one(self, capsys):
        code = main([
            "verify", "--fleet", "--arrays", "16",
            "--window", "2000000",
        ])
        assert code == 1
        assert "RPR014" in capsys.readouterr().out

    def test_malformed_fixture_is_a_usage_error(self, tmp_path):
        fixture = tmp_path / "nonsense.json"
        fixture.write_text('{"bounds": "not-a-list"}')
        with pytest.raises(SystemExit, match="bad shard-plan fixture"):
            main(["verify", "--shard-plan", str(fixture)])

    def test_self_lint_alone(self, capsys):
        assert main(["verify", "--self"]) == 0
        out = capsys.readouterr().out
        assert "repo self-lint" in out
        assert "verify: no diagnostics" in out
