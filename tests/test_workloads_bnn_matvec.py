"""Tests for the BNN-neuron and matrix-vector workloads."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.simulator import EnduranceSimulator
from repro.gates.library import NAND_LIBRARY
from repro.workloads.base import evaluate_networked
from repro.workloads.bnn import BinaryNeuron
from repro.workloads.matvec import MatrixVectorProduct


class TestBinaryNeuron:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_neuron_computes_xnor_popcount_threshold(self, small_arch, seed):
        workload = BinaryNeuron(n_inputs=12)
        program = workload.build_program(small_arch)
        rng = np.random.default_rng(seed)
        mask = (1 << 12) - 1
        for _ in range(10):
            x = int(rng.integers(0, 2**12))
            w = int(rng.integers(0, 2**12))
            threshold = int(rng.integers(0, 13))
            matches = bin(~(x ^ w) & mask).count("1")
            outputs, _ = program.evaluate(
                {"x": x, "w": w, "threshold": threshold}
            )
            assert outputs["activation"] == int(matches >= threshold)

    def test_gate_count_is_linear_in_fanin(self, small_arch):
        small = BinaryNeuron(n_inputs=8).build_program(small_arch)
        # A 16-input neuron on a taller lane (needs 2n+ live bits).
        from repro.array.architecture import default_architecture

        big = BinaryNeuron(n_inputs=16).build_program(
            default_architecture(256, 64)
        )
        assert big.gate_count < 2.5 * small.gate_count

    def test_vastly_cheaper_than_multiplication(self, small_arch):
        from repro.synth.analysis import multiplier_counts

        neuron = BinaryNeuron(n_inputs=8).build_program(small_arch)
        assert neuron.gate_count < multiplier_counts(32, NAND_LIBRARY).gates / 20

    def test_mapping_full_utilization(self, small_arch):
        mapping = BinaryNeuron(n_inputs=8).build(small_arch)
        assert mapping.lane_utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BinaryNeuron(n_inputs=1)

    def test_describe(self):
        assert "popcount" in BinaryNeuron().describe()


class TestMatrixVectorProduct:
    def test_functional_group_computes_dot_product(self):
        workload = MatrixVectorProduct(elements_per_row=4, bits=4)
        programs, order = workload.build_functional_group(NAND_LIBRARY)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 16, size=4)
        b = rng.integers(0, 16, size=4)
        operands = {
            lane: {"a": int(a[lane]), "b": int(b[lane])} for lane in range(4)
        }
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["sum"] == int(np.dot(a, b))

    def test_groups_tile_the_array(self, small_arch):
        workload = MatrixVectorProduct(elements_per_row=16, bits=8)
        mapping = workload.build(small_arch)
        assert workload.rows_hosted(small_arch) == small_arch.lane_count // 16
        assert mapping.active_lane_count == small_arch.lane_count

    def test_role_programs_shared_across_groups(self, small_arch):
        mapping = MatrixVectorProduct(elements_per_row=16, bits=8).build(
            small_arch
        )
        # log2(16) + 1 = 5 roles regardless of group count.
        assert len(mapping.distinct_programs()) == 5

    def test_leader_stripe_has_group_period(self, small_arch):
        sim = EnduranceSimulator(small_arch, seed=0)
        workload = MatrixVectorProduct(elements_per_row=16, bits=8)
        result = sim.run(workload, BalanceConfig(), 50, track_reads=False)
        lanes = result.write_distribution.lane_profile()
        assert np.allclose(lanes[:16], lanes[16:32])
        assert lanes[0] > lanes[8]

    def test_utilization_matches_underlying_dot(self, small_arch):
        matvec = MatrixVectorProduct(elements_per_row=16, bits=8).build(
            small_arch
        )
        from repro.workloads.dotproduct import DotProduct

        dot = DotProduct(n_elements=16, bits=8).build(small_arch)
        scale = small_arch.lane_count // 16
        assert matvec.lane_utilization == pytest.approx(
            dot.lane_utilization * scale
        )

    def test_too_few_lanes_rejected(self, tiny_arch):
        with pytest.raises(ValueError, match="at least"):
            MatrixVectorProduct(elements_per_row=128, bits=4).build(tiny_arch)

    def test_describe(self):
        assert "dot-product" in MatrixVectorProduct().describe()
