"""SimulationSettings: validation, legacy aliases, hash stability."""

import warnings

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.settings import (
    SimulationSettings,
    reset_deprecation_latch,
)
from repro.core.simulator import EnduranceSimulator
from repro.core.sweep import simulate_configs
from repro.engine import JobSpec, run_simulation
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture(autouse=True)
def rearmed_latch():
    """Each test sees the once-per-process warning fresh."""
    reset_deprecation_latch()
    yield
    reset_deprecation_latch()


class TestValidation:
    def test_defaults(self):
        s = SimulationSettings()
        assert s.seed == 0
        assert s.kernel == "batched"
        assert s.chunk_size is None
        assert s.track_reads is True

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            SimulationSettings(kernel="magic")

    def test_unknown_log_level_rejected(self):
        with pytest.raises(ValueError, match="log_level"):
            SimulationSettings(log_level="loud")

    def test_unknown_evaluator_rejected(self):
        assert SimulationSettings().evaluator == "compiled"
        assert (
            SimulationSettings(evaluator="interpreted").evaluator
            == "interpreted"
        )
        with pytest.raises(ValueError, match="evaluator"):
            SimulationSettings(evaluator="magic")

    def test_chunk_size_not_validated_here(self):
        # chunk_size is validated where it is consumed (the kernel), so a
        # nonsensical value constructs fine and fails only at run().
        SimulationSettings(chunk_size=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimulationSettings().seed = 1

    def test_replace_revalidates(self):
        s = SimulationSettings()
        assert s.replace(seed=3).seed == 3
        with pytest.raises(ValueError, match="kernel"):
            s.replace(kernel="magic")


class TestDeprecationWarning:
    def test_legacy_kwarg_warns_once_per_process(self, tiny_arch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EnduranceSimulator(tiny_arch, seed=1)
            EnduranceSimulator(tiny_arch, seed=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "settings=" in str(deprecations[0].message)

    def test_settings_path_never_warns(self, tiny_arch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EnduranceSimulator(tiny_arch, SimulationSettings(seed=1))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_run_legacy_kwargs_warn(self, tiny_arch):
        sim = EnduranceSimulator(tiny_arch)
        with pytest.warns(DeprecationWarning, match="EnduranceSimulator.run"):
            sim.run(
                ParallelMultiplication(bits=8), BalanceConfig(),
                iterations=50, kernel="epoch",
            )


class TestEquivalence:
    def test_legacy_and_settings_paths_agree_bitwise(self, tiny_arch):
        workload = ParallelMultiplication(bits=8)
        config = BalanceConfig.from_label("RaxRa")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = EnduranceSimulator(tiny_arch, seed=11).run(
                workload, config, iterations=200
            )
        modern = EnduranceSimulator(
            tiny_arch, SimulationSettings(seed=11)
        ).run(workload, config, iterations=200)
        assert np.array_equal(
            legacy.state.write_counts, modern.state.write_counts
        )

    def test_simulator_properties_delegate_to_settings(self, tiny_arch):
        sim = EnduranceSimulator(
            tiny_arch,
            SimulationSettings(seed=5, kernel="epoch", chunk_size=None),
        )
        assert sim.seed == 5
        assert sim.kernel == "epoch"
        assert sim.chunk_size is None

    def test_run_settings_override_simulator_settings(self, tiny_arch):
        workload = ParallelMultiplication(bits=8)
        sim = EnduranceSimulator(tiny_arch, SimulationSettings(seed=1))
        overridden = sim.run(
            workload, BalanceConfig.from_label("RaxRa"), iterations=100,
            settings=SimulationSettings(seed=2),
        )
        direct = EnduranceSimulator(
            tiny_arch, SimulationSettings(seed=2)
        ).run(workload, BalanceConfig.from_label("RaxRa"), iterations=100)
        assert np.array_equal(
            overridden.state.write_counts, direct.state.write_counts
        )

    def test_simulate_configs_settings_path_matches_legacy(self, tiny_arch):
        workload = ParallelMultiplication(bits=8)
        configs = [BalanceConfig(), BalanceConfig.from_label("RaxRa")]
        sim = EnduranceSimulator(tiny_arch, SimulationSettings(seed=3))
        via_settings = simulate_configs(
            sim, workload, configs, 100,
            settings=SimulationSettings(seed=3, track_reads=False),
        )
        plain = simulate_configs(sim, workload, configs, 100)
        for config in configs:
            assert np.array_equal(
                via_settings[config].state.write_counts,
                plain[config].state.write_counts,
            )

    def test_run_simulation_settings_path(self, tiny_arch, tmp_path):
        workload = ParallelMultiplication(bits=8)
        result = run_simulation(
            workload, BalanceConfig(), tiny_arch, 100,
            settings=SimulationSettings(seed=4),
            cache_dir=str(tmp_path),
        )
        assert result.state.write_counts.sum() > 0


class TestHashStability:
    def test_from_settings_hash_matches_legacy_spec(self, tiny_arch):
        workload = ParallelMultiplication(bits=8)
        config = BalanceConfig.from_label("RaxRa")
        legacy = JobSpec(
            workload=workload, architecture=tiny_arch, config=config,
            iterations=500, seed=9, track_reads=True,
            kernel="epoch", chunk_size=64,
        )
        modern = JobSpec.from_settings(
            workload, tiny_arch, config=config, iterations=500,
            settings=SimulationSettings(
                seed=9, track_reads=True, kernel="epoch", chunk_size=64
            ),
        )
        assert legacy.content_hash == modern.content_hash

    def test_telemetry_options_never_reach_the_hash(self, tiny_arch):
        workload = ParallelMultiplication(bits=8)
        quiet = JobSpec.from_settings(
            workload, tiny_arch, settings=SimulationSettings(seed=1)
        )
        loud = JobSpec.from_settings(
            workload, tiny_arch,
            settings=SimulationSettings(
                seed=1, log_level="debug", trace_path="t.jsonl", progress=True
            ),
        )
        assert quiet.content_hash == loud.content_hash

    def test_evaluator_never_reaches_the_hash(self, tiny_arch):
        # Like kernel/chunk_size, the evaluator is a pure speed knob:
        # results are bit-identical, so caches must not split on it.
        workload = ParallelMultiplication(bits=8)
        compiled = JobSpec.from_settings(
            workload, tiny_arch, settings=SimulationSettings(seed=1)
        )
        interpreted = JobSpec.from_settings(
            workload, tiny_arch,
            settings=SimulationSettings(seed=1, evaluator="interpreted"),
        )
        assert compiled.content_hash == interpreted.content_hash

    def test_spec_settings_round_trip(self, tiny_arch):
        spec = JobSpec.from_settings(
            ParallelMultiplication(bits=8), tiny_arch,
            settings=SimulationSettings(seed=2, kernel="epoch"),
        )
        assert spec.settings.seed == 2
        assert spec.settings.kernel == "epoch"
