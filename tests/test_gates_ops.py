"""Tests for repro.gates.ops: exhaustive truth tables."""

import itertools

import pytest

from repro.gates.ops import ONE_INPUT_OPS, TWO_INPUT_OPS, GateOp, evaluate_op


class TestArity:
    def test_one_input_ops(self):
        assert GateOp.NOT.arity == 1
        assert GateOp.COPY.arity == 1

    def test_two_input_ops(self):
        for op in TWO_INPUT_OPS:
            assert op.arity == 2

    def test_maj_is_three_input(self):
        assert GateOp.MAJ.arity == 3

    def test_partition_covers_everything(self):
        covered = ONE_INPUT_OPS | TWO_INPUT_OPS | {GateOp.MAJ}
        assert covered == set(GateOp)


class TestTruthTables:
    @pytest.mark.parametrize("a", [0, 1])
    def test_not_and_copy(self, a):
        assert evaluate_op(GateOp.NOT, [a]) == 1 - a
        assert evaluate_op(GateOp.COPY, [a]) == a

    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], repeat=2)))
    def test_two_input_semantics(self, a, b):
        assert evaluate_op(GateOp.AND, [a, b]) == (a & b)
        assert evaluate_op(GateOp.NAND, [a, b]) == 1 - (a & b)
        assert evaluate_op(GateOp.OR, [a, b]) == (a | b)
        assert evaluate_op(GateOp.NOR, [a, b]) == 1 - (a | b)
        assert evaluate_op(GateOp.XOR, [a, b]) == (a ^ b)
        assert evaluate_op(GateOp.XNOR, [a, b]) == 1 - (a ^ b)

    @pytest.mark.parametrize("bits", list(itertools.product([0, 1], repeat=3)))
    def test_majority(self, bits):
        assert evaluate_op(GateOp.MAJ, list(bits)) == int(sum(bits) >= 2)

    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], repeat=2)))
    def test_de_morgan_duality(self, a, b):
        # NAND(a, b) == OR(!a, !b); NOR(a, b) == AND(!a, !b).
        assert evaluate_op(GateOp.NAND, [a, b]) == evaluate_op(
            GateOp.OR, [1 - a, 1 - b]
        )
        assert evaluate_op(GateOp.NOR, [a, b]) == evaluate_op(
            GateOp.AND, [1 - a, 1 - b]
        )


class TestValidation:
    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="takes 2 inputs"):
            evaluate_op(GateOp.AND, [1])

    def test_non_boolean_input_rejected(self):
        with pytest.raises(ValueError, match="0 or 1"):
            evaluate_op(GateOp.NOT, [2])
