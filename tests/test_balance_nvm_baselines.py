"""Tests for repro.balance.nvm_baselines."""

import numpy as np
import pytest

from repro.balance.nvm_baselines import (
    StartGapRemapper,
    TableBasedRemapper,
    pim_and_after_remap,
)


class TestStartGap:
    def test_translation_is_injective(self):
        remapper = StartGapRemapper(n_lines=16, gap_write_interval=4)
        for _ in range(200):
            physicals = [remapper.translate(l) for l in range(16)]
            assert len(set(physicals)) == 16
            assert remapper.gap not in physicals  # gap line stays unused
            remapper.write(0)

    def test_gap_traverses_and_start_advances(self):
        remapper = StartGapRemapper(n_lines=4, gap_write_interval=1)
        assert remapper.gap == 4
        for _ in range(4):
            remapper.write(0)
        assert remapper.gap == 0
        remapper.write(0)
        assert remapper.gap == 4
        assert remapper.start == 1

    def test_levels_a_hot_line(self):
        # A single hot logical line must end up spread over many physical
        # lines — the whole point of Start-Gap.
        remapper = StartGapRemapper(n_lines=16, gap_write_interval=8)
        for _ in range(16 * 17 * 8 * 4):  # several full rotations
            remapper.write(5)
        touched = np.count_nonzero(remapper.physical_writes)
        assert touched == 17

    def test_gap_moves_cost_extra_writes(self):
        remapper = StartGapRemapper(n_lines=4, gap_write_interval=2)
        for _ in range(8):
            remapper.write(1)
        assert remapper.physical_writes.sum() > 8

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapRemapper(1)
        with pytest.raises(ValueError):
            StartGapRemapper(4, gap_write_interval=0)
        with pytest.raises(IndexError):
            StartGapRemapper(4).translate(4)


class TestTableBased:
    def test_translation_initially_identity(self):
        remapper = TableBasedRemapper(8)
        assert [remapper.translate(l) for l in range(8)] == list(range(8))

    def test_hot_line_gets_swapped_away(self):
        remapper = TableBasedRemapper(8, swap_interval=10)
        original = remapper.translate(3)
        for _ in range(30):
            remapper.write(3)
        assert remapper.translate(3) != original

    def test_mapping_stays_a_permutation(self):
        remapper = TableBasedRemapper(8, swap_interval=5)
        rng = np.random.default_rng(0)
        for _ in range(200):
            remapper.write(int(rng.integers(0, 8)))
            physicals = [remapper.translate(l) for l in range(8)]
            assert sorted(physicals) == list(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            TableBasedRemapper(1)
        with pytest.raises(IndexError):
            TableBasedRemapper(4).translate(-1)


class TestFig6Misalignment:
    def test_zero_shift_is_correct(self):
        assert pim_and_after_remap(0b1010, 0b0110, 4, shift=0) == 0b1010 & 0b0110

    @pytest.mark.parametrize("shift", [1, 2, 3])
    def test_nonzero_shift_corrupts_some_input(self, shift):
        # Fig. 6: for each misalignment there exists an operand pair whose
        # in-memory AND is wrong — remapping that is safe for standard
        # memory breaks PIM.
        width = 4
        broken = False
        for x in range(16):
            for y in range(16):
                if pim_and_after_remap(x, y, width, shift) != (x & y):
                    broken = True
        assert broken

    def test_full_wrap_shift_is_harmless(self):
        assert pim_and_after_remap(0b1100, 0b1010, 4, shift=4) == 0b1100 & 0b1010

    def test_operand_width_validation(self):
        with pytest.raises(ValueError):
            pim_and_after_remap(16, 0, 4, 0)
        with pytest.raises(ValueError):
            pim_and_after_remap(0, 0, 0, 0)
