"""Population assembly and the closed-form death thresholds."""

import numpy as np
import pytest

from repro.balance.config import BalanceConfig
from repro.core.failure import failure_timeline, minimum_footprint
from repro.core.simulator import EnduranceSimulator
from repro.devices.endurance import LognormalEndurance, UniformEndurance
from repro.fleet import (
    BUDGET_STREAM,
    CohortSpec,
    Population,
    PopulationSpec,
    interleaved_assignment,
    proportional_counts,
)
from repro.workloads.vectoradd import VectorAdd


@pytest.fixture(scope="module")
def add_result():
    arch_module = pytest.importorskip("repro.array.architecture")
    arch = arch_module.default_architecture(128, 128)
    sim = EnduranceSimulator(arch, seed=0)
    return sim.run(VectorAdd(bits=32), BalanceConfig(), 200)


class TestApportionment:
    def test_counts_sum_to_total(self):
        assert sum(proportional_counts([3, 2, 1], 100)) == 100
        assert sum(proportional_counts([0.1, 0.9], 7)) == 7

    def test_exact_split(self):
        assert proportional_counts([1, 1], 10) == [5, 5]
        assert proportional_counts([2, 1, 1], 8) == [4, 2, 2]

    def test_largest_remainder_breaks_ties_to_earlier(self):
        # 3 slots over equal thirds: quotas are all 1.0, no remainder.
        assert proportional_counts([1, 1, 1], 3) == [1, 1, 1]
        # 1 slot over equal halves: earlier entry wins the tie.
        assert proportional_counts([1, 1], 1) == [1, 0]

    def test_rejects_degenerate_weights(self):
        with pytest.raises(ValueError):
            proportional_counts([0, 0], 4)
        with pytest.raises(ValueError):
            proportional_counts([-1, 2], 4)

    def test_interleaving_alternates_even_mixes(self):
        assignment = interleaved_assignment([1, 1], 8)
        assert assignment.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_interleaving_matches_proportional_totals(self):
        weights = [5, 2, 3]
        assignment = interleaved_assignment(weights, 41)
        counts = np.bincount(assignment, minlength=3).tolist()
        assert counts == proportional_counts(weights, 41)


class TestSpecs:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            CohortSpec("sorting")

    def test_bad_config_label_rejected(self):
        with pytest.raises(Exception):
            CohortSpec("add", config="NotAConfig")

    def test_duplicate_cohort_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate cohort keys"):
            PopulationSpec(
                cohorts=(CohortSpec("add"), CohortSpec("add"))
            )

    def test_unknown_technology_rejected(self):
        with pytest.raises(KeyError):
            PopulationSpec(technology_mix=(("FeRAM", 1.0),))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PopulationSpec(endurance_sigma=-0.1)

    def test_identity_is_json_able_and_stable(self):
        import json

        spec = PopulationSpec(
            n_arrays=10,
            technology_mix=(("MRAM", 2.0), ("PCM", 1.0)),
            cohorts=(CohortSpec("add"), CohortSpec("conv", weight=2.0)),
            endurance_sigma=0.25,
        )
        a = json.dumps(spec.identity(), sort_keys=True)
        b = json.dumps(spec.identity(), sort_keys=True)
        assert a == b


class TestPopulationBuild:
    def test_build_is_deterministic(self):
        spec = PopulationSpec(
            n_arrays=12,
            technology_mix=(("MRAM", 1.0), ("RRAM", 1.0), ("PCM", 2.0)),
            cohorts=(CohortSpec("add"), CohortSpec("conv")),
        )
        a = Population.build(spec)
        b = Population.build(spec)
        assert np.array_equal(a.cohort_index, b.cohort_index)
        assert np.array_equal(a.technology_index, b.technology_index)

    def test_technology_shares_respected(self):
        spec = PopulationSpec(
            n_arrays=8, technology_mix=(("MRAM", 3.0), ("PCM", 1.0))
        )
        population = Population.build(spec)
        names = [
            population.technology_of(i).name for i in range(8)
        ]
        assert names.count("MRAM") == 6
        assert names.count("PCM") == 2

    def test_technology_mix_decorrelated_from_cohorts(self):
        # Two lockstep 50/50 interleavings would put every PCM array in
        # one cohort; each cohort must get its own proportional mix.
        spec = PopulationSpec(
            n_arrays=8,
            technology_mix=(("MRAM", 1.0), ("PCM", 1.0)),
            cohorts=(CohortSpec("add"), CohortSpec("conv")),
        )
        population = Population.build(spec)
        for cohort in range(2):
            members = population.arrays_in_cohort(cohort)
            names = [population.technology_of(i).name for i in members]
            assert names.count("MRAM") == 2
            assert names.count("PCM") == 2

    def test_uniform_model_when_sigma_zero(self):
        population = Population.build(PopulationSpec(n_arrays=2))
        model = population.endurance_model_for(0, seed=5)
        assert isinstance(model, UniformEndurance)

    def test_lognormal_models_differ_per_array_not_per_call(self):
        population = Population.build(
            PopulationSpec(n_arrays=2, endurance_sigma=0.3)
        )
        a1 = population.endurance_model_for(0, seed=5).sample_budgets((4, 4))
        a2 = population.endurance_model_for(0, seed=5).sample_budgets((4, 4))
        b = population.endurance_model_for(1, seed=5).sample_budgets((4, 4))
        assert np.array_equal(a1, a2)  # fresh stream per call, same seed
        assert not np.array_equal(a1, b)  # distinct stream per array


class TestDeathThresholds:
    """The fleet must reproduce failure_timeline bit for bit."""

    def test_uniform_matches_first_failure(self, add_result):
        population = Population.build(
            PopulationSpec(n_arrays=1, cohorts=(CohortSpec("add"),))
        )
        thresholds = population.death_thresholds([add_result], seed=0)
        closed_form = failure_timeline(add_result, required_offsets=1)
        assert thresholds[0] == closed_form.first_failure_iterations

    def test_lognormal_matches_first_failure_bit_exact(self, add_result):
        sigma = 0.35
        population = Population.build(
            PopulationSpec(
                n_arrays=1,
                cohorts=(CohortSpec("add"),),
                endurance_sigma=sigma,
            )
        )
        seed = 11
        thresholds = population.death_thresholds([add_result], seed=seed)
        model = LognormalEndurance(
            add_result.architecture.technology.endurance_writes,
            sigma=sigma,
            rng=np.random.default_rng([seed, BUDGET_STREAM, 0]),
        )
        closed_form = failure_timeline(
            add_result, required_offsets=1, endurance_model=model
        )
        assert thresholds[0] == closed_form.first_failure_iterations

    def test_repacking_matches_unusable_horizon(self, add_result):
        sigma = 0.35
        population = Population.build(
            PopulationSpec(
                n_arrays=1,
                cohorts=(CohortSpec("add"),),
                endurance_sigma=sigma,
                repacking=True,
            )
        )
        seed = 11
        footprint = minimum_footprint(
            VectorAdd(bits=32), add_result.architecture
        )
        thresholds = population.death_thresholds(
            [add_result], seed=seed, required_offsets=[footprint]
        )
        model = LognormalEndurance(
            add_result.architecture.technology.endurance_writes,
            sigma=sigma,
            rng=np.random.default_rng([seed, BUDGET_STREAM, 0]),
        )
        closed_form = failure_timeline(
            add_result, required_offsets=footprint, endurance_model=model
        )
        assert thresholds[0] == closed_form.unusable_iterations

    def test_repacking_requires_offsets(self, add_result):
        population = Population.build(
            PopulationSpec(
                n_arrays=1, cohorts=(CohortSpec("add"),), repacking=True
            )
        )
        with pytest.raises(ValueError, match="required_offsets"):
            population.death_thresholds([add_result], seed=0)

    def test_result_count_mismatch_rejected(self, add_result):
        population = Population.build(PopulationSpec(n_arrays=1))
        with pytest.raises(ValueError, match="cohort results"):
            population.death_thresholds([add_result, add_result], seed=0)
