"""Tests for repro.core.system: duty cycles and array farms."""

import numpy as np
import pytest

from repro.core.lifetime import LifetimeEstimate
from repro.core.system import ArrayFarm, lifetime_at_duty_cycle

ESTIMATE = LifetimeEstimate(
    iterations_to_failure=1e10,
    seconds_to_failure=2_700_000.0,
    max_writes_per_iteration=20.0,
    endurance_writes=1e12,
)


class TestDutyCycle:
    def test_full_duty_is_identity(self):
        scaled = lifetime_at_duty_cycle(ESTIMATE, 1.0)
        assert scaled == ESTIMATE

    def test_one_percent_duty_stretches_100x(self):
        scaled = lifetime_at_duty_cycle(ESTIMATE, 0.01)
        assert scaled.seconds_to_failure == pytest.approx(
            100 * ESTIMATE.seconds_to_failure
        )
        # Iteration budget is unchanged — only wall-clock stretches.
        assert scaled.iterations_to_failure == ESTIMATE.iterations_to_failure

    def test_embedded_contrast(self):
        # The paper's conclusion: low duty cycles turn ~a month into years.
        scaled = lifetime_at_duty_cycle(ESTIMATE, 0.01)
        assert scaled.years_to_failure > 5

    def test_invalid_duty_cycle_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                lifetime_at_duty_cycle(ESTIMATE, bad)


class TestArrayFarm:
    def test_zero_sigma_all_identical(self):
        farm = ArrayFarm(16, sigma=0.0, rng=0)
        lifetimes = farm.sample_lifetimes(ESTIMATE)
        assert np.allclose(lifetimes, ESTIMATE.seconds_to_failure)

    def test_replacement_horizon_ordering(self):
        farm = ArrayFarm(256, sigma=0.3, rng=1)
        summary = farm.replacement_horizon(ESTIMATE, failure_fraction=0.1)
        assert (
            summary.first_seconds
            <= summary.horizon_seconds
            <= summary.median_seconds
        )
        assert summary.n_arrays == 256

    def test_larger_farms_fail_earlier_first(self):
        # More arrays = a weaker weakest array (extreme-value effect).
        small = ArrayFarm(8, sigma=0.3, rng=2).replacement_horizon(ESTIMATE)
        large = ArrayFarm(4096, sigma=0.3, rng=2).replacement_horizon(ESTIMATE)
        assert large.first_seconds < small.first_seconds

    def test_reproducible_with_seed(self):
        a = ArrayFarm(32, sigma=0.2, rng=5).replacement_horizon(ESTIMATE)
        b = ArrayFarm(32, sigma=0.2, rng=5).replacement_horizon(ESTIMATE)
        assert a.horizon_seconds == b.horizon_seconds

    def test_duty_cycle_scales_horizon(self):
        active = ArrayFarm(64, sigma=0.1, rng=3).replacement_horizon(
            ESTIMATE, duty_cycle=1.0
        )
        idle = ArrayFarm(64, sigma=0.1, rng=3).replacement_horizon(
            ESTIMATE, duty_cycle=0.1
        )
        assert idle.horizon_seconds == pytest.approx(
            10 * active.horizon_seconds
        )

    def test_horizon_days_property(self):
        summary = ArrayFarm(8, sigma=0.0, rng=0).replacement_horizon(ESTIMATE)
        assert summary.horizon_days == pytest.approx(
            summary.horizon_seconds / 86400
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayFarm(0)
        with pytest.raises(ValueError):
            ArrayFarm(4, sigma=-1)
        with pytest.raises(ValueError):
            ArrayFarm(4).replacement_horizon(ESTIMATE, failure_fraction=0.0)
