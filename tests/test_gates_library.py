"""Tests for repro.gates.library: the paper's gate-count contracts."""

import pytest

from repro.gates.library import (
    MINIMAL_LIBRARY,
    NAND_LIBRARY,
    NOR_LIBRARY,
    library_by_name,
)
from repro.gates.ops import GateOp


class TestNandLibrary:
    def test_adder_costs_match_fig2(self):
        # Fig. 2: a full adder is 9 NAND gates.
        assert NAND_LIBRARY.full_adder_gates == 9
        assert NAND_LIBRARY.half_adder_gates == 5

    def test_carry_adder_costs(self):
        # Carry-only chain: Fig. 2's XOR block plus the carry NAND (6),
        # its NOR dual (6), and the minimal library's carry tree (4).
        assert NAND_LIBRARY.carry_adder_gates == 6
        assert NOR_LIBRARY.carry_adder_gates == 6
        assert MINIMAL_LIBRARY.carry_adder_gates == 4

    def test_and_is_single_gate(self):
        # Section 3.1's 9,824 total counts each AND as one gate.
        assert NAND_LIBRARY.and_gate_cost == 1
        assert NAND_LIBRARY.supports(GateOp.AND)

    def test_copy_needs_two_nots(self):
        # Footnote 5: some architectures lack COPY and use two NOTs.
        assert not NAND_LIBRARY.has_native_copy
        assert NAND_LIBRARY.copy_gate_cost == 2

    def test_32bit_multiplier_is_9824_gates(self):
        assert NAND_LIBRARY.multiplier_gates(32) == 9824

    def test_xor_not_native(self):
        assert not NAND_LIBRARY.supports(GateOp.XOR)


class TestMinimalLibrary:
    @pytest.mark.parametrize("bits", [4, 8, 16, 32, 64])
    def test_multiplier_formula_6b2_minus_8b(self, bits):
        # Section 3.2: "a multiplication requires 6b^2 - 8b gates in total".
        assert MINIMAL_LIBRARY.multiplier_gates(bits) == 6 * bits * bits - 8 * bits

    @pytest.mark.parametrize("bits", [4, 8, 16, 32, 64])
    def test_adder_formula_5b_minus_3(self, bits):
        # Ripple-carry: (b-1) 5-gate full adds + one 2-gate half add.
        assert MINIMAL_LIBRARY.adder_gates(bits) == 5 * bits - 3

    def test_copy_is_native(self):
        assert MINIMAL_LIBRARY.copy_gate_cost == 1


class TestNorLibrary:
    def test_and_costs_three_gates(self):
        assert NOR_LIBRARY.and_gate_cost == 3

    def test_multiplier_more_expensive_than_nand(self):
        assert NOR_LIBRARY.multiplier_gates(32) > NAND_LIBRARY.multiplier_gates(32)

    def test_adder_costs_match_nand_duals(self):
        assert NOR_LIBRARY.adder_gates(32) == NAND_LIBRARY.adder_gates(32)


class TestLookupAndValidation:
    def test_library_by_name(self):
        assert library_by_name("nand") is NAND_LIBRARY
        assert library_by_name(" MINIMAL ") is MINIMAL_LIBRARY

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError, match="minimal"):
            library_by_name("cmos")

    def test_width_below_two_rejected(self):
        with pytest.raises(ValueError):
            NAND_LIBRARY.multiplier_gates(1)
        with pytest.raises(ValueError):
            NAND_LIBRARY.adder_gates(0)

    def test_libraries_are_hashable(self):
        assert len({NAND_LIBRARY, MINIMAL_LIBRARY, NOR_LIBRARY}) == 3
