"""Tests for repro.workloads.multiply."""

import pytest

from repro.synth.bits import AllocationPolicy
from repro.workloads.multiply import ParallelMultiplication


class TestProgram:
    def test_program_computes_products(self, small_arch):
        workload = ParallelMultiplication(bits=8)
        program = workload.build_program(small_arch)
        for x, y in [(0, 0), (255, 255), (13, 19)]:
            outputs, readouts = program.evaluate({"a": x, "b": y})
            assert outputs["product"] == x * y
            from repro.synth.bits import BitVector

            assert BitVector.bits_value(readouts["product"]) == x * y

    def test_program_reserves_spare_bit(self, small_arch):
        program = ParallelMultiplication(bits=8).build_program(small_arch)
        assert program.footprint <= small_arch.lane_size - 1

    def test_workspace_limit_caps_footprint(self, small_arch):
        workload = ParallelMultiplication(bits=8, workspace_limit=64)
        program = workload.build_program(small_arch)
        assert program.footprint <= 64


class TestMapping:
    def test_all_lanes_used_by_default(self, small_arch):
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        assert mapping.active_lane_count == small_arch.lane_count

    def test_all_lanes_share_one_program(self, small_arch):
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        assert len(mapping.distinct_programs()) == 1

    def test_utilization_is_100_percent(self, small_arch):
        # Table 3: embarrassingly parallel multiplication, 100% utilization.
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        assert mapping.lane_utilization == pytest.approx(1.0)

    def test_lane_subset(self, small_arch):
        mapping = ParallelMultiplication(bits=8, lanes=10).build(small_arch)
        assert mapping.active_lane_count == 10
        assert mapping.lane_utilization < 0.1

    def test_presets_add_sequential_ops(self, small_arch, sense_amp_arch):
        with_presets = ParallelMultiplication(bits=8).build(small_arch)
        without = ParallelMultiplication(bits=8).build(sense_amp_arch)
        assert with_presets.sequential_ops > without.sequential_ops

    def test_iteration_latency_uses_3ns(self, small_arch):
        mapping = ParallelMultiplication(bits=8).build(small_arch)
        assert mapping.iteration_latency_s == pytest.approx(
            mapping.sequential_ops * 3e-9
        )

    def test_writes_per_iteration_cover_all_lanes(self, small_arch):
        full = ParallelMultiplication(bits=8).build(small_arch)
        program = full.distinct_programs()[0]
        per_lane = program.write_counts(include_presets=True).sum()
        assert full.writes_per_iteration == per_lane * small_arch.lane_count

    def test_too_many_lanes_rejected(self, tiny_arch):
        with pytest.raises(ValueError, match="cannot place"):
            ParallelMultiplication(bits=4, lanes=100).build(tiny_arch)


class TestValidation:
    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            ParallelMultiplication(bits=1)

    def test_bad_workspace_limit_rejected(self):
        with pytest.raises(ValueError):
            ParallelMultiplication(bits=8, workspace_limit=0)

    def test_describe_mentions_lanes(self):
        assert "lanes" in ParallelMultiplication().describe()

    def test_lowest_first_policy_shrinks_footprint(self, small_arch):
        ring = ParallelMultiplication(bits=8).build_program(small_arch)
        compact = ParallelMultiplication(
            bits=8, allocation_policy=AllocationPolicy.LOWEST_FIRST
        ).build_program(small_arch)
        assert compact.footprint < ring.footprint
