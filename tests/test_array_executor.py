"""Tests for repro.array.executor: replay and epoch algebra agree exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.architecture import default_architecture, PINATUBO
from repro.array.executor import accumulate_assignment, replay_assignment
from repro.array.state import ArrayState
from repro.gates.ops import GateOp
from repro.synth.program import LaneProgramBuilder
from repro.gates.library import NAND_LIBRARY


def _small_program(width=2):
    builder = LaneProgramBuilder(NAND_LIBRARY, name="small")
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    x = builder.gate(GateOp.NAND, a[0], b[0])
    y = builder.gate(GateOp.NAND, a[1], b[1])
    z = builder.gate(GateOp.NAND, x, y)
    from repro.synth.bits import BitVector

    builder.read_out(BitVector([z]), tag="z")
    return builder.finish()


class TestReplay:
    def test_counts_gate_reads_and_writes(self):
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        program = _small_program()
        replay_assignment(arch, {0: program}, state)
        # 4 loads + 3 gates x 2 (preset + write) = 10 writes.
        assert state.total_writes == 10
        # 3 gates x 2 inputs + 1 read-out = 7 reads.
        assert state.total_reads == 7

    def test_presets_off_halves_gate_writes(self):
        arch = PINATUBO.resized(8, 8)
        state = ArrayState(arch.geometry)
        replay_assignment(arch, {0: _small_program()}, state)
        assert state.total_writes == 4 + 3

    def test_repetitions_scale_counts(self):
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        replay_assignment(arch, {0: _small_program()}, state, repetitions=5)
        assert state.total_writes == 50

    def test_program_too_tall_rejected(self):
        arch = default_architecture(4, 4)
        state = ArrayState(arch.geometry)
        with pytest.raises(ValueError, match="needs"):
            replay_assignment(arch, {0: _small_program(width=4)}, state)

    def test_geometry_mismatch_rejected(self):
        arch = default_architecture(8, 8)
        state = ArrayState(default_architecture(4, 4).geometry)
        with pytest.raises(ValueError, match="geometry"):
            replay_assignment(arch, {}, state)

    def test_bad_permutation_rejected(self):
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        with pytest.raises(ValueError, match="permutation"):
            replay_assignment(
                arch, {0: _small_program()}, state,
                within_map=np.zeros(8, dtype=int),
            )


class TestCompiledReplayMatchesInterpreter:
    @given(
        seed=st.integers(0, 1000),
        repetitions=st.integers(1, 4),
        presets=st.booleans(),
        identity_maps=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_under_random_maps(
        self, seed, repetitions, presets, identity_maps
    ):
        base = default_architecture(16, 12)
        arch = base if presets else PINATUBO.resized(16, 12)
        rng = np.random.default_rng(seed)
        within = None if identity_maps else rng.permutation(arch.lane_size)
        between = None if identity_maps else rng.permutation(arch.lane_count)
        program_a = _small_program()
        program_b = _small_program(width=3)
        assignment = {0: program_a, 3: program_a, 7: program_b}

        interpreted = ArrayState(arch.geometry)
        replay_assignment(
            arch, assignment, interpreted, within, between, repetitions,
            method="interpreted",
        )
        compiled = ArrayState(arch.geometry)
        replay_assignment(
            arch, assignment, compiled, within, between, repetitions,
            method="compiled",
        )
        assert np.array_equal(interpreted.write_counts, compiled.write_counts)
        assert np.array_equal(interpreted.read_counts, compiled.read_counts)

    def test_unknown_method_rejected(self):
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        with pytest.raises(ValueError, match="method"):
            replay_assignment(arch, {0: _small_program()}, state, method="jit")

    def test_compiled_validates_footprint_and_maps(self):
        arch = default_architecture(4, 4)
        state = ArrayState(arch.geometry)
        with pytest.raises(ValueError, match="needs"):
            replay_assignment(
                arch, {0: _small_program(width=4)}, state, method="compiled"
            )
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        with pytest.raises(ValueError, match="permutation"):
            replay_assignment(
                arch, {0: _small_program()}, state,
                within_map=np.zeros(8, dtype=int), method="compiled",
            )


class TestLaneWeightBincount:
    def test_bincount_equals_add_at_scatter(self):
        # The micro-optimization accumulate_assignment relies on: lane
        # membership is a 0/1 histogram, so bincount == np.add.at.
        rng = np.random.default_rng(9)
        lane_count = 64
        between = rng.permutation(lane_count)
        logical_lanes = rng.choice(lane_count, size=17, replace=False)
        repetitions = 2.5
        reference = np.zeros(lane_count)
        np.add.at(reference, between[logical_lanes], repetitions)
        bincounted = (
            np.bincount(between[logical_lanes], minlength=lane_count).astype(
                np.float64
            )
            * repetitions
        )
        assert np.array_equal(reference, bincounted)


class TestAccumulateMatchesReplay:
    @given(
        seed=st.integers(0, 1000),
        repetitions=st.integers(1, 4),
        presets=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_under_random_maps(self, seed, repetitions, presets):
        # The epoch algebra must be bit-exact with instruction replay for
        # any permutations — the cornerstone of the fast simulator.
        base = default_architecture(16, 12)
        arch = base if presets else PINATUBO.resized(16, 12)
        rng = np.random.default_rng(seed)
        within = rng.permutation(arch.lane_size)
        between = rng.permutation(arch.lane_count)
        program_a = _small_program()
        program_b = _small_program(width=3)
        assignment = {0: program_a, 3: program_a, 7: program_b}

        replayed = ArrayState(arch.geometry)
        replay_assignment(
            arch, assignment, replayed, within, between, repetitions
        )
        accumulated = ArrayState(arch.geometry)
        accumulate_assignment(
            arch, assignment, accumulated, within, between, float(repetitions)
        )
        assert np.allclose(replayed.write_counts, accumulated.write_counts)
        assert np.allclose(replayed.read_counts, accumulated.read_counts)

    def test_write_profile_override(self):
        arch = default_architecture(8, 8)
        program = _small_program()
        state = ArrayState(arch.geometry)
        override = np.zeros(arch.lane_size)
        override[5] = 7.0
        accumulate_assignment(
            arch, {0: program}, state,
            write_profiles={id(program): override},
        )
        assert state.write_counts[5, 0] == 7.0
        # Reads still follow the program's own profile.
        assert state.total_reads == 7

    def test_fractional_repetitions(self):
        arch = default_architecture(8, 8)
        state = ArrayState(arch.geometry)
        accumulate_assignment(arch, {0: _small_program()}, state, repetitions=0.5)
        assert state.total_writes == pytest.approx(5.0)
