"""Tests for repro.workloads.convolution."""

import numpy as np
import pytest

from repro.gates.library import NAND_LIBRARY
from repro.workloads.base import evaluate_networked
from repro.workloads.convolution import Convolution


def _small_conv():
    # 2x2 filter over 4 taps, 2 lanes x 2 products, 3-bit precision.
    return Convolution(
        filter_rows=2, filter_cols=2, neurons=(4, 4), bits=3, lanes_per_group=2
    )


class TestWidths:
    def test_partial_and_final_widths(self):
        workload = Convolution()  # paper defaults: 4x3, 8-bit, 4 lanes
        assert workload.products_per_lane == 3
        assert workload.partial_width == 18
        assert workload.final_width == 21

    def test_taps_must_divide_group(self):
        with pytest.raises(ValueError, match="divide evenly"):
            Convolution(filter_rows=3, filter_cols=3, lanes_per_group=4)

    def test_filter_must_fit_neurons(self):
        with pytest.raises(ValueError, match="smaller than the filter"):
            Convolution(filter_rows=4, filter_cols=3, neurons=(3, 3))


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_group_computes_thresholded_convolution(self, seed):
        workload = _small_conv()
        programs, order = workload.build_functional_group(NAND_LIBRARY)
        rng = np.random.default_rng(seed)
        taps = workload.filter_rows * workload.filter_cols
        neurons = rng.integers(0, 8, size=taps)
        weights = rng.integers(0, 8, size=taps)
        true_sum = int(np.dot(neurons, weights))
        threshold = int(rng.integers(0, 4 * 49 + 1))
        operands = {}
        index = 0
        for lane in range(workload.lanes_per_group):
            lane_ops = {}
            for i in range(workload.products_per_lane):
                lane_ops[f"n{i}"] = int(neurons[index])
                lane_ops[f"w{i}"] = int(weights[index])
                index += 1
            operands[lane] = lane_ops
        operands[0]["threshold"] = threshold
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["activation"] == int(true_sum >= threshold)

    def test_threshold_boundary(self):
        workload = _small_conv()
        programs, order = workload.build_functional_group(NAND_LIBRARY)
        operands = {
            0: {"n0": 1, "w0": 1, "n1": 0, "w1": 0, "threshold": 2},
            1: {"n0": 1, "w0": 1, "n1": 0, "w1": 0},
        }
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["activation"] == 1  # sum == threshold
        operands[0]["threshold"] = 3
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["activation"] == 0


class TestMapping:
    def test_two_roles(self, small_arch):
        mapping = Convolution(bits=4).build(small_arch)
        assert len(mapping.distinct_programs()) == 2

    def test_every_fourth_lane_is_leader(self, small_arch):
        # Fig. 15: "convolution is write-heavy in every fourth column".
        workload = Convolution(bits=4)
        mapping = workload.build(small_arch)
        include = small_arch.presets_output
        per_lane = {
            lane: program.write_counts(include_presets=include).sum()
            for lane, program in mapping.assignment.items()
        }
        leaders = [lane for lane in per_lane if lane % 4 == 0]
        members = [lane for lane in per_lane if lane % 4 != 0]
        assert min(per_lane[l] for l in leaders) > max(per_lane[m] for m in members)

    def test_all_lanes_hosted(self, small_arch):
        mapping = Convolution(bits=4).build(small_arch)
        assert mapping.active_lane_count == small_arch.lane_count

    def test_utilization_between_dot_and_mult(self):
        from repro.array.architecture import default_architecture

        arch = default_architecture()
        conv_util = Convolution().build(arch).lane_utilization
        # Paper Table 3: 84.78%; ours lands in the same band.
        assert 0.7 < conv_util < 0.95

    def test_array_too_small_rejected(self):
        from repro.array.architecture import default_architecture

        arch = default_architecture(64, 2)
        with pytest.raises(ValueError, match="at least"):
            Convolution(bits=4).build(arch)

    def test_describe(self):
        assert "filter" in Convolution().describe()
