"""Tests for repro.balance.mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.mapping import (
    byte_shift_permutation,
    identity_permutation,
    invert_permutation,
    random_permutation,
)


class TestIdentity:
    def test_identity(self):
        assert identity_permutation(4).tolist() == [0, 1, 2, 3]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            identity_permutation(0)


class TestRandom:
    def test_is_a_permutation(self):
        perm = random_permutation(100, rng=0)
        assert sorted(perm.tolist()) == list(range(100))

    def test_reproducible_with_seed(self):
        assert np.array_equal(random_permutation(50, rng=7), random_permutation(50, rng=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_permutation(50, rng=1), random_permutation(50, rng=2)
        )


class TestByteShift:
    def test_shift_moves_by_whole_bytes(self):
        perm = byte_shift_permutation(32, shift_bytes=1)
        assert perm[0] == 8
        assert perm[31] == (31 + 8) % 32

    def test_zero_shift_is_identity(self):
        assert np.array_equal(byte_shift_permutation(16, 0), identity_permutation(16))

    def test_wraps_around(self):
        perm = byte_shift_permutation(16, shift_bytes=3)  # 24 mod 16 = 8
        assert perm[0] == 8

    @given(size=st.integers(1, 256), shift=st.integers(0, 100))
    @settings(max_examples=50)
    def test_always_a_permutation(self, size, shift):
        perm = byte_shift_permutation(size, shift)
        assert sorted(perm.tolist()) == list(range(size))

    def test_shift_composition(self):
        # Shifting twice by one byte equals shifting once by two bytes.
        once = byte_shift_permutation(64, 1)
        twice = once[byte_shift_permutation(64, 1)]
        assert np.array_equal(twice, byte_shift_permutation(64, 2))


class TestInvert:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_inverse_round_trip(self, seed):
        perm = random_permutation(64, rng=seed)
        inverse = invert_permutation(perm)
        assert np.array_equal(perm[inverse], np.arange(64))
        assert np.array_equal(inverse[perm], np.arange(64))
