"""Tests for repro.synth.program: counting and evaluation semantics."""

import pytest

from repro.gates.library import MINIMAL_LIBRARY, NAND_LIBRARY
from repro.gates.ops import GateOp
from repro.synth.bits import BitVector
from repro.synth.program import (
    ConstBit,
    ExternalBit,
    LaneProgram,
    LaneProgramBuilder,
    OperandBit,
    ReadInstr,
    WriteInstr,
)


def _and_program():
    builder = LaneProgramBuilder(MINIMAL_LIBRARY, name="and")
    a = builder.input_vector("a", 1)
    b = builder.input_vector("b", 1)
    out = builder.gate(GateOp.AND, a[0], b[0])
    builder.mark_output("z", BitVector([out]))
    builder.read_out(BitVector([out]), tag="z")
    return builder.finish()


class TestCounting:
    def test_write_counts_without_presets(self):
        program = _and_program()
        counts = program.write_counts()
        # Two operand loads plus one gate output.
        assert counts.tolist() == [1, 1, 1]

    def test_write_counts_with_presets_double_gate_outputs(self):
        program = _and_program()
        counts = program.write_counts(include_presets=True)
        assert counts.tolist() == [1, 1, 2]

    def test_read_counts(self):
        program = _and_program()
        # Gate reads both inputs; the read-out reads the output once.
        assert program.read_counts().tolist() == [1, 1, 1]

    def test_counts_can_be_embedded_in_larger_lane(self):
        program = _and_program()
        counts = program.write_counts(10)
        assert counts.shape == (10,)
        assert counts[3:].sum() == 0

    def test_size_below_footprint_rejected(self):
        with pytest.raises(ValueError, match="smaller than footprint"):
            _and_program().write_counts(2)

    def test_counts_are_cached_but_isolated(self):
        program = _and_program()
        first = program.write_counts()
        first[0] = 999
        assert program.write_counts()[0] == 1

    def test_sequential_ops_counts_every_instruction(self):
        program = _and_program()
        # 2 loads + 1 gate + 1 read-out.
        assert program.sequential_ops == 4

    def test_write_addresses_with_presets(self):
        program = _and_program()
        assert program.write_addresses() == [0, 1, 2]
        assert program.write_addresses(include_presets=True) == [0, 1, 2, 2]

    def test_totals(self):
        program = _and_program()
        assert program.total_writes == 3
        assert program.total_reads == 3


class TestEvaluation:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_and_program_computes_and(self, a, b):
        outputs, readouts = _and_program().evaluate({"a": a, "b": b})
        assert outputs["z"] == (a & b)
        assert readouts["z"] == [a & b]

    def test_missing_operand_raises(self):
        with pytest.raises(KeyError, match="'b'"):
            _and_program().evaluate({"a": 1})

    def test_operand_too_wide_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            _and_program().evaluate({"a": 2, "b": 0})

    def test_uninitialized_read_raises(self):
        program = LaneProgram(
            "bad", [ReadInstr(0, tag="x", index=0)], footprint=1,
            inputs={}, outputs={},
        )
        with pytest.raises(ValueError, match="uninitialized"):
            program.evaluate({})

    def test_gate_on_uninitialized_bit_raises(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.allocator.alloc()  # allocated but never written
        b_vec = builder.input_vector("b", 1)
        builder.gate(GateOp.AND, a, b_vec[0])
        with pytest.raises(ValueError, match="uninitialized"):
            builder.finish().evaluate({"b": 1})

    def test_external_stream_consumption(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        incoming = builder.receive_vector("stream", 3)
        builder.mark_output("value", incoming)
        outputs, _ = builder.finish().evaluate({}, {"stream": [1, 0, 1]})
        assert outputs["value"] == 0b101

    def test_missing_external_stream_raises(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        builder.receive_vector("stream", 1)
        with pytest.raises(KeyError, match="stream"):
            builder.finish().evaluate({})

    def test_short_external_stream_raises(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        builder.receive_vector("stream", 2)
        with pytest.raises(ValueError, match="needs index 1"):
            builder.finish().evaluate({}, {"stream": [1]})

    def test_const_bits(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        one = builder.const_bit(1)
        zero = builder.const_bit(0)
        builder.mark_output("v", BitVector([zero, one]))
        outputs, _ = builder.finish().evaluate({})
        assert outputs["v"] == 0b10

    def test_const_bit_validation(self):
        with pytest.raises(ValueError):
            ConstBit(2)


class TestBuilder:
    def test_non_native_gate_rejected(self):
        builder = LaneProgramBuilder(NAND_LIBRARY)
        a = builder.input_vector("a", 2)
        with pytest.raises(ValueError, match="not native"):
            builder.gate(GateOp.XOR, a[0], a[1])

    def test_duplicate_operand_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        builder.input_vector("a", 1)
        with pytest.raises(ValueError, match="already declared"):
            builder.input_vector("a", 1)

    def test_duplicate_output_rejected(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        builder.mark_output("z", a)
        with pytest.raises(ValueError, match="already declared"):
            builder.mark_output("z", a)

    def test_copy_bit_costs_depend_on_library(self):
        for library, expected_gates in ((MINIMAL_LIBRARY, 1), (NAND_LIBRARY, 2)):
            builder = LaneProgramBuilder(library)
            a = builder.input_vector("a", 1)
            builder.copy_bit(a[0])
            assert builder.finish().gate_count == expected_gates

    def test_copy_bit_preserves_value(self):
        for library in (MINIMAL_LIBRARY, NAND_LIBRARY):
            builder = LaneProgramBuilder(library)
            a = builder.input_vector("a", 1)
            copied = builder.copy_bit(a[0])
            builder.mark_output("z", BitVector([copied]))
            for value in (0, 1):
                outputs, _ = builder.finish().evaluate({"a": value})
                assert outputs["z"] == value

    def test_gate_into_requires_live_target(self):
        builder = LaneProgramBuilder(MINIMAL_LIBRARY)
        a = builder.input_vector("a", 1)
        with pytest.raises(ValueError, match="not allocated"):
            builder.gate_into(GateOp.COPY, 99, a[0])

    def test_copy_into_lands_on_target(self):
        builder = LaneProgramBuilder(NAND_LIBRARY)
        a = builder.input_vector("a", 1)
        target = builder.allocator.alloc()
        builder.copy_into(a[0], target)
        builder.mark_output("z", BitVector([target]))
        outputs, _ = builder.finish().evaluate({"a": 1})
        assert outputs["z"] == 1

    def test_footprint_validation_on_manual_construction(self):
        with pytest.raises(ValueError, match="outside footprint"):
            LaneProgram(
                "bad", [WriteInstr(5)], footprint=2, inputs={}, outputs={}
            )


class TestConstructionTimeValidation:
    """Malformed programs are rejected when built, not deep in evaluate."""

    def test_negative_operand_index_rejected(self):
        with pytest.raises(ValueError, match="negative operand bit index"):
            OperandBit("a", -1)

    def test_negative_external_index_rejected(self):
        with pytest.raises(ValueError, match="negative external"):
            ExternalBit("t", -1)

    def test_negative_readout_index_rejected(self):
        with pytest.raises(ValueError, match="negative read-out"):
            ReadInstr(0, tag="x", index=-1)

    def test_undeclared_operand_rejected(self):
        with pytest.raises(ValueError, match="undeclared operand 'ghost'"):
            LaneProgram(
                "bad",
                [WriteInstr(0, OperandBit("ghost", 0))],
                footprint=1,
                inputs={},
                outputs={},
            )

    def test_operand_index_beyond_width_rejected(self):
        with pytest.raises(ValueError, match="only 1 bits wide"):
            LaneProgram(
                "bad",
                [
                    WriteInstr(0, OperandBit("a", 0)),
                    WriteInstr(1, OperandBit("a", 3)),
                ],
                footprint=2,
                inputs={"a": (0,)},
                outputs={},
            )

    def test_declared_output_outside_footprint_rejected(self):
        with pytest.raises(ValueError, match="outside footprint"):
            LaneProgram(
                "bad",
                [WriteInstr(0)],
                footprint=1,
                inputs={},
                outputs={"z": (4,)},
            )
