"""Survival math: Kaplan–Meier, replacement rate, SLO provisioning."""

import math

import pytest

from repro.fleet import (
    SurvivalCurve,
    annual_replacement_rate,
    binomial_tail,
    canonical_hash,
    capacity_headroom,
    kaplan_meier,
    required_fleet_size,
)


class TestKaplanMeier:
    def test_no_deaths_flat_curve(self):
        curve = kaplan_meier([-1, -1, -1], horizon_days=10)
        assert curve.days == []
        assert curve.probability_at(10) == 1.0

    def test_all_die_same_day(self):
        curve = kaplan_meier([4, 4], horizon_days=10)
        assert curve.days == [4]
        assert curve.deaths == [2]
        assert curve.at_risk == [2]
        assert curve.survival == [0.0]
        assert curve.probability_at(3) == 1.0
        assert curve.probability_at(4) == 0.0

    def test_staggered_deaths_product_limit(self):
        # 4 arrays: deaths on day 2 and day 5, two survive.
        curve = kaplan_meier([2, 5, -1, -1], horizon_days=7)
        assert curve.days == [2, 5]
        assert curve.at_risk == [4, 3]
        # S(2) = 3/4; S(5) = 3/4 * 2/3 = 1/2.
        assert curve.survival[0] == pytest.approx(0.75)
        assert curve.survival[1] == pytest.approx(0.5)
        # With full follow-up KM equals the empirical survivor function.
        assert curve.probability_at(7) == pytest.approx(2 / 4)

    def test_death_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="beyond the horizon"):
            kaplan_meier([11], horizon_days=10)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([], horizon_days=10)

    def test_curve_hash_is_stable_and_sensitive(self):
        a = kaplan_meier([2, 5, -1, -1], horizon_days=7)
        b = kaplan_meier([2, 5, -1, -1], horizon_days=7)
        c = kaplan_meier([2, 6, -1, -1], horizon_days=7)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()

    def test_to_json_round_trips_through_canonical_hash(self):
        curve = kaplan_meier([1, -1], horizon_days=3)
        assert curve.content_hash() == canonical_hash(curve.to_json())
        assert isinstance(curve, SurvivalCurve)


class TestReplacementRate:
    def test_no_deaths_zero_rate(self):
        assert annual_replacement_rate([-1, -1], 365) == 0.0

    def test_one_death_mid_year(self):
        # One array dies at day 100, one survives 365 days:
        # 1 death over 465 array-days.
        rate = annual_replacement_rate([100, -1], 365)
        assert rate == pytest.approx(1 / 465 * 365)

    def test_day_zero_death_is_clamped(self):
        rate = annual_replacement_rate([0], 365)
        assert math.isfinite(rate)


class TestBinomialTail:
    def test_edge_cases(self):
        assert binomial_tail(10, 0, 0.5) == 1.0
        assert binomial_tail(10, 11, 0.5) == 0.0
        assert binomial_tail(10, 5, 0.0) == 0.0
        assert binomial_tail(10, 5, 1.0) == 1.0

    def test_matches_direct_sum(self):
        n, p = 12, 0.7
        for k in range(n + 1):
            direct = sum(
                math.comb(n, i) * p**i * (1 - p) ** (n - i)
                for i in range(k, n + 1)
            )
            assert binomial_tail(n, k, p) == pytest.approx(direct, abs=1e-12)


class TestProvisioning:
    def test_perfect_survival_needs_exactly_demand(self):
        assert required_fleet_size(10, 1.0, 0.999) == 10

    def test_lossy_survival_needs_headroom(self):
        n = required_fleet_size(10, 0.9, 0.999)
        assert n > 10
        assert binomial_tail(n, 10, 0.9) >= 0.999
        assert binomial_tail(n - 1, 10, 0.9) < 0.999

    def test_zero_demand_needs_nothing(self):
        assert required_fleet_size(0, 0.5, 0.999) == 0

    def test_zero_survival_raises(self):
        with pytest.raises(ValueError, match="zero survival"):
            required_fleet_size(1, 0.0, 0.999)

    def test_headroom_summary(self):
        summary = capacity_headroom(20, 10, 0.9, 0.99)
        assert summary["required_arrays"] >= 10
        assert summary["headroom_arrays"] == 20 - summary["required_arrays"]
        assert summary["meets_slo"] == (summary["headroom_arrays"] >= 0)
        assert 0.0 <= summary["p_meet_demand"] <= 1.0

    def test_headroom_degrades_gracefully_at_zero_survival(self):
        summary = capacity_headroom(20, 10, 0.0, 0.99)
        assert summary["required_arrays"] is None
        assert summary["meets_slo"] is False
        assert summary["p_meet_demand"] == 0.0


class TestCanonicalHash:
    def test_key_order_insensitive(self):
        assert canonical_hash({"a": 1, "b": 2}) == canonical_hash(
            {"b": 2, "a": 1}
        )

    def test_float_repr_exactness(self):
        x = 0.1 + 0.2
        assert canonical_hash({"v": x}) == canonical_hash({"v": x})
        assert canonical_hash({"v": x}) != canonical_hash({"v": 0.3})
