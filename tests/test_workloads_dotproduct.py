"""Tests for repro.workloads.dotproduct."""

import numpy as np
import pytest

from repro.gates.library import NAND_LIBRARY
from repro.workloads.base import evaluate_networked, evaluate_networked_batch
from repro.workloads.dotproduct import DotProduct


class TestRoleGeometry:
    def test_send_rounds_for_n8(self):
        workload = DotProduct(n_elements=8, bits=4)
        assert [workload.send_round(j) for j in (4, 5, 6, 7)] == [1, 1, 1, 1]
        assert [workload.send_round(j) for j in (2, 3)] == [2, 2]
        assert workload.send_round(1) == 3

    def test_root_receives_every_round(self):
        workload = DotProduct(n_elements=16, bits=4)
        assert workload.receive_rounds(0) == 4

    def test_sender_receives_before_sending(self):
        workload = DotProduct(n_elements=8, bits=4)
        assert workload.receive_rounds(1) == 2
        assert workload.receive_rounds(4) == 0

    def test_send_round_rejects_root_and_out_of_range(self):
        workload = DotProduct(n_elements=8, bits=4)
        with pytest.raises(ValueError):
            workload.send_round(0)
        with pytest.raises(ValueError):
            workload.send_round(8)

    def test_partial_width_grows_one_bit_per_round(self):
        workload = DotProduct(n_elements=8, bits=4)
        assert workload.partial_width(0) == 8
        assert workload.partial_width(3) == 11

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            DotProduct(n_elements=6)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("n,bits", [(2, 4), (4, 4), (8, 3)])
    def test_networked_evaluation_computes_dot_product(self, n, bits):
        workload = DotProduct(n_elements=n, bits=bits)
        programs, order = workload.build_functional(NAND_LIBRARY)
        rng = np.random.default_rng(42)
        a = rng.integers(0, 2**bits, size=n)
        b = rng.integers(0, 2**bits, size=n)
        operands = {
            lane: {"a": int(a[lane]), "b": int(b[lane])} for lane in range(n)
        }
        outputs, _ = evaluate_networked(programs, operands, order)
        assert outputs[0]["sum"] == int(np.dot(a, b))

    @pytest.mark.parametrize("n,bits", [(2, 4), (8, 3)])
    def test_batched_network_matches_scalar_per_draw(self, n, bits):
        # The pool carries (N, width) readout matrices; draw d of the
        # batch must equal what the scalar network computes from draw d.
        workload = DotProduct(n_elements=n, bits=bits)
        programs, order = workload.build_functional(NAND_LIBRARY)
        rng = np.random.default_rng(7)
        draws = 13
        a = rng.integers(0, 2**bits, size=(draws, n))
        b = rng.integers(0, 2**bits, size=(draws, n))
        batch_outputs, batch_pool = evaluate_networked_batch(
            programs,
            {
                lane: {
                    "a": [int(v) for v in a[:, lane]],
                    "b": [int(v) for v in b[:, lane]],
                }
                for lane in range(n)
            },
            order,
        )
        for draw in range(draws):
            outputs, pool = evaluate_networked(
                programs,
                {
                    lane: {"a": int(a[draw, lane]), "b": int(b[draw, lane])}
                    for lane in range(n)
                },
                order,
            )
            assert int(batch_outputs[0]["sum"][draw]) == outputs[0]["sum"]
            assert outputs[0]["sum"] == int(np.dot(a[draw], b[draw]))
            for tag, bits_list in pool.items():
                assert batch_pool[tag][draw].tolist() == list(bits_list)

    def test_batched_network_requires_batch_size_source(self):
        workload = DotProduct(n_elements=2, bits=2)
        programs, order = workload.build_functional(NAND_LIBRARY)
        with pytest.raises(ValueError, match="draws"):
            evaluate_networked_batch(programs, {}, order)

    def test_all_zero_and_all_max(self):
        workload = DotProduct(n_elements=4, bits=3)
        programs, order = workload.build_functional(NAND_LIBRARY)
        zeros = {lane: {"a": 0, "b": 0} for lane in range(4)}
        outputs, _ = evaluate_networked(programs, zeros, order)
        assert outputs[0]["sum"] == 0
        maxed = {lane: {"a": 7, "b": 7} for lane in range(4)}
        outputs, _ = evaluate_networked(programs, maxed, order)
        assert outputs[0]["sum"] == 4 * 49


class TestMapping:
    def test_role_count_is_rounds_plus_one(self, small_arch):
        workload = DotProduct(n_elements=64, bits=8)
        mapping = workload.build(small_arch)
        assert len(mapping.distinct_programs()) == 6 + 1

    def test_uses_n_lanes(self, small_arch):
        mapping = DotProduct(n_elements=64, bits=8).build(small_arch)
        assert mapping.active_lane_count == 64

    def test_too_many_elements_rejected(self, tiny_arch):
        with pytest.raises(ValueError, match="exceed"):
            DotProduct(n_elements=128, bits=4).build(tiny_arch)

    def test_root_lane_writes_most(self, small_arch):
        # The root keeps receiving partial sums: the low-lane hot stripe
        # of Fig. 16.
        workload = DotProduct(n_elements=64, bits=8)
        mapping = workload.build(small_arch)
        include = small_arch.presets_output
        per_lane = {
            lane: program.write_counts(include_presets=include).sum()
            for lane, program in mapping.assignment.items()
        }
        assert per_lane[0] == max(per_lane.values())
        assert per_lane[0] > per_lane[63]

    def test_utilization_below_multiplication(self, small_arch):
        # Table 3 ordering: dot-product wastes lanes during the reduction.
        mapping = DotProduct(n_elements=128, bits=8).build(small_arch)
        assert 0.3 < mapping.lane_utilization < 0.95

    def test_paper_scale_utilization(self):
        # Paper Table 3 reports 65.2% for 1024 x 32-bit; ours lands close.
        from repro.array.architecture import default_architecture

        mapping = DotProduct(n_elements=1024, bits=32).build(
            default_architecture()
        )
        assert mapping.lane_utilization == pytest.approx(0.652, abs=0.05)
