"""The sharded parallel day loop: bit-identity under any worker count,
no-death window stepping, shared-memory state, and kill/resume drills.

The headline claim under test: ``fleet_workers`` and ``window`` are pure
execution knobs — for every traffic model and dispatch policy, the final
report hash is bit-identical across serial, parallel (any shard count),
windowed, and killed-then-resumed-elsewhere executions.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ResultStore
from repro.fleet import (
    CohortSpec,
    FleetService,
    FleetSpec,
    PopulationSpec,
    ShardPlan,
    TrafficSpec,
    no_death_window,
)
from repro.fleet.parallel import MAX_WINDOW, CampaignSharedMemory
from repro.telemetry import capture


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One calibration store for the module: every campaign here shares
    cohort geometry and seed, so calibration simulates exactly once."""
    return ResultStore(tmp_path_factory.mktemp("fleet-parallel-store"))


def fleet_spec(**overrides):
    """A 12-array PCM fleet tuned so deaths happen mid-campaign."""
    defaults = dict(
        population=PopulationSpec(
            n_arrays=12,
            technology_mix=(("PCM", 1.0),),
            cohorts=(CohortSpec("add"), CohortSpec("conv")),
            endurance_sigma=0.5,
        ),
        traffic=TrafficSpec(model="poisson", rate=8e5),
        days=25,
        seed=3,
        rows=128,
        cols=128,
        cohort_iterations=200,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestShardPlan:
    def test_contiguous_balanced_cover(self):
        plan = ShardPlan.build(10, 3)
        assert plan.bounds == ((0, 4), (4, 7), (7, 10))
        assert plan.n_shards == 3

    def test_workers_capped_at_arrays(self):
        plan = ShardPlan.build(2, 8)
        assert plan.bounds == ((0, 1), (1, 2))
        assert plan.n_shards == 2

    def test_single_shard(self):
        assert ShardPlan.build(5, 1).bounds == ((0, 5),)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan.build(0, 2)
        with pytest.raises(ValueError):
            ShardPlan.build(4, 0)

    @given(n=st.integers(1, 200), workers=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, n, workers):
        plan = ShardPlan.build(n, workers)
        bounds = plan.bounds
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        sizes = [hi - lo for lo, hi in bounds]
        assert all(
            bounds[i][1] == bounds[i + 1][0] for i in range(len(bounds) - 1)
        )
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n


class TestNoDeathWindow:
    def test_bound_counts_full_safe_days(self):
        thresholds = np.array([100.0, 1000.0])
        cumulative = np.array([0.0, 0.0])
        death_day = np.array([-1, -1], dtype=np.int64)
        per_day = np.array([10.0, 10.0])
        # The nearer array has ~10 safe days (margin shaves none here).
        bound = no_death_window(
            thresholds, cumulative, death_day, per_day, 365
        )
        assert bound == 9  # floor((100 * (1 - 1e-6)) / 10) = 9

    def test_imminent_death_gives_zero(self):
        bound = no_death_window(
            np.array([10.0]),
            np.array([9.5]),
            np.array([-1], dtype=np.int64),
            np.array([10.0]),
            365,
        )
        assert bound == 0

    def test_dead_arrays_are_ignored(self):
        # One dead array at the brink must not shrink the bound.
        bound = no_death_window(
            np.array([10.0, 1e9]),
            np.array([9.9, 0.0]),
            np.array([4, -1], dtype=np.int64),
            np.array([10.0, 1.0]),
            50,
        )
        assert bound == 50

    def test_everything_dead_spans_horizon(self):
        bound = no_death_window(
            np.array([10.0]),
            np.array([20.0]),
            np.array([2], dtype=np.int64),
            np.array([10.0]),
            123,
        )
        assert bound == 123

    def test_zero_rate_arrays_never_cross(self):
        bound = no_death_window(
            np.array([10.0]),
            np.array([0.0]),
            np.array([-1], dtype=np.int64),
            np.array([0.0]),
            7,
        )
        assert bound == 7

    def test_clipped_to_horizon_and_cap(self):
        thresholds = np.array([1e18])
        args = (
            thresholds,
            np.array([0.0]),
            np.array([-1], dtype=np.int64),
            np.array([1.0]),
        )
        assert no_death_window(*args, 10) == 10
        assert no_death_window(*args, 10**9) == MAX_WINDOW
        assert no_death_window(*args, 0) == 0


class TestCampaignSharedMemory:
    def test_attach_sees_owner_writes(self):
        owner = CampaignSharedMemory(6, 2)
        try:
            owner.cumulative[:] = np.arange(6, dtype=float)
            owner.death_day[:] = -1
            owner.scratch[1, :3] = 7.5
            attached = CampaignSharedMemory(6, 2, name=owner.name)
            assert attached.cumulative.tolist() == list(range(6))
            assert attached.scratch[1, :3].tolist() == [7.5] * 3
            attached.cumulative[0] = 42.0
            assert owner.cumulative[0] == 42.0
            attached.close()
        finally:
            owner.close()


class TestExecutionKnobIdentity:
    """The acceptance matrix: all traffic models x both dispatches."""

    @pytest.mark.parametrize("model", ["deterministic", "poisson", "bursty"])
    @pytest.mark.parametrize("dispatch", ["even", "least_worn"])
    def test_hash_identical_across_workers_and_window(
        self, model, dispatch, store
    ):
        spec = fleet_spec(
            traffic=TrafficSpec(model=model, rate=8e5), dispatch=dispatch
        )
        reports = {
            label: FleetService(
                dataclasses.replace(
                    spec, fleet_workers=workers, window=window
                ),
                store=store,
            ).run()
            for label, workers, window in [
                ("serial", 1, 0),
                ("parallel", 3, 0),
                ("windowed", 1, 8),
                ("both", 2, 8),
            ]
        }
        hashes = {label: r.content_hash() for label, r in reports.items()}
        assert len(set(hashes.values())) == 1, hashes
        # The matrix is only meaningful if the campaign exercises the
        # crossing machinery: every array dies mid-horizon here.
        assert reports["serial"].n_deaths == 12
        assert reports["parallel"].runtime["shards"] == 3
        assert reports["parallel"].runtime["fleet_workers"] == 3
        assert len(reports["parallel"].runtime["worker_timers"]) == 3
        assert reports["windowed"].runtime["windows"] >= 1
        assert reports["windowed"].runtime["window_days"] >= 2

    def test_single_array_fleet_stays_serial_and_identical(self, store):
        spec = fleet_spec(
            population=PopulationSpec(
                n_arrays=1,
                technology_mix=(("PCM", 1.0),),
                cohorts=(CohortSpec("add"),),
            ),
            traffic=TrafficSpec(model="deterministic", rate=5e5),
            days=10,
        )
        serial = FleetService(spec, store=store).run()
        parallel = FleetService(
            dataclasses.replace(spec, fleet_workers=4), store=store
        ).run()
        assert serial.content_hash() == parallel.content_hash()
        assert parallel.runtime["shards"] == 1


class TestShardInvarianceProperty:
    @given(
        n_arrays=st.integers(2, 10),
        sigma=st.sampled_from([0.0, 0.3, 0.5]),
        model=st.sampled_from(["deterministic", "poisson", "bursty"]),
        dispatch=st.sampled_from(["even", "least_worn"]),
        rate=st.sampled_from([2e5, 8e5]),
        days=st.integers(3, 12),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_specs_hash_identically_for_1_2_4_workers(
        self, store, n_arrays, sigma, model, dispatch, rate, days
    ):
        # seed/rows/cohorts stay fixed so calibration is one cache hit;
        # everything the day loop consumes varies.
        base = dict(
            population=PopulationSpec(
                n_arrays=n_arrays,
                technology_mix=(("PCM", 1.0),),
                cohorts=(CohortSpec("add"), CohortSpec("conv")),
                endurance_sigma=sigma,
            ),
            traffic=TrafficSpec(model=model, rate=rate),
            days=days,
            seed=3,
            rows=128,
            cols=128,
            cohort_iterations=200,
            dispatch=dispatch,
        )
        hashes = {
            workers: FleetService(
                FleetSpec(**base, fleet_workers=workers), store=store
            )
            .run()
            .content_hash()
            for workers in (1, 2, 4)
        }
        assert len(set(hashes.values())) == 1, hashes


class TestParallelKillResume:
    def test_resume_under_different_worker_count_and_window(
        self, store, tmp_path
    ):
        spec = fleet_spec()
        uninterrupted = FleetService(spec, store=store).run()

        ckpt = str(tmp_path / "ckpt")
        paused = FleetService(
            dataclasses.replace(spec, fleet_workers=3),
            store=store,
            checkpoint_dir=ckpt,
            checkpoint_every=4,
        ).run(stop_after_day=8)
        assert paused is None

        resumed = FleetService(
            dataclasses.replace(spec, fleet_workers=2, window=6),
            store=store,
            checkpoint_dir=ckpt,
        ).run()
        assert resumed.runtime["resumed_from_day"] == 8
        assert resumed.content_hash() == uninterrupted.content_hash()

    def test_windowed_checkpoints_land_on_the_same_days(
        self, store, tmp_path
    ):
        spec = fleet_spec(
            traffic=TrafficSpec(model="deterministic", rate=8e5)
        )
        serial_dir = tmp_path / "serial"
        window_dir = tmp_path / "window"
        FleetService(
            spec,
            store=store,
            checkpoint_dir=str(serial_dir),
            checkpoint_every=5,
        ).run()
        FleetService(
            dataclasses.replace(spec, window=10),
            store=store,
            checkpoint_dir=str(window_dir),
            checkpoint_every=5,
        ).run()
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        window_files = sorted(p.name for p in window_dir.iterdir())
        assert serial_files == window_files
        assert serial_files  # the cadence actually wrote checkpoints


class TestWindowTelemetry:
    def test_window_events_replace_day_events_inside_windows(self, store):
        spec = fleet_spec(
            traffic=TrafficSpec(model="deterministic", rate=8e5),
            window=10,
        )
        with capture() as sink:
            report = FleetService(spec, store=store).run()
        windows = sink.of("fleet_window")
        days = sink.of("fleet_day")
        assert windows, "windowed campaign emitted no fleet_window events"
        covered = sum(event["days"] for event in windows)
        assert covered == report.runtime["window_days"]
        assert covered + len(days) == spec.days
        for event in windows:
            assert event["days"] >= 2
            assert {"day", "alive", "served"} <= event.keys()

    def test_counters_event_carries_fleet_counters(self, store):
        with capture() as sink:
            FleetService(fleet_spec(), store=store).run()
        [counters] = sink.of("counters")[-1:]
        assert counters["counters"]["fleet.days"] >= 25


class TestSpecValidation:
    def test_bad_fleet_workers_rejected(self):
        with pytest.raises(ValueError, match="fleet_workers"):
            fleet_spec(fleet_workers=0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            fleet_spec(window=-1)

    def test_execution_knobs_stay_out_of_the_identity(self):
        plain = fleet_spec()
        tuned = fleet_spec(fleet_workers=8, window=50)
        assert plain.content_hash == tuned.content_hash
        assert "fleet_workers" not in plain.identity()
        assert "window" not in plain.identity()
