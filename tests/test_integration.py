"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import (
    BalanceConfig,
    Convolution,
    DotProduct,
    EnduranceSimulator,
    ParallelMultiplication,
    default_architecture,
    lifetime_from_result,
    lifetime_improvement,
)
from repro.core.sweep import configuration_grid


@pytest.fixture(scope="module")
def arch():
    return default_architecture(256, 256)


@pytest.fixture(scope="module")
def sim(arch):
    return EnduranceSimulator(arch, seed=2024)


class TestPaperStructure:
    """The qualitative findings of Section 5 must hold end-to-end."""

    def test_multiplication_gains_nothing_from_between_lane_balancing(
        self, sim
    ):
        # Fig. 17a: "St x Ra and St x Bs do not provide any benefit" —
        # the multiply uses every lane identically.
        workload = ParallelMultiplication(bits=16)
        base = sim.run(workload, BalanceConfig(), iterations=1000)
        for label in ("StxRa", "StxBs"):
            result = sim.run(
                workload, BalanceConfig.from_label(label), iterations=1000
            )
            assert lifetime_improvement(result, base) == pytest.approx(1.0)

    def test_multiplication_gains_from_within_lane_balancing(self, sim):
        # Gains are modest (the ring workspace is already fairly level —
        # footnote 6: idealized re-mapping "cannot be of much help"), but
        # with frequent recompiles they are consistently positive.
        workload = ParallelMultiplication(bits=16)
        base = sim.run(workload, BalanceConfig(), iterations=1000)
        result = sim.run(
            workload,
            BalanceConfig.from_label("RaxSt").with_interval(10),
            iterations=1000,
        )
        assert lifetime_improvement(result, base) > 1.03
        hardware = sim.run(
            workload, BalanceConfig(hardware=True), iterations=1000
        )
        assert lifetime_improvement(hardware, base) > 1.0

    def test_convolution_byte_shift_between_lanes_useless(self, sim):
        # Fig. 17b: "St x Bs provides no benefit: shifting columns by an
        # integer number of bytes re-maps write-heavy columns to other
        # write-heavy columns" (the hot stripe has period 4; 8 % 4 == 0).
        workload = Convolution(bits=4)
        base = sim.run(workload, BalanceConfig(), iterations=1000)
        byte_shift = sim.run(
            workload, BalanceConfig.from_label("StxBs"), iterations=1000
        )
        random = sim.run(
            workload, BalanceConfig.from_label("StxRa"), iterations=1000
        )
        assert lifetime_improvement(byte_shift, base) == pytest.approx(1.0)
        assert lifetime_improvement(random, base) > 1.05

    def test_dot_product_benefits_in_both_dimensions(self, sim):
        # Fig. 17c: dot-product improves from both row and column
        # strategies (it is imbalanced in both).
        workload = DotProduct(n_elements=256, bits=16)
        base = sim.run(workload, BalanceConfig(), iterations=1000)
        between_only = sim.run(
            workload, BalanceConfig.from_label("StxRa"), iterations=1000
        )
        both = sim.run(
            workload, BalanceConfig.from_label("RaxRa"), iterations=1000
        )
        assert lifetime_improvement(between_only, base) > 1.1
        assert lifetime_improvement(both, base) >= lifetime_improvement(
            between_only, base
        )

    def test_utilization_ordering_matches_table3(self, arch):
        # Table 3: mult 100% > conv ~85% > dot ~65%.
        mult = ParallelMultiplication(bits=16).build(arch).lane_utilization
        conv = Convolution(bits=8).build(arch).lane_utilization
        dot = DotProduct(n_elements=256, bits=16).build(arch).lane_utilization
        assert mult == pytest.approx(1.0)
        assert mult > conv > dot

    def test_dot_product_low_lane_hot_stripe(self, sim):
        # Fig. 16: "dot-product heavily uses columns at low addresses".
        workload = DotProduct(n_elements=256, bits=16)
        result = sim.run(workload, BalanceConfig(), iterations=100)
        lane_profile = result.write_distribution.lane_profile()
        assert lane_profile[0] == lane_profile.max()
        assert lane_profile[:8].mean() > lane_profile[128:136].mean()

    def test_convolution_every_fourth_column_hot(self, sim):
        workload = Convolution(bits=4)
        result = sim.run(workload, BalanceConfig(), iterations=100)
        lane_profile = result.write_distribution.lane_profile()
        leaders = lane_profile[::4]
        members = np.concatenate(
            [lane_profile[1::4], lane_profile[2::4], lane_profile[3::4]]
        )
        assert leaders.min() > members.max()


class TestLifetimeRealism:
    def test_static_lifetime_below_eq2_upper_bound(self, sim):
        # Eq. 2 is a perfect-balance bound; a real (static) run must come
        # in below it, and in the same order of magnitude.
        from repro.core.lifetime import eq2_seconds_until_total_failure

        workload = ParallelMultiplication(bits=16)
        result = sim.run(workload, BalanceConfig(), iterations=2000)
        estimate = lifetime_from_result(result)
        bound = eq2_seconds_until_total_failure(
            result.architecture.geometry,
            result.architecture.technology.endurance_writes,
            result.architecture.lane_count,
        )
        assert estimate.seconds_to_failure < bound
        assert estimate.seconds_to_failure > bound / 20

    def test_grid_is_reproducible(self, arch):
        workload = ParallelMultiplication(bits=16)
        configs = [BalanceConfig.from_label(l) for l in ("StxSt", "RaxRa")]
        grid1 = configuration_grid(
            EnduranceSimulator(arch, seed=3), workload, 500, configs=configs
        )
        grid2 = configuration_grid(
            EnduranceSimulator(arch, seed=3), workload, 500, configs=configs
        )
        for a, b in zip(grid1, grid2):
            assert a.improvement == pytest.approx(b.improvement)
