"""repro.telemetry: registry, sinks, trace schema, and instrumentation."""

import io
import json
import logging
import threading

import pytest

from repro.balance.config import BalanceConfig
from repro.core.simulator import EnduranceSimulator
from repro.telemetry import (
    CaptureSink,
    JsonlSink,
    LoggingSink,
    ProgressSink,
    Telemetry,
    TraceSchemaError,
    capture,
    format_stats,
    get_telemetry,
    iter_trace,
    set_telemetry,
    summarize_trace,
    validate_record,
)
from repro.workloads.multiply import ParallelMultiplication


@pytest.fixture
def tele():
    """A fresh, isolated registry installed as the process default."""
    fresh = Telemetry()
    previous = set_telemetry(fresh)
    try:
        yield fresh
    finally:
        set_telemetry(previous)


class TestAggregates:
    def test_counters_accumulate(self, tele):
        tele.count("x")
        tele.count("x", 4)
        assert tele.counters["x"] == 5

    def test_gauges_keep_last_value(self, tele):
        tele.gauge("g", 1.0)
        tele.gauge("g", 2.5)
        assert tele.gauges["g"] == 2.5

    def test_snapshot_is_json_able_and_detached(self, tele):
        tele.count("a", 2)
        tele.gauge("b", 3.0)
        with tele.timed_phase("p"):
            pass
        snap = tele.snapshot()
        json.dumps(snap)
        assert snap["counters"]["a"] == 2
        assert snap["phases"]["p"]["calls"] == 1
        tele.count("a")
        assert snap["counters"]["a"] == 2  # copy, not a view

    def test_reset_zeroes_everything_but_keeps_sinks(self, tele):
        sink = tele.add_sink(CaptureSink())
        tele.count("a")
        tele.reset()
        assert tele.counters == {}
        assert sink in tele.sinks

    def test_counts_are_thread_safe(self, tele):
        def bump():
            for _ in range(1000):
                tele.count("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tele.counters["n"] == 4000


class TestPhases:
    def test_nested_phases_record_dotted_paths(self, tele):
        with tele.timed_phase("outer"):
            with tele.timed_phase("inner"):
                pass
        assert set(tele.phases) == {"outer", "outer.inner"}

    def test_phase_events_emitted_with_fields(self, tele):
        sink = tele.add_sink(CaptureSink())
        with tele.timed_phase("work", workload="mult"):
            pass
        (record,) = sink.of("phase")
        assert record["name"] == "work"
        assert record["workload"] == "mult"
        assert record["seconds"] >= 0

    def test_span_decorator_times_calls(self, tele):
        @tele.span("analysis")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f(2) == 3
        assert tele.phases["analysis"][1] == 2

    def test_span_defaults_to_function_name(self, tele):
        @tele.span()
        def compute():
            return 7

        assert compute() == 7
        assert "compute" in tele.phases


class TestEventBus:
    def test_emit_without_sinks_is_a_no_op(self, tele):
        assert not tele.enabled
        tele.emit("anything", x=1)  # must not raise or allocate records

    def test_capture_attaches_and_detaches(self, tele):
        with capture() as sink:
            get_telemetry().emit("ping", n=1)
        assert sink.of("ping")[0]["n"] == 1
        assert not tele.sinks

    def test_emit_fans_out_to_every_sink(self, tele):
        first, second = CaptureSink(), CaptureSink()
        tele.add_sink(first)
        tele.add_sink(second)
        tele.emit("e")
        assert len(first.records) == len(second.records) == 1

    def test_remove_missing_sink_is_ignored(self, tele):
        tele.remove_sink(CaptureSink())


class TestSinks:
    def test_jsonl_round_trips_through_iter_trace(self, tele, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = tele.add_sink(JsonlSink(str(path)))
        tele.emit("phase", name="p", seconds=0.25)
        tele.emit("custom", anything="goes")
        sink.close()
        records = list(iter_trace(str(path)))
        assert [r["event"] for r in records] == ["phase", "custom"]
        assert records[0]["seconds"] == 0.25

    def test_jsonl_stringifies_non_json_fields(self, tele, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = tele.add_sink(JsonlSink(str(path)))
        tele.emit("odd", payload=object())
        sink.close()
        (record,) = list(iter_trace(str(path)))
        assert "object" in record["payload"]

    def test_logging_sink_bridges_to_stdlib(self, tele, caplog):
        tele.add_sink(LoggingSink(level=logging.INFO))
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            tele.emit("phase", name="p", seconds=0.1)
        assert "phase" in caplog.text
        assert "name=p" in caplog.text

    def test_progress_sink_formats_known_events(self, tele):
        stream = io.StringIO()
        tele.add_sink(ProgressSink(stream=stream))
        tele.emit("phase", name="kernel", seconds=0.5)
        tele.emit("grid_progress", done=3, total=18, label="RaxRa")
        tele.emit("unknown_event", x=1)
        text = stream.getvalue()
        assert "[phase] kernel" in text
        assert "[grid] 3/18 RaxRa" in text
        assert "unknown_event" not in text


class TestTraceSchema:
    def test_unknown_events_are_legal(self):
        validate_record({"ts": 1.0, "event": "novel", "extra": True})

    def test_missing_ts_rejected(self):
        with pytest.raises(TraceSchemaError, match="ts"):
            validate_record({"event": "phase", "name": "p", "seconds": 1})

    def test_known_event_missing_field_rejected_with_line(self):
        with pytest.raises(TraceSchemaError, match="line 7"):
            validate_record({"ts": 1.0, "event": "phase"}, line_number=7)

    def test_iter_trace_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "event": "ok"}\nnot json\n')
        with pytest.raises(TraceSchemaError, match="line 2"):
            list(iter_trace(str(path)))

    def test_iter_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ts": 1.0, "event": "ok"}\n\n')
        assert len(list(iter_trace(str(path)))) == 1


class TestSummaries:
    def test_summarize_counts_everything(self):
        records = [
            {"ts": 1.0, "event": "phase", "name": "kernel", "seconds": 0.5},
            {"ts": 1.5, "event": "phase", "name": "kernel", "seconds": 0.5},
            {"ts": 2.0, "event": "job_end", "label": "a", "status": "completed",
             "wall_s": 1.0, "attempts": 2},
            {"ts": 2.5, "event": "job_end", "label": "b", "status": "cached",
             "wall_s": 0.0, "attempts": 0},
            {"ts": 3.0, "event": "job_retry", "label": "a", "attempt": 2},
            {"ts": 3.5, "event": "job_timeout", "label": "c", "timeout_s": 1},
            {"ts": 4.0, "event": "simulation", "workload": "m", "config": "St",
             "iterations": 100, "epochs": 1, "kernel": "batched",
             "seconds": 0.1},
        ]
        summary = summarize_trace(records)
        assert summary["records"] == 7
        assert summary["span_s"] == 3.0
        assert summary["phases"]["kernel"]["calls"] == 2
        assert summary["phases"]["kernel"]["total_s"] == 1.0
        assert summary["jobs"]["by_status"] == {"cached": 1, "completed": 1}
        assert summary["cache"] == {"hits": 1, "misses": 1}
        assert summary["retries"] == 1
        assert summary["timeouts"] == 1
        assert summary["simulations"]["iterations"] == 100

    def test_summarize_accepts_a_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ts": 1.0, "event": "x"}\n')
        assert summarize_trace(str(path))["records"] == 1

    def test_format_stats_renders_sections(self):
        summary = summarize_trace(
            [{"ts": 1.0, "event": "phase", "name": "p", "seconds": 0.1}]
        )
        text = format_stats(summary)
        assert "1 record(s)" in text
        assert "phases:" in text

    def test_summarize_folds_windows_into_fleet_days(self):
        records = [
            {"ts": 1.0, "event": "fleet_day", "day": 1, "alive": 4,
             "served": 10},
            {"ts": 2.0, "event": "fleet_window", "day": 9, "days": 8,
             "alive": 4, "served": 80},
            {"ts": 3.0, "event": "fleet_window", "day": 15, "days": 6,
             "alive": 3, "served": 55},
            {"ts": 4.0, "event": "fleet_checkpoint", "day": 15},
        ]
        summary = summarize_trace(records)
        assert summary["fleet"] == {
            "days": 15,
            "checkpoints": 1,
            "windows": 2,
        }

    def test_summarize_merges_counters_last_write_wins(self):
        records = [
            {"ts": 1.0, "event": "counters",
             "counters": {"fleet.days": 10, "backend.pool.hits": 3}},
            {"ts": 2.0, "event": "counters",
             "counters": {"fleet.days": 25}},
        ]
        summary = summarize_trace(records)
        assert summary["counters"] == {
            "backend.pool.hits": 3,
            "fleet.days": 25,
        }

    def test_format_stats_renders_windows_and_counters(self):
        summary = summarize_trace(
            [
                {"ts": 1.0, "event": "fleet_window", "day": 8, "days": 8,
                 "alive": 2, "served": 16},
                {"ts": 2.0, "event": "counters",
                 "counters": {"fleet.windows": 1, "backend.pool.hits": 7}},
            ]
        )
        text = format_stats(summary)
        assert "fleet: 8 virtual day(s), 0 checkpoint(s), 1 window(s)" in text
        assert "counters:" in text
        assert "backend.pool.hits" in text
        assert "fleet.windows" in text

    def test_summarize_censuses_diagnostic_codes(self):
        records = [
            {"ts": 1.0, "event": "verify_report",
             "codes": ["RPR014", "RPR012", "RPR012"], "errors": 3,
             "warnings": 0, "total": 3},
            {"ts": 2.0, "event": "job_rejected", "label": "j",
             "errors": 1, "codes": ["RPR011"]},
        ]
        summary = summarize_trace(records)
        assert summary["diagnostics"] == {
            "RPR011": 1,
            "RPR012": 2,
            "RPR014": 1,
        }

    def test_format_stats_renders_diagnostics_section(self):
        summary = summarize_trace(
            [
                {"ts": 1.0, "event": "verify_report",
                 "codes": ["RPR013", "RPR013"], "errors": 2,
                 "warnings": 0, "total": 2},
            ]
        )
        text = format_stats(summary)
        assert "diagnostics:" in text
        assert "RPR013" in text

    def test_no_diagnostics_section_without_findings(self):
        summary = summarize_trace(
            [{"ts": 1.0, "event": "phase", "name": "p", "seconds": 0.1}]
        )
        assert summary["diagnostics"] == {}
        assert "diagnostics:" not in format_stats(summary)


class TestSimulatorInstrumentation:
    def test_run_emits_simulation_event_and_counts(self, tiny_arch):
        fresh = Telemetry()
        previous = set_telemetry(fresh)
        try:
            sim = EnduranceSimulator(tiny_arch)
            with capture() as sink:
                sim.run(
                    ParallelMultiplication(bits=8), BalanceConfig(),
                    iterations=100,
                )
            (event,) = sink.of("simulation")
            assert event["iterations"] == 100
            assert event["kernel"] == "batched"
            assert event["writes"] > 0
            assert sink.of("phase")  # mapping_compile and kernel spans
            assert fresh.counters["sim.runs"] == 1
            assert fresh.counters["sim.iterations"] == 100
            assert fresh.counters["kernel.chunks"] >= 1
            assert fresh.counters["kernel.gemms"] >= 1
        finally:
            set_telemetry(previous)
