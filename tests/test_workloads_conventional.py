"""Tests for repro.workloads.conventional."""

import pytest

from repro.workloads.conventional import ConventionalBaseline
from repro.workloads.convolution import Convolution
from repro.workloads.dotproduct import DotProduct
from repro.workloads.multiply import ParallelMultiplication


class TestTraffic:
    def test_multiplication_is_2b_reads_2b_writes(self):
        baseline = ConventionalBaseline()
        counts = baseline.traffic_multiplication(ParallelMultiplication(bits=32))
        assert counts.cell_reads == 64
        assert counts.cell_writes == 64
        assert counts.gates == 0

    def test_multiplication_scales_with_lanes(self):
        baseline = ConventionalBaseline()
        counts = baseline.traffic_multiplication(
            ParallelMultiplication(bits=32), lanes=10
        )
        assert counts.cell_writes == 640

    def test_dot_product_reads_all_operands(self):
        baseline = ConventionalBaseline()
        workload = DotProduct(n_elements=1024, bits=32)
        counts = baseline.traffic_dot_product(workload)
        assert counts.cell_reads == 2 * 1024 * 32
        assert counts.cell_writes == 64 + 10

    def test_convolution_writes_one_bit(self):
        baseline = ConventionalBaseline()
        counts = baseline.traffic_convolution(Convolution())
        assert counts.cell_writes == 1

    def test_dispatch(self):
        baseline = ConventionalBaseline()
        assert baseline.traffic(ParallelMultiplication(bits=8)).cell_reads == 16
        with pytest.raises(TypeError):
            baseline.traffic(object())


class TestWriteRatio:
    def test_multiplication_ratio_exceeds_150x(self):
        from repro.array.architecture import default_architecture

        workload = ParallelMultiplication(bits=32)
        mapping = workload.build(default_architecture(256, 64))
        ratio = ConventionalBaseline().write_ratio(mapping, workload)
        # With CRAM pre-sets the blow-up is even larger than the paper's
        # preset-free 153.5x.
        assert ratio > 150

    def test_ratio_without_presets_matches_section31(self):
        from repro.array.architecture import PINATUBO

        workload = ParallelMultiplication(bits=32)
        mapping = workload.build(PINATUBO.resized(256, 64))
        ratio = ConventionalBaseline().write_ratio(mapping, workload)
        # 9,824 gate writes + 64 loads per lane over 64 conventional writes.
        assert ratio == pytest.approx((9824 + 64) / 64, rel=1e-6)

    def test_convolution_ratio_enormous(self, small_arch):
        workload = Convolution(bits=4)
        mapping = workload.build(small_arch)
        ratio = ConventionalBaseline().write_ratio(mapping, workload)
        assert ratio > 1000  # conventional writes a single output bit
