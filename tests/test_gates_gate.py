"""Tests for repro.gates.gate."""

import pytest

from repro.gates.gate import Gate
from repro.gates.ops import GateOp


class TestConstruction:
    def test_reads_and_writes(self):
        gate = Gate(GateOp.NAND, (0, 1), 2)
        assert gate.reads == 2
        assert gate.writes == 1

    def test_not_gate_reads_once(self):
        assert Gate(GateOp.NOT, (5,), 6).reads == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="takes 2 inputs"):
            Gate(GateOp.AND, (0,), 1)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateOp.NOT, (-1,), 0)

    def test_output_overlapping_input_rejected(self):
        # The surveyed architectures write the output cell while/after
        # reading inputs; in-place gates are not part of the model.
        with pytest.raises(ValueError, match="must differ"):
            Gate(GateOp.AND, (0, 1), 1)

    def test_gates_are_hashable_and_comparable(self):
        assert Gate(GateOp.AND, (0, 1), 2) == Gate(GateOp.AND, (0, 1), 2)
        assert len({Gate(GateOp.AND, (0, 1), 2)} | {Gate(GateOp.AND, (0, 1), 2)}) == 1


class TestEvaluate:
    def test_evaluate_routes_to_truth_table(self):
        gate = Gate(GateOp.XOR, (0, 1), 2)
        assert gate.evaluate((1, 0)) == 1
        assert gate.evaluate((1, 1)) == 0


class TestRemapped:
    def test_remapped_applies_mapping_everywhere(self):
        gate = Gate(GateOp.NAND, (0, 1), 2)
        shifted = gate.remapped(lambda a: a + 10)
        assert shifted.inputs == (10, 11)
        assert shifted.output == 12
        assert shifted.op is GateOp.NAND

    def test_remapped_preserves_original(self):
        gate = Gate(GateOp.NOT, (3,), 4)
        gate.remapped(lambda a: a * 2)
        assert gate.inputs == (3,)
