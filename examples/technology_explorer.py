"""Technology explorer: endurance economics across MRAM, RRAM and PCM.

Answers the paper's central question quantitatively: given a workload's
wear pattern, how long does each nonvolatile technology last? Includes the
analytic bounds (Eqs. 1-2), the simulated Eq. 4 lifetimes per technology,
and the effect of per-cell endurance variation (lognormal spread).

Run:
    python examples/technology_explorer.py
"""

from repro import (
    BalanceConfig,
    EnduranceSimulator,
    MRAM,
    PCM,
    RRAM,
    ParallelMultiplication,
    default_architecture,
    eq1_operations_until_total_failure,
    eq2_seconds_until_total_failure,
    lifetime_from_result,
    technology_sweep,
)
from repro.core.report import format_lifetimes, format_table
from repro.devices.endurance import LognormalEndurance

ITERATIONS = 1_000


def main() -> None:
    architecture = default_architecture()
    geometry = architecture.geometry

    print("Analytic perfect-balance bounds (Section 3.1):")
    for tech in (MRAM, RRAM, PCM):
        eq1 = eq1_operations_until_total_failure(
            geometry, tech.endurance_writes, 9824
        )
        eq2 = eq2_seconds_until_total_failure(
            geometry, tech.endurance_writes, geometry.cols
        )
        print(f"  {tech.name:5s} (E={tech.endurance_writes:.0e}): "
              f"{eq1:.2e} multiplications, total failure in "
              f"{eq2 / 86400:.3f} days")

    print("\nSimulated first-cell-failure lifetimes (Eq. 4, static layout):")
    simulator = EnduranceSimulator(architecture, seed=7)
    result = simulator.run(
        ParallelMultiplication(bits=32), BalanceConfig(),
        iterations=ITERATIONS, track_reads=False,
    )
    print(format_lifetimes(technology_sweep(result, [MRAM, RRAM, PCM])))

    print("\nPer-cell endurance variation (lognormal spread around 1e12):")
    rows = []
    for sigma in (0.0, 0.3, 0.6):
        model = LognormalEndurance(MRAM.endurance_writes, sigma=sigma, rng=0)
        estimate = lifetime_from_result(result, endurance_model=model)
        rows.append((f"{sigma:.1f}", f"{estimate.days_to_failure:.2f}"))
    print(format_table(["sigma", "days to first failure"], rows))

    print("\nConclusion (paper Section 7): even the best technology of "
          "today falls short of multi-year PIM lifetimes; RRAM/PCM burn "
          "out in minutes to hours.")


if __name__ == "__main__":
    main()
