"""Quickstart: simulate PIM wear and estimate array lifetime.

Runs the paper's headline workload — embarrassingly parallel 32-bit
multiplication on a 1024x1024 column-parallel NVPIM array — under no load
balancing and under the best-performing strategy, then prints the write
distributions and Eq. 4 lifetime estimates.

Run:
    python examples/quickstart.py
"""

from repro import (
    BalanceConfig,
    EnduranceSimulator,
    ParallelMultiplication,
    default_architecture,
    lifetime_from_result,
    lifetime_improvement,
)

ITERATIONS = 2_000


def main() -> None:
    architecture = default_architecture()  # 1024x1024, CRAM-style, MTJ 1e12
    simulator = EnduranceSimulator(architecture, seed=42)
    workload = ParallelMultiplication(bits=32)

    print(f"architecture: {architecture.name}, "
          f"{architecture.geometry.rows}x{architecture.geometry.cols}, "
          f"{architecture.technology.name} "
          f"(endurance {architecture.technology.endurance_writes:.0e})")
    print(f"workload: {workload.describe()}\n")

    baseline = simulator.run(workload, BalanceConfig(), iterations=ITERATIONS)
    balanced = simulator.run(
        workload,
        BalanceConfig.from_label("RaxSt+Hw").with_interval(50),
        iterations=ITERATIONS,
    )

    for result in (baseline, balanced):
        distribution = result.write_distribution
        estimate = lifetime_from_result(result)
        print(f"--- {result.config.label} ---")
        print(distribution.summary())
        print(f"lifetime (Eq. 4): {estimate.days_to_failure:.2f} days "
              f"({estimate.iterations_to_failure:.3e} iterations)")
        print()

    print(f"lifetime improvement from load balancing: "
          f"{lifetime_improvement(balanced, baseline):.2f}x")
    print("\nwear heatmap under RaxSt+Hw (darker = hotter):")
    print(balanced.write_distribution.ascii_heatmap(blocks=(16, 64)))


if __name__ == "__main__":
    main()
