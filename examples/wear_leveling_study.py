"""Wear-leveling study: the full 18-configuration grid for one workload.

Reproduces the Figs. 14-17 methodology on a workload of your choice:
simulates every combination of within-lane / between-lane software
strategy (St/Ra/Bs) with hardware re-mapping on or off, prints the
distribution statistics, the Fig. 17-style improvement chart, and the
recompile-frequency trade-off of Section 5.

Run:
    python examples/wear_leveling_study.py [mult|conv|dot]
"""

import sys

from repro import (
    Convolution,
    DotProduct,
    EnduranceSimulator,
    ParallelMultiplication,
    configuration_grid,
    default_architecture,
    remap_frequency_sweep,
)
from repro.core.report import (
    format_fig17,
    format_heatmap_stats,
    format_remap_frequency,
)

ITERATIONS = 2_000

WORKLOADS = {
    "mult": lambda: ParallelMultiplication(bits=32),
    "conv": lambda: Convolution(),
    "dot": lambda: DotProduct(n_elements=1024, bits=32),
}


def main(argv) -> None:
    key = argv[1] if len(argv) > 1 else "conv"
    if key not in WORKLOADS:
        raise SystemExit(f"unknown workload {key!r}; pick from {sorted(WORKLOADS)}")
    workload = WORKLOADS[key]()
    simulator = EnduranceSimulator(default_architecture(), seed=7)

    print(f"Simulating {workload.describe()} under 18 configurations "
          f"({ITERATIONS} iterations each)...\n")
    entries = configuration_grid(simulator, workload, iterations=ITERATIONS)

    print(format_heatmap_stats([e.result.write_distribution for e in entries]))
    print()
    print(format_fig17(entries, workload.name))

    best = max(entries, key=lambda e: e.improvement)
    print(f"\nbest configuration: {best.label} "
          f"({best.improvement:.2f}x the static lifetime, "
          f"{best.lifetime.days_to_failure:.1f} days)")

    print("\nHow often must software re-map? (Section 5)")
    improvements = remap_frequency_sweep(
        simulator, workload,
        intervals=(1_000, 100, 50, 10),
        iterations=max(ITERATIONS, 5_000),
    )
    print(format_remap_frequency(improvements))


if __name__ == "__main__":
    main(sys.argv)
