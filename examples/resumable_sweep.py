"""Resumable sweep: cache a configuration grid and survive interruption.

Runs the Fig. 17-style 18-configuration grid through the experiment
engine with a disk-backed result store. The first pass simulates and
caches every configuration; a simulated "kill" halfway through a fresh
store shows resume re-simulating only the jobs that had not finished.

Run:
    python examples/resumable_sweep.py [cache_dir]

Pass a persistent directory (default: a temp dir) to keep the cache
across invocations — re-running the script then costs only the cache
probes. The same store is what `repro-endurance table3 --jobs 4
--cache-dir DIR` and friends use.
"""

import sys
import tempfile

from repro import (
    EnduranceSimulator,
    ParallelMultiplication,
    default_architecture,
)
from repro.balance.config import all_configurations
from repro.core.sweep import configuration_grid
from repro.engine import ExperimentEngine, JobSpec, ResultStore, TextReporter

ITERATIONS = 1_000


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-engine-"
    )
    architecture = default_architecture(rows=256, cols=256)
    workload = ParallelMultiplication(bits=8)
    store = ResultStore(cache_dir)

    print(f"result store: {cache_dir} ({len(store)} cached entries)\n")

    # --- an "interrupted" run: only part of the grid completes ---------
    specs = [
        JobSpec(
            workload=workload,
            architecture=architecture,
            config=config,
            iterations=ITERATIONS,
            seed=7,
        )
        for config in all_configurations()
    ]
    survivors = max(len(store), 6)
    print(f"pass 1: pretend the run was killed after {survivors} jobs")
    ExperimentEngine(store=store, hooks=TextReporter(sys.stdout)).run(
        specs[:survivors]
    )

    # --- resume: the full grid re-simulates only the misses ------------
    print("\npass 2: full grid resumes from the store")
    entries = configuration_grid(
        EnduranceSimulator(architecture, seed=7),
        workload,
        iterations=ITERATIONS,
        cache_dir=cache_dir,
        hooks=TextReporter(sys.stdout),
    )

    best = max(entries, key=lambda e: e.improvement)
    print(f"\n{len(store)} entries cached; "
          f"best configuration: {best.label} "
          f"({best.improvement:.2f}x lifetime improvement)")
    print("re-run this script with the same cache_dir: everything is a hit")


if __name__ == "__main__":
    main()
