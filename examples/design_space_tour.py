"""Design-space tour: the reproduction's extensions in one pass.

Walks the levers the paper's conclusion points at, quantified with this
library's extension modules:

1. gate fabric — a majority-gate (CRAM-style) full adder halves the
   writes per multiplication versus NAND;
2. multiplier structure — a true Dadda tree ties the array on gates but
   cannot fit a 1024-bit lane at 32 bits;
3. data-dependent switching — only ~half of all writes actually flip a
   cell on random operands;
4. fault-aware repacking — with per-cell endurance spread, remapping
   around dead offsets outlives the first-cell-failure horizon;
5. deployment — duty cycles and array farms turn one Eq. 4 number into
   embedded-vs-server lifetimes.

Run:
    python examples/design_space_tour.py
"""

from dataclasses import replace

from repro import (
    BalanceConfig,
    EnduranceSimulator,
    ParallelMultiplication,
    default_architecture,
    failure_timeline,
    lifetime_from_result,
    minimum_footprint,
)
from repro.core.switching import measure_switching
from repro.core.system import ArrayFarm, lifetime_at_duty_cycle
from repro.devices.endurance import LognormalEndurance
from repro.devices.technology import MRAM
from repro.gates.library import MAJ_LIBRARY, NAND_LIBRARY
from repro.synth.multiplier import multiply
from repro.synth.multiplier_tree import tree_multiply
from repro.synth.program import LaneProgramBuilder

ITERATIONS = 500


def _program(library, width, factory):
    builder = LaneProgramBuilder(library)
    a = builder.input_vector("a", width)
    b = builder.input_vector("b", width)
    factory(builder, a, b)
    return builder.finish()


def main() -> None:
    architecture = default_architecture()
    workload = ParallelMultiplication(bits=32)

    print("1) Gate fabric: writes per 32-bit multiplication")
    for library in (NAND_LIBRARY, MAJ_LIBRARY):
        program = _program(library, 32, multiply)
        print(f"   {library.name:8s} {program.gate_count} gates "
              f"({program.gate_count / 9824:.2f}x the NAND count)")

    print("\n2) Multiplier structure: gates tie, workspace does not")
    array32 = _program(NAND_LIBRARY, 32, multiply)
    tree32 = _program(NAND_LIBRARY, 32, tree_multiply)
    print(f"   array: {array32.gate_count} gates, {array32.footprint} bits")
    print(f"   tree:  {tree32.gate_count} gates, {tree32.footprint} bits "
          f"(> {architecture.lane_size}-bit lane: does not fit)")

    print("\n3) Data-dependent switching (random operands)")
    profile = measure_switching(
        ParallelMultiplication(bits=16).build_program(architecture),
        samples=32, rng=0,
    )
    print(f"   switch fraction {profile.switch_fraction:.1%}; switch-only "
          f"endurance model buys {profile.lifetime_factor:.2f}x")

    print("\n4) Fault-aware repacking (lognormal endurance, sigma 0.5)")
    simulator = EnduranceSimulator(architecture, seed=3)
    result = simulator.run(
        workload, BalanceConfig.from_label("RaxSt+Hw"),
        iterations=ITERATIONS, track_reads=False,
    )
    required = minimum_footprint(workload, architecture)
    timeline = failure_timeline(
        result, required_offsets=required,
        endurance_model=LognormalEndurance(
            MRAM.endurance_writes, sigma=0.5, rng=0
        ),
    )
    print(f"   first failure at {timeline.first_failure_iterations:.2e} "
          f"iterations; unusable at {timeline.unusable_iterations:.2e} "
          f"({timeline.extension_factor:.2f}x extension)")

    print("\n5) Deployment")
    estimate = lifetime_from_result(result)
    embedded = lifetime_at_duty_cycle(estimate, 0.01)
    print(f"   full utilization: {estimate.days_to_failure:.1f} days; "
          f"1% duty cycle: {embedded.years_to_failure:.1f} years")
    farm = ArrayFarm(1024, sigma=0.25, rng=0)
    horizon = farm.replacement_horizon(estimate, failure_fraction=0.05)
    print(f"   1024-array server: replace after {horizon.horizon_days:.1f} "
          f"days (5% of arrays dead)")


if __name__ == "__main__":
    main()
