"""Traced sweep: capture a JSONL telemetry trace and summarize it.

Attaches a `JsonlSink` to the process-local telemetry registry, runs a
small recompile-frequency sweep (Section 5), then reads the trace back
with the same machinery `repro-endurance stats` uses: every simulation,
phase timing, and grid-progress record lands in the file, and
`summarize_trace` folds them into one aggregate view.

Run:
    python examples/traced_sweep.py [trace.jsonl]

The same trace can come from any CLI run via `--trace FILE`; summarize
either with `repro-endurance stats FILE`.
"""

import sys
import tempfile

from repro import (
    EnduranceSimulator,
    ParallelMultiplication,
    SimulationSettings,
    default_architecture,
    get_telemetry,
    remap_frequency_sweep,
)
from repro.telemetry import JsonlSink, format_stats, summarize_trace

ITERATIONS = 2_000


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = sys.argv[1]
    else:
        trace_path = tempfile.mktemp(suffix=".jsonl", prefix="repro-trace-")

    settings = SimulationSettings(seed=7, trace_path=trace_path)
    simulator = EnduranceSimulator(
        default_architecture(rows=256, cols=256), settings
    )

    telemetry = get_telemetry()
    sink = telemetry.add_sink(JsonlSink(trace_path))
    try:
        improvements = remap_frequency_sweep(
            simulator,
            ParallelMultiplication(bits=8),
            intervals=(1_000, 100),
            iterations=ITERATIONS,
            settings=settings,
        )
    finally:
        telemetry.remove_sink(sink)
        sink.close()

    print(f"swept {len(improvements)} recompile intervals:")
    for interval, improvement in sorted(improvements.items()):
        print(f"  every {interval:>5} iterations: {improvement:.2f}x lifetime")

    print(f"\ntrace written to {trace_path}")
    print(f"aggregates snapshot: {telemetry.snapshot()['counters']}\n")
    print(format_stats(summarize_trace(trace_path)))


if __name__ == "__main__":
    main()
