"""Failed-cell study: how dead cells cripple a PIM array (Section 3.3).

Walks the Fig. 11 analysis end to end: simulates wear until cells start
failing, shows how quickly the usable lane space collapses (one dead cell
kills its offset in *every* lane), and evaluates the lane-set workaround's
space-versus-latency trade-off.

Run:
    python examples/failed_cell_study.py
"""

import numpy as np

from repro import default_architecture
from repro.array.faults import (
    expected_usable_fraction,
    plan_lane_sets,
    usable_fraction_curve,
    usable_offsets,
)
from repro.core.report import format_fig11b, format_table
from repro.workloads.multiply import ParallelMultiplication


def main() -> None:
    architecture = default_architecture()
    geometry = architecture.geometry
    lanes = geometry.lane_count(architecture.orientation)

    # 1. The Fig. 11b curve: usable lane bits versus failed cells.
    fractions = [0.0, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2]
    measured = usable_fraction_curve(
        geometry, architecture.orientation, fractions, trials=3, rng=0
    )
    analytic = [expected_usable_fraction(p, lanes) for p in fractions]
    print(format_fig11b(fractions, measured, analytic))

    # 2. When does multiplication stop fitting?
    program = ParallelMultiplication(bits=32, workspace_limit=256).build_program(
        architecture
    )
    print(f"\nA 32-bit multiply needs {program.footprint} usable bits per lane.")
    for p, usable in zip(fractions, measured):
        if usable * geometry.rows < program.footprint:
            print(f"At {p:.3%} failed cells ({usable:.1%} usable) the "
                  "all-lane array can no longer host it.")
            break

    # 3. The lane-set workaround: trade latency for usable space.
    rng = np.random.default_rng(1)
    failed = rng.random((geometry.rows, geometry.cols)) < 0.002
    whole = int(usable_offsets(failed, architecture.orientation).sum())
    rows = []
    for n_sets in (1, 2, 4, 8, 16):
        plan = plan_lane_sets(failed, architecture.orientation, n_sets)
        rows.append(
            (n_sets, plan.min_usable, f"{plan.latency_multiplier}x")
        )
    print()
    print(format_table(
        ["Lane sets", "Usable bits (worst set)", "Latency cost"],
        rows,
        title=(
            f"Lane-set workaround at 0.2% failed cells "
            f"(all-lane usable: {whole} bits)"
        ),
    ))
    print("\nConclusion (paper Section 3.3): even a few failures disrupt "
          "all-lane operation; recovering space costs proportional latency.")


if __name__ == "__main__":
    main()
