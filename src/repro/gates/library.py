"""Gate libraries: which opcodes an architecture supports natively.

The paper uses two accounting schemes for composite arithmetic, and the
library abstraction captures both:

* :data:`NAND_LIBRARY` — NAND/NOT only (MAGIC-style). A full adder costs
  9 NAND gates (paper Fig. 2) and a half adder 5 gates (4 NAND + 1 NOT).
  With these, the paper's 32-bit DADDA multiplication performs exactly
  **9,824 cell writes and 19,616 cell reads** (Section 3.1):
  ``(b^2-2b)*9 + b*5 + b^2 = 9824`` and ``(b^2-2b)*18 + b*9 + b^2*2 =
  19616`` for ``b = 32``.
* :data:`MINIMAL_LIBRARY` — arbitrary two-input gates. A full adder costs
  the paper's stated minimum of 5 gates and a half adder 2 gates
  (Section 3.2), giving ``6b^2 - 8b`` gates per DADDA multiplication and
  ``5b - 3`` per ripple-carry addition — the formulas behind Table 2.
* :data:`NOR_LIBRARY` — NOR/NOT only, included as a third realistic point
  (several memristive fabrics are NOR-native); a full adder costs 9 NOR
  gates by De Morgan duality.

A library also records whether COPY is native; if not, a copy is realized
with two sequential NOT gates (Section 3.2, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.gates.ops import GateOp


@dataclass(frozen=True)
class GateLibrary:
    """An architecture's native gate set and adder cost contract.

    Attributes:
        name: Library name.
        native_ops: Opcodes the architecture executes in one step.
        full_adder_gates: Gates per full adder under this library.
        half_adder_gates: Gates per half adder under this library.
        carry_adder_gates: Gates per carry-only full adder (majority of
            three bits, no sum output) — what the comparator's borrow
            chain costs once the discarded sum gates are elided.
        and_gate_cost: Gates per two-input AND (1 when native; a NOR-only
            fabric pays 3: two NOTs plus a NOR).
        has_native_copy: Whether COPY is a single gate; otherwise two NOTs.
    """

    name: str
    native_ops: FrozenSet[GateOp]
    full_adder_gates: int
    half_adder_gates: int
    carry_adder_gates: int
    and_gate_cost: int
    has_native_copy: bool

    def supports(self, op: GateOp) -> bool:
        """Whether ``op`` executes natively (one step) in this library."""
        return op in self.native_ops

    @property
    def copy_gate_cost(self) -> int:
        """Sequential gates needed to copy one bit."""
        return 1 if self.has_native_copy else 2

    def multiplier_gates(self, bits: int) -> int:
        """Gates for a ``bits``-wide DADDA multiplication.

        A DADDA multiplier uses ``b^2 - 2b`` full adds, ``b`` half adds and
        ``b^2`` AND gates (paper Section 2.2).
        """
        _require_width(bits)
        full_adds = bits * bits - 2 * bits
        half_adds = bits
        ands = bits * bits
        return (
            full_adds * self.full_adder_gates
            + half_adds * self.half_adder_gates
            + ands * self.and_gate_cost
        )

    def adder_gates(self, bits: int) -> int:
        """Gates for a ``bits``-wide ripple-carry addition.

        Ripple-carry ("optimal for PIM as it uses the fewest gates",
        Section 2.2) takes ``b - 1`` full adds and one half add.
        """
        _require_width(bits)
        return (bits - 1) * self.full_adder_gates + self.half_adder_gates


def _require_width(bits: int) -> None:
    if bits < 2:
        raise ValueError(f"operand width must be at least 2 bits, got {bits}")


#: NAND/NOT fabric with native AND (Section 2.2 lists "NOT, (N)AND, or
#: (N)OR" as basic operations); the paper's endurance-accounting library.
#: The full adder is Fig. 2's 9-NAND circuit; the half adder is 4 NANDs
#: (XOR) plus one NOT (carry). With these costs a 32-bit DADDA multiply
#: performs exactly 9,824 writes and 19,616 reads (Section 3.1).
NAND_LIBRARY = GateLibrary(
    name="nand",
    native_ops=frozenset({GateOp.NAND, GateOp.NOT, GateOp.AND}),
    full_adder_gates=9,
    half_adder_gates=5,
    carry_adder_gates=6,
    and_gate_cost=1,
    has_native_copy=False,
)

#: Arbitrary two-input gates; the paper's minimal-gate-count library used
#: for the shuffle-overhead analysis (Table 2).
MINIMAL_LIBRARY = GateLibrary(
    name="minimal",
    native_ops=frozenset(
        {
            GateOp.NOT,
            GateOp.COPY,
            GateOp.AND,
            GateOp.NAND,
            GateOp.OR,
            GateOp.NOR,
            GateOp.XOR,
            GateOp.XNOR,
        }
    ),
    full_adder_gates=5,
    half_adder_gates=2,
    carry_adder_gates=4,
    and_gate_cost=1,
    has_native_copy=True,
)

#: NOR/NOT fabric (De Morgan dual of NAND; same adder costs, but AND is
#: not native and costs two NOTs plus a NOR).
NOR_LIBRARY = GateLibrary(
    name="nor",
    native_ops=frozenset({GateOp.NOR, GateOp.NOT}),
    full_adder_gates=9,
    half_adder_gates=5,
    carry_adder_gates=6,
    and_gate_cost=3,
    has_native_copy=False,
)

#: CRAM-style majority-gate fabric: spintronic CRAM natively computes
#: three-input majority [Chowdhury 2017, Zabihi 2018], which collapses the
#: full adder to 4 gates — cout = MAJ(a,b,cin); sum = MAJ(MAJ(a,b,!cout),
#: cin, !cout) — roughly halving the write cost of in-memory arithmetic
#: versus the NAND decomposition. AND(a,b) = MAJ(a,b,0) against a shared
#: constant-zero cell.
MAJ_LIBRARY = GateLibrary(
    name="maj",
    native_ops=frozenset({GateOp.MAJ, GateOp.NOT}),
    full_adder_gates=4,
    half_adder_gates=4,
    carry_adder_gates=1,
    and_gate_cost=1,
    has_native_copy=False,
)

_LIBRARIES: Dict[str, GateLibrary] = {
    lib.name: lib
    for lib in (NAND_LIBRARY, MINIMAL_LIBRARY, NOR_LIBRARY, MAJ_LIBRARY)
}


def library_by_name(name: str) -> GateLibrary:
    """Look up a built-in gate library by name (case-insensitive)."""
    try:
        return _LIBRARIES[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_LIBRARIES))
        raise KeyError(f"unknown gate library {name!r}; known: {known}") from None
