"""Bit-level logic gate abstractions for digital PIM.

The paper's architectures (Table 1: Pinatubo, MAGIC, Felix, CRAM) all share
one operating principle: a gate reads one or two input memory cells and
writes one output cell, within a single lane (Section 2.2). This subpackage
provides:

* :mod:`repro.gates.ops` — the gate opcodes and their boolean semantics;
* :mod:`repro.gates.gate` — the :class:`~repro.gates.gate.Gate` record, the
  unit of work executed by the array simulator;
* :mod:`repro.gates.library` — gate *libraries* (which opcodes an
  architecture supports and how composite functions decompose), including
  the two libraries whose accounting the paper uses: NAND-only (endurance
  analysis, Section 3.1) and minimal two-input (overhead analysis,
  Section 3.2 / Table 2).
"""

from repro.gates.ops import (
    ONE_INPUT_OPS,
    TWO_INPUT_OPS,
    GateOp,
    evaluate_op,
)
from repro.gates.gate import Gate
from repro.gates.library import (
    MAJ_LIBRARY,
    MINIMAL_LIBRARY,
    NAND_LIBRARY,
    NOR_LIBRARY,
    GateLibrary,
    library_by_name,
)

__all__ = [
    "GateOp",
    "evaluate_op",
    "ONE_INPUT_OPS",
    "TWO_INPUT_OPS",
    "Gate",
    "GateLibrary",
    "NAND_LIBRARY",
    "MINIMAL_LIBRARY",
    "NOR_LIBRARY",
    "MAJ_LIBRARY",
    "library_by_name",
]
