"""The Gate record: one in-memory logic operation on logical bits.

A gate reads its input bit(s) and writes its output bit, all within one
lane. Gates operate on *logical* bit addresses; the array executor and the
load-balancing strategies decide which physical cells those map to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.gates.ops import GateOp, evaluate_op


@dataclass(frozen=True)
class Gate:
    """One logic gate over logical bit addresses within a lane.

    Attributes:
        op: The opcode.
        inputs: Logical addresses of the input bit(s).
        output: Logical address of the output bit. Inputs are read once
            each; the output receives exactly one write.
    """

    op: GateOp
    inputs: Tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        if len(self.inputs) != self.op.arity:
            raise ValueError(
                f"{self.op.name} takes {self.op.arity} inputs, "
                f"got {len(self.inputs)}"
            )
        for address in self.inputs + (self.output,):
            if address < 0:
                raise ValueError(f"negative bit address {address}")
        if self.output in self.inputs:
            raise ValueError(
                "output cell must differ from input cells: the surveyed PIM "
                "architectures write the output after/while reading inputs "
                f"(gate {self.op.name}, inputs {self.inputs}, "
                f"output {self.output})"
            )

    @property
    def reads(self) -> int:
        """Cell reads this gate performs (one per input)."""
        return len(self.inputs)

    @property
    def writes(self) -> int:
        """Cell writes this gate performs (always one, to the output)."""
        return 1

    def evaluate(self, input_values: Tuple[int, ...]) -> int:
        """Boolean result of the gate for concrete input values."""
        return evaluate_op(self.op, input_values)

    def remapped(self, mapping) -> "Gate":
        """Return a copy with every bit address sent through ``mapping``.

        ``mapping`` is any callable from logical address to logical address
        (used when re-mapping computations for load balancing).
        """
        return Gate(
            op=self.op,
            inputs=tuple(mapping(a) for a in self.inputs),
            output=mapping(self.output),
        )
