"""Gate opcodes and boolean semantics.

Covers the basic operations the surveyed PIM architectures implement
natively (NOT, (N)AND, (N)OR — Section 2.2), plus XOR/XNOR, MAJ (the
majority function some CRAM designs expose), and COPY (used by
memory-access-aware re-mapping, Section 3.2; architectures lacking COPY
use two sequential NOTs instead).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateOp(Enum):
    """Opcode of an in-memory logic gate."""

    NOT = "not"
    COPY = "copy"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MAJ = "maj"

    @property
    def arity(self) -> int:
        """Number of input cells the gate reads."""
        if self in ONE_INPUT_OPS:
            return 1
        if self is GateOp.MAJ:
            return 3
        return 2


#: Gates reading a single input cell.
ONE_INPUT_OPS = frozenset({GateOp.NOT, GateOp.COPY})

#: Gates reading two input cells.
TWO_INPUT_OPS = frozenset(
    {GateOp.AND, GateOp.NAND, GateOp.OR, GateOp.NOR, GateOp.XOR, GateOp.XNOR}
)


def evaluate_op(op: GateOp, inputs: Sequence[int]) -> int:
    """Evaluate a gate opcode over boolean inputs (0/1).

    Raises:
        ValueError: if the number of inputs does not match the opcode arity
            or an input is not 0/1.
    """
    if len(inputs) != op.arity:
        raise ValueError(f"{op.name} takes {op.arity} inputs, got {len(inputs)}")
    for value in inputs:
        if value not in (0, 1):
            raise ValueError(f"gate inputs must be 0 or 1, got {value!r}")
    if op is GateOp.NOT:
        return 1 - inputs[0]
    if op is GateOp.COPY:
        return inputs[0]
    if op is GateOp.AND:
        return inputs[0] & inputs[1]
    if op is GateOp.NAND:
        return 1 - (inputs[0] & inputs[1])
    if op is GateOp.OR:
        return inputs[0] | inputs[1]
    if op is GateOp.NOR:
        return 1 - (inputs[0] | inputs[1])
    if op is GateOp.XOR:
        return inputs[0] ^ inputs[1]
    if op is GateOp.XNOR:
        return 1 - (inputs[0] ^ inputs[1])
    if op is GateOp.MAJ:
        return 1 if sum(inputs) >= 2 else 0
    raise ValueError(f"unhandled opcode {op!r}")
