"""Command-line interface: regenerate the paper's artifacts from a shell.

Examples::

    repro-endurance opcounts
    repro-endurance table2
    repro-endurance fig5
    repro-endurance heatmap --workload conv --config RaxRa+Hw --iterations 5000
    repro-endurance fig17 --workload dot --iterations 10000
    repro-endurance table3 --iterations 10000
    repro-endurance table3 --iterations 10000 --jobs 4 --cache-dir .cache
    repro-endurance lifetime --technology RRAM
    repro-endurance fig11b
    repro-endurance report --workload dot --config RaxBs+Hw
    repro-endurance export --workload conv --out results/
    repro-endurance switching --bits 16
    repro-endurance deployment --arrays 1024
    repro-endurance remap-sweep --workload dot
    repro-endurance trace --config StxSt BsxBs+Hw --iterations 500
    repro-endurance trace --file capture.trace --policy hash --verify-only
    repro-endurance heatmap --workload gemv-trace --config BsxBs
    repro-endurance heatmap --trace trace.jsonl --progress
    repro-endurance stats trace.jsonl

Every simulation-backed subcommand accepts the full settings flag set
(``--seed`` / ``--kernel`` / ``--chunk-size``), the engine flags
(``--jobs`` / ``--cache-dir``), and the telemetry flags (``--log-level``
/ ``--trace FILE`` / ``--progress``) — both before and after the
subcommand name.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.array.architecture import default_architecture
from repro.array.faults import expected_usable_fraction, usable_fraction_curve
from repro.array.geometry import ArrayGeometry
from repro.balance.config import BalanceConfig
from repro.core.lifetime import (
    eq1_operations_until_total_failure,
    eq2_seconds_until_total_failure,
    lifetime_from_result,
)
from repro.core.report import (
    format_fig5,
    format_fig11b,
    format_fig17,
    format_heatmap_stats,
    format_lifetimes,
    format_remap_frequency,
    format_table,
    format_table2,
    format_table3,
)
from repro.core.backend import BACKENDS
from repro.core.settings import SimulationSettings
from repro.core.simulator import EnduranceSimulator
from repro.verify import VerificationError
from repro.core.sweep import (
    best_improvement,
    configuration_grid,
    remap_frequency_sweep,
    technology_sweep,
)
from repro.devices.technology import MRAM, PCM, RRAM, technology_by_name
from repro.gates.library import NAND_LIBRARY
from repro.synth.analysis import (
    conventional_multiplication_counts,
    multiplier_counts,
    pim_vs_conventional_write_ratio,
)
from repro.telemetry import (
    JsonlSink,
    LoggingSink,
    ProgressSink,
    TraceSchemaError,
    format_stats,
    get_telemetry,
    iter_trace,
    summarize_trace,
)
from repro.telemetry.reporter import say
from repro.workloads.multiply import ParallelMultiplication
from repro.workloads.registry import (
    UnknownWorkloadError,
    available_workloads,
    get_workload,
    workload_factories,
)
from repro.workloads.trace import MAPPING_POLICIES

#: Back-compat alias: the private dict of earlier releases is now a live
#: view of the public registry (:mod:`repro.workloads.registry`), so
#: anything registered there is immediately visible to every subcommand.
_WORKLOADS = workload_factories

_LOG_LEVEL_CHOICES = ("debug", "info", "warning", "error", "critical")

#: Built-in gate libraries the ``verify`` subcommand sweeps.
_LIBRARY_NAMES = ("nand", "minimal", "nor", "maj")

#: Balance configurations the ``verify`` subcommand samples by default:
#: the static baseline, each software family, and the full stack.
_VERIFY_CONFIGS = ("StxSt", "RaxRa", "BsxBs", "B1xB1", "BsxBs+Hw")


def _make_workload(name: str):
    try:
        return get_workload(name)
    except UnknownWorkloadError as exc:
        raise SystemExit(str(exc)) from None


def _make_settings(args) -> SimulationSettings:
    """The :class:`SimulationSettings` described by the parsed flags."""
    return SimulationSettings(
        seed=args.seed,
        kernel=getattr(args, "kernel", "batched"),
        chunk_size=getattr(args, "chunk_size", None),
        backend=getattr(args, "backend", "numpy"),
        fastforward=getattr(args, "fast_forward", False),
        log_level=getattr(args, "log_level", None),
        trace_path=getattr(args, "trace", None),
        progress=getattr(args, "progress", False),
    )


def _make_simulator(args) -> EnduranceSimulator:
    arch = default_architecture(args.rows, args.cols)
    return EnduranceSimulator(arch, settings=_make_settings(args))


def _engine_kwargs(args) -> dict:
    """Engine routing options for commands that grew --jobs/--cache-dir."""
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    hooks = None
    if jobs > 1 or cache_dir:
        from repro.engine import TextReporter

        hooks = TextReporter()
    return {"jobs": jobs, "cache_dir": cache_dir, "hooks": hooks}


def _run_one(args, sim, workload, config, iterations, track_reads=True):
    """One simulation, routed through the engine when flags ask for it."""
    settings = sim.settings.replace(track_reads=track_reads)
    if getattr(args, "jobs", 1) > 1 or getattr(args, "cache_dir", None):
        from repro.engine import run_simulation

        return run_simulation(
            workload, config, sim.architecture, iterations,
            settings=settings, **_engine_kwargs(args),
        )
    return sim.run(workload, config, iterations, settings=settings)


def _add_engine_flags(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment engine (default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="experiment-engine result store; completed cells are "
             "reused and interrupted sweeps resume from it",
    )


def _add_sim_flags(parser) -> None:
    """Subcommand-level duplicates of the global settings/telemetry flags.

    ``default=argparse.SUPPRESS`` keeps an unset subcommand flag from
    clobbering the value the main parser already stored, so both
    ``repro-endurance --seed 7 heatmap`` and
    ``repro-endurance heatmap --seed 7`` work.
    """
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="RNG seed"
    )
    parser.add_argument(
        "--kernel", choices=("batched", "epoch"),
        default=argparse.SUPPRESS, help="simulation kernel",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=argparse.SUPPRESS,
        help="epochs per GEMM for the batched kernel",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=argparse.SUPPRESS,
        help="array backend for the hot paths (falls back to numpy "
             "when the optional backend is not installed)",
    )
    parser.add_argument(
        "--fast-forward", action="store_true", default=argparse.SUPPRESS,
        help="use the analytic steady-state fast-forward on eligible "
             "(St/Bs/B1) configs; ineligible configs are refused (RPR011)",
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVEL_CHOICES,
        default=argparse.SUPPRESS,
        help="bridge telemetry events to stdlib logging at this level",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="write a JSONL telemetry trace to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true", default=argparse.SUPPRESS,
        help="render compact progress lines on stderr",
    )


def cmd_opcounts(args) -> None:
    """Section 3.1 operation-count claims."""
    bits = args.bits
    pim = multiplier_counts(bits, NAND_LIBRARY)
    conventional = conventional_multiplication_counts(bits)
    ratio = pim_vs_conventional_write_ratio(bits, NAND_LIBRARY)
    cells = args.rows
    rows = [
        ("conventional", conventional.cell_reads, conventional.cell_writes,
         f"{conventional.cell_reads / cells:.4f}", f"{conventional.cell_writes / cells:.4f}"),
        ("PIM (NAND lib)", pim.cell_reads, pim.cell_writes,
         f"{pim.cell_reads / cells:.2f}", f"{pim.cell_writes / cells:.2f}"),
    ]
    say(format_table(
        ["Architecture", "Cell reads", "Cell writes", "Reads/cell", "Writes/cell"],
        rows,
        title=f"{bits}-bit multiplication memory traffic (Section 3.1)",
    ))
    say(f"\nPIM performs {ratio:.1f}x more cell writes than conventional.")


def cmd_table2(args) -> None:
    """Table 2: access-aware shuffle overhead."""
    say(format_table2())


def cmd_fig5(args) -> None:
    """Fig. 5: per-cell reads/writes within a lane for one multiplication."""
    arch = default_architecture(args.rows, args.cols)
    program = ParallelMultiplication(bits=args.bits).build_program(arch)
    writes = program.write_counts(arch.lane_size, include_presets=arch.presets_output)
    reads = program.read_counts(arch.lane_size)
    say(format_fig5(writes, reads, used_bits=program.footprint))


def cmd_heatmap(args) -> None:
    """One write-distribution heatmap (Figs. 14-16 cells)."""
    sim = _make_simulator(args)
    workload = _make_workload(args.workload)
    config = BalanceConfig.from_label(args.config)
    result = _run_one(args, sim, workload, config, args.iterations)
    dist = result.write_distribution
    say(dist.ascii_heatmap(blocks=(args.rows // 32, args.cols // 16)))
    say()
    say(dist.summary())


def cmd_fig17(args) -> None:
    """Fig. 17: lifetime improvement across the 18 configurations."""
    sim = _make_simulator(args)
    workload = _make_workload(args.workload)
    entries = configuration_grid(
        sim, workload, iterations=args.iterations, **_engine_kwargs(args)
    )
    say(format_fig17(entries, workload.name))
    say(format_heatmap_stats([e.result.write_distribution for e in entries]))


def cmd_table3(args) -> None:
    """Table 3: utilization and best lifetime improvement per benchmark."""
    sim = _make_simulator(args)
    engine_kwargs = _engine_kwargs(args)
    summaries = []
    for name in ("mult", "conv", "dot"):
        workload = _make_workload(name)
        entries = configuration_grid(
            sim, workload, iterations=args.iterations, **engine_kwargs
        )
        best = best_improvement(entries)
        summaries.append(
            (workload.name, entries[0].result.lane_utilization,
             best.improvement)
        )
    say(format_table3(summaries))


def cmd_lifetime(args) -> None:
    """Lifetime bounds and technology contrast (Section 3.1)."""
    geometry = ArrayGeometry(args.rows, args.cols)
    tech = technology_by_name(args.technology)
    eq1 = eq1_operations_until_total_failure(
        geometry, tech.endurance_writes, args.writes_per_op
    )
    eq2 = eq2_seconds_until_total_failure(
        geometry, tech.endurance_writes, geometry.cols
    )
    say(f"Technology: {tech.name} (endurance {tech.endurance_writes:.1e})")
    say(f"Eq. 1 bound: {eq1:.3e} multiplications before total break-down")
    say(f"Eq. 2 bound: {eq2:.0f} s = {eq2 / 86400:.2f} days at full utilization")
    sim = _make_simulator(args)
    result = _run_one(
        args, sim, _make_workload("mult"), BalanceConfig(), args.iterations
    )
    sweep = technology_sweep(result, [MRAM, RRAM, PCM])
    say()
    say(format_lifetimes(sweep))


def cmd_fig11b(args) -> None:
    """Fig. 11b: usable lane bits versus failed cells."""
    geometry = ArrayGeometry(args.rows, args.cols)
    arch = default_architecture(args.rows, args.cols)
    fractions = [0.0, 1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2]
    measured = usable_fraction_curve(
        geometry, arch.orientation, fractions, trials=args.trials,
        rng=args.seed,
    )
    analytic = [
        expected_usable_fraction(p, geometry.lane_count(arch.orientation))
        for p in fractions
    ]
    say(format_fig11b(fractions, measured, analytic))


def cmd_remap_sweep(args) -> None:
    """Section 5 recompile-frequency sweep."""
    sim = _make_simulator(args)
    improvements = remap_frequency_sweep(
        sim,
        _make_workload(args.workload),
        intervals=tuple(args.intervals),
        iterations=args.iterations,
        **_engine_kwargs(args),
    )
    say(format_remap_frequency(improvements))


def cmd_report(args) -> None:
    """Full single-run report: distribution, heatmap, lifetimes."""
    from repro.core.report import format_full_report

    sim = _make_simulator(args)
    result = _run_one(
        args, sim, _make_workload(args.workload),
        BalanceConfig.from_label(args.config), args.iterations,
    )
    say(format_full_report(result, technologies=[MRAM, RRAM, PCM]))


def cmd_export(args) -> None:
    """Run one configuration and save its artifacts (npz + csv + pgm)."""
    import os

    from repro.core.io import save_result

    sim = _make_simulator(args)
    workload = _make_workload(args.workload)
    config = BalanceConfig.from_label(args.config)
    result = _run_one(args, sim, workload, config, args.iterations)
    os.makedirs(args.out, exist_ok=True)
    stem = os.path.join(
        args.out, f"{workload.name}-{config.label}-{args.iterations}"
    )
    save_result(result, stem + ".npz")
    dist = result.write_distribution
    dist.to_csv(stem + ".csv")
    dist.to_pgm(stem + ".pgm")
    say(f"saved {stem}.npz / .csv / .pgm")
    say(dist.summary())


def cmd_switching(args) -> None:
    """Data-dependent switching wear (extension E21)."""
    from repro.core.switching import measure_switching

    arch = default_architecture(args.rows, args.cols)
    program = ParallelMultiplication(bits=args.bits).build_program(arch)
    profile = measure_switching(
        program,
        samples=args.samples,
        rng=args.seed,
        evaluator=args.evaluator,
    )
    say(
        f"{args.bits}-bit multiply, {args.samples} random-operand samples:\n"
        f"  writes/iteration:   {int(profile.writes.sum())}\n"
        f"  switches/iteration: {profile.switches.sum():.1f}\n"
        f"  switch fraction:    {profile.switch_fraction:.2%}\n"
        f"  switch-only lifetime factor: {profile.lifetime_factor:.2f}x"
    )


def cmd_deployment(args) -> None:
    """Duty-cycle and array-farm lifetimes (extension E22)."""
    from repro.core.system import ArrayFarm, lifetime_at_duty_cycle

    sim = _make_simulator(args)
    result = _run_one(
        args, sim, _make_workload("mult"), BalanceConfig(), args.iterations,
        track_reads=False,
    )
    estimate = lifetime_from_result(result)
    say(f"single array, full utilization: "
        f"{estimate.days_to_failure:.1f} days")
    rows = []
    for duty in (1.0, 0.1, 0.01):
        scaled = lifetime_at_duty_cycle(estimate, duty)
        rows.append((f"{duty:.0%}", f"{scaled.years_to_failure:.2f}"))
    say(format_table(["Duty cycle", "Years to failure"], rows))
    farm = ArrayFarm(args.arrays, sigma=0.25, rng=args.seed)
    summary = farm.replacement_horizon(estimate, failure_fraction=0.05)
    say(f"\n{args.arrays}-array farm: first failure "
        f"{summary.first_seconds / 86400:.1f} d, 5% dead at "
        f"{summary.horizon_days:.1f} d")


def _parse_weighted(tokens, what):
    """Parse ``NAME`` / ``NAME:WEIGHT`` tokens into ``(name, weight)``."""
    out = []
    for token in tokens:
        name, _, weight = token.partition(":")
        try:
            out.append((name, float(weight) if weight else 1.0))
        except ValueError:
            raise SystemExit(
                f"bad {what} {token!r}: expected NAME or NAME:WEIGHT"
            ) from None
    return out


def cmd_fleet(args) -> int:
    """Fleet-scale endurance campaign (extension E33)."""
    import json as json_module

    from repro.engine import ResultStore
    from repro.fleet import (
        CohortSpec,
        FleetService,
        FleetSpec,
        PopulationSpec,
        TrafficSpec,
        format_report,
    )

    settings = _make_settings(args)
    cohorts = tuple(
        CohortSpec(
            workload=name,
            config=args.config,
            weight=weight,
            iterations_per_request=args.iters_per_request,
        )
        for name, weight in _parse_weighted(args.workloads, "workload")
    )
    spec = FleetSpec(
        population=PopulationSpec(
            n_arrays=args.arrays,
            technology_mix=tuple(
                _parse_weighted(args.technology_mix, "technology")
            ),
            cohorts=cohorts,
            endurance_sigma=args.sigma,
            repacking=args.repacking,
        ),
        traffic=TrafficSpec(model=args.traffic, rate=args.rate),
        days=args.days,
        seed=settings.seed,
        dispatch=args.dispatch,
        duty_cycle=args.duty_cycle,
        slo=args.slo,
        rows=args.rows,
        cols=args.cols,
        cohort_iterations=args.cohort_iterations,
        kernel=settings.kernel,
        chunk_size=settings.chunk_size,
        backend=settings.backend,
        fastforward=settings.fastforward,
        fleet_workers=args.fleet_workers,
        window=args.window,
    )
    cache_dir = getattr(args, "cache_dir", None)
    service = FleetService(
        spec,
        store=ResultStore(cache_dir) if cache_dir else None,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        jobs=getattr(args, "jobs", 1),
    )
    report = service.run(stop_after_day=args.stop_after_day)
    if report is None:
        say(
            f"fleet {spec.content_hash[:12]}: paused after day "
            f"{args.stop_after_day} (checkpoint written; rerun without "
            f"--stop-after-day to finish)"
        )
        return 0
    if args.json:
        say(json_module.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        format_report(report, emit=say)
    return 0


def _cmd_verify_fleet(args) -> int:
    """Whole-system static passes behind ``verify --fleet/--self``.

    Composes any combination of the three campaign-level verifiers —
    :func:`repro.verify.verify_fleet_spec` over an E36-equivalent fleet
    spec built from the flags (``--fleet``), the RPR012/RPR013 shard
    checks over a JSON plan fixture (``--shard-plan``), and the repo
    self-lint (``--self``) — into one merged report with the same
    text/JSON render and exit-code contract as the workload sweep.
    """
    import json as json_module

    from repro.verify import (
        VerifyReport,
        check_shard_plan,
        check_shard_races,
        verify_fleet_spec,
        verify_self,
    )

    report = VerifyReport()
    checked = []
    if args.fleet:
        from repro.fleet import (
            CohortSpec,
            FleetSpec,
            PopulationSpec,
            TrafficSpec,
        )

        spec = FleetSpec(
            population=PopulationSpec(
                n_arrays=args.arrays,
                technology_mix=(("MRAM", 1.0), ("PCM", 1.0)),
                cohorts=(
                    CohortSpec(workload="add", weight=1.0),
                    CohortSpec(workload="conv", weight=1.0),
                ),
                endurance_sigma=0.3,
            ),
            traffic=TrafficSpec(model=args.traffic, rate=4e6),
            days=365,
            seed=args.seed,
            rows=args.rows,
            cols=args.cols,
            fleet_workers=args.fleet_workers,
            window=args.window,
        )
        report = report.merged(verify_fleet_spec(spec, use_cache=False))
        checked.append(
            f"fleet spec ({args.arrays} arrays, {args.fleet_workers} "
            f"workers, window {args.window}, {args.traffic} traffic)"
        )
    if args.shard_plan:
        from repro.fleet import ShardPlan

        with open(args.shard_plan, "r", encoding="utf-8") as handle:
            payload = json_module.load(handle)
        try:
            plan = ShardPlan(
                n_arrays=int(payload["n_arrays"]),
                bounds=tuple(
                    (int(lo), int(hi)) for lo, hi in payload["bounds"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"bad shard-plan fixture {args.shard_plan!r}: expected "
                f'{{"n_arrays": N, "bounds": [[lo, hi], ...]}} ({exc})'
            ) from None
        report = report.merged(VerifyReport(
            list(check_shard_plan(plan)) + list(check_shard_races(plan))
        ))
        checked.append(f"shard plan {args.shard_plan!r}")
    if args.self_lint:
        report = report.merged(verify_self())
        checked.append("repo self-lint")
    if args.json:
        say(report.render_json())
    else:
        say("checked " + ", ".join(checked))
        say(report.render_text())
    return report.exit_code


def cmd_verify(args) -> int:
    """Statically verify built-in workloads across gate libraries.

    Sweeps workload x library x balance-config combinations through
    :func:`repro.verify.verify_mapping` without running a single epoch,
    merges every report, and exits with the merged report's code
    (0 clean / 1 errors / 2 warnings only) — the CI smoke contract.
    With ``--fleet``, ``--self``, or ``--shard-plan`` the sweep is
    replaced by the whole-system passes (RPR012-RPR018); see
    :func:`_cmd_verify_fleet`.
    """
    from dataclasses import replace as dc_replace

    from repro.gates.library import library_by_name
    from repro.verify import (
        Diagnostic,
        Location,
        Severity,
        VerifyReport,
        verify_mapping,
    )

    if args.fleet or args.self_lint or args.shard_plan:
        return _cmd_verify_fleet(args)

    workloads = (
        list(available_workloads()) if args.workload == "all"
        else [args.workload]
    )
    libraries = _LIBRARY_NAMES if args.library == "all" else (args.library,)
    configs = [BalanceConfig.from_label(label) for label in args.configs]
    base = default_architecture(args.rows, args.cols)
    report = VerifyReport()
    checked = skipped = 0
    for workload_name in workloads:
        for library_name in libraries:
            architecture = dc_replace(
                base, library=library_by_name(library_name)
            )
            try:
                mapping = _make_workload(workload_name).build(architecture)
            except ValueError as exc:
                # Some pairings cannot synthesize (e.g. XNOR on a NOR-only
                # library); that is a library property, not a diagnostic.
                skipped += 1
                if not args.json:
                    say(f"skip {workload_name} x {library_name}: {exc}")
                continue
            except MemoryError as exc:
                # Lane capacity exhausted: the workload does not fit this
                # geometry at all — that IS a bounds finding, reported
                # through the same RPR003 channel the static pass uses.
                report = report.merged(VerifyReport([
                    Diagnostic(
                        "RPR003",
                        Severity.ERROR,
                        f"workload cannot be built on this geometry: {exc}",
                        Location(place=(
                            f"workload {workload_name!r} x library "
                            f"{library_name!r}"
                        )),
                        hint="use a larger array (--rows) or a smaller "
                        "workload",
                    )
                ]))
                checked += 1
                continue
            for config in configs:
                report = report.merged(
                    verify_mapping(mapping, config, functional=args.functional)
                )
                checked += 1
    if args.json:
        say(report.render_json())
    else:
        tail = f", {skipped} skipped (unsynthesizable)" if skipped else ""
        say(f"checked {checked} workload x library x config combinations{tail}")
        say(report.render_text())
    return report.exit_code


def cmd_trace(args) -> int:
    """Trace-driven workload: parse, lower, verify, simulate (E35)."""
    from repro.verify import verify_mapping
    from repro.workloads.trace import (
        TraceParseError,
        TraceWorkload,
        load_gemv_fixture,
    )

    try:
        if args.file:
            workload = TraceWorkload.from_file(
                args.file, bits=args.bits, policy=args.policy
            )
        else:
            workload = load_gemv_fixture(bits=args.bits, policy=args.policy)
    except TraceParseError as exc:
        raise SystemExit(f"invalid trace: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}") from None
    sim = _make_simulator(args)
    arch = sim.architecture
    # build() statically checks the lowered network; static errors raise
    # VerificationError, which main() renders as a report.
    mapping = workload.build(arch)
    say(workload.describe())
    say(
        f"lowered onto {len(mapping.assignment)}/{arch.lane_count} lanes, "
        f"{mapping.writes_per_iteration:.0f} writes/iteration, "
        f"utilization {mapping.lane_utilization:.4f}"
    )
    status = 0
    for label in args.configs:
        report = verify_mapping(mapping, BalanceConfig.from_label(label))
        if report.diagnostics:
            say(f"-- {label}")
            say(report.render_text())
        status = max(status, report.exit_code)
    if status == 0:
        say(f"verify: no diagnostics ({len(args.configs)} configs)")
    if args.verify_only or status == 1:
        return status
    base_days = None
    for label in args.configs:
        result = _run_one(
            args, sim, workload, BalanceConfig.from_label(label),
            args.iterations,
        )
        estimate = lifetime_from_result(result)
        if base_days is None:
            base_days = estimate.days_to_failure
        say(
            f"{label:>10s}: {estimate.days_to_failure:10.2f} days to "
            f"failure ({estimate.days_to_failure / base_days:5.2f}x "
            f"vs {args.configs[0]})"
        )
    return status


def cmd_stats(args) -> None:
    """Summarize a JSONL telemetry trace (validates the schema)."""
    try:
        records = list(iter_trace(args.trace_file))
    except TraceSchemaError as exc:
        raise SystemExit(f"invalid trace: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}") from None
    say(format_stats(summarize_trace(records)))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-endurance",
        description=(
            "Reproduce 'On Endurance of Processing in (Nonvolatile) Memory' "
            "(ISCA 2023)"
        ),
    )
    parser.add_argument("--rows", type=int, default=1024, help="array rows")
    parser.add_argument("--cols", type=int, default=1024, help="array columns")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--kernel", choices=("batched", "epoch"), default="batched",
        help="simulation kernel: chunked GEMM accumulation across epochs "
             "(batched, default) or the per-epoch loop (epoch); "
             "bit-identical results",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="epochs per GEMM for the batched kernel (speed/memory knob; "
             "never changes results)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="numpy",
        help="array backend for the hot paths: numpy (default), cupy, "
             "or numba; optional backends fall back to numpy (with a "
             "telemetry event) when not installed",
    )
    parser.add_argument(
        "--fast-forward", action="store_true", default=False,
        help="extrapolate steady-state wear analytically instead of "
             "simulating every epoch; bit-identical on eligible "
             "(St/Bs/B1) configs, refused (RPR011) otherwise",
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVEL_CHOICES, default=None,
        help="bridge telemetry events to stdlib logging at this level",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL telemetry trace to FILE "
             "(summarize it with the 'stats' subcommand)",
    )
    parser.add_argument(
        "--progress", action="store_true", default=False,
        help="render compact progress lines on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("opcounts", help="Section 3.1 operation counts")
    p.add_argument("--bits", type=int, default=32)
    p.set_defaults(func=cmd_opcounts)

    p = sub.add_parser("table2", help="Table 2 shuffle overhead")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("fig5", help="Fig. 5 lane write/read profile")
    p.add_argument("--bits", type=int, default=32)
    p.set_defaults(func=cmd_fig5)

    workload_help = (
        "workload name from the registry "
        f"(registered: {', '.join(available_workloads())})"
    )

    p = sub.add_parser("heatmap", help="Figs. 14-16 heatmap for one config")
    p.add_argument("--workload", default="mult", help=workload_help)
    p.add_argument("--config", default="StxSt")
    p.add_argument("--iterations", type=int, default=5000)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_heatmap)

    p = sub.add_parser("fig17", help="Fig. 17 lifetime improvements")
    p.add_argument("--workload", default="mult", help=workload_help)
    p.add_argument("--iterations", type=int, default=10000)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_fig17)

    p = sub.add_parser("table3", help="Table 3 summary")
    p.add_argument("--iterations", type=int, default=10000)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_table3)

    p = sub.add_parser("lifetime", help="lifetime bounds + technology sweep")
    p.add_argument("--technology", default="MRAM")
    p.add_argument("--writes-per-op", type=float, default=9824)
    p.add_argument("--iterations", type=int, default=2000)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_lifetime)

    p = sub.add_parser("fig11b", help="Fig. 11b failed-cell curve")
    p.add_argument("--trials", type=int, default=4)
    p.set_defaults(func=cmd_fig11b)

    p = sub.add_parser("report", help="full report for one run")
    p.add_argument("--workload", default="mult", help=workload_help)
    p.add_argument("--config", default="StxSt")
    p.add_argument("--iterations", type=int, default=2000)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="run once and save npz/csv/pgm artifacts")
    p.add_argument("--workload", default="mult", help=workload_help)
    p.add_argument("--config", default="StxSt")
    p.add_argument("--iterations", type=int, default=2000)
    p.add_argument("--out", default="results")
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("switching", help="data-dependent switching wear")
    p.add_argument("--bits", type=int, default=16)
    p.add_argument("--samples", type=int, default=32)
    p.add_argument(
        "--evaluator",
        default="compiled",
        choices=("compiled", "interpreted"),
        help="functional backend (identical results; compiled is faster)",
    )
    p.set_defaults(func=cmd_switching)

    p = sub.add_parser("deployment", help="duty-cycle / array-farm lifetimes")
    p.add_argument("--iterations", type=int, default=500)
    p.add_argument("--arrays", type=int, default=256)
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_deployment)

    p = sub.add_parser("remap-sweep", help="recompile-frequency sweep")
    p.add_argument("--workload", default="dot", help=workload_help)
    p.add_argument("--iterations", type=int, default=20000)
    p.add_argument(
        "--intervals", type=int, nargs="+",
        default=[10000, 1000, 500, 100, 50, 10],
    )
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_remap_sweep)

    p = sub.add_parser(
        "fleet",
        help="fleet-scale endurance campaign with stochastic traffic",
    )
    p.add_argument("--arrays", type=int, default=64, help="population size")
    p.add_argument("--days", type=int, default=30, help="virtual days")
    p.add_argument(
        "--workloads", metavar="NAME[:WEIGHT]", nargs="+", default=["mult"],
        help="cohort workloads with optional traffic weights "
             "(e.g. mult:2 conv:1)",
    )
    p.add_argument(
        "--config", default="StxSt", help="balance configuration label"
    )
    p.add_argument(
        "--technology-mix", metavar="NAME[:WEIGHT]", nargs="+",
        default=["MRAM"],
        help="technology presets with optional population weights "
             "(e.g. MRAM:3 RRAM:1)",
    )
    p.add_argument(
        "--sigma", type=float, default=0.0,
        help="per-cell lognormal endurance spread (0 = uniform)",
    )
    p.add_argument(
        "--repacking", action="store_true", default=False,
        help="arrays die at the fault-aware repacking horizon instead "
             "of first cell failure",
    )
    p.add_argument(
        "--traffic", choices=("deterministic", "poisson", "bursty"),
        default="poisson", help="arrival process",
    )
    p.add_argument(
        "--rate", type=float, default=1000.0,
        help="mean requests per virtual day",
    )
    p.add_argument(
        "--iters-per-request", type=int, default=1,
        help="workload iterations one request costs",
    )
    p.add_argument(
        "--dispatch", choices=("even", "least_worn"), default="even",
        help="how a cohort's demand spreads over its live arrays",
    )
    p.add_argument(
        "--duty-cycle", type=float, default=1.0,
        help="fraction of each day an array may compute",
    )
    p.add_argument(
        "--slo", type=float, default=0.999,
        help="confidence level for capacity-headroom analysis",
    )
    p.add_argument(
        "--cohort-iterations", type=int, default=2000,
        help="iterations for each cohort's wear calibration",
    )
    p.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for campaign checkpoints (enables resume)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint after every N completed virtual days",
    )
    p.add_argument(
        "--stop-after-day", type=int, default=None,
        help="pause after this virtual day (requires --checkpoint-dir); "
             "rerun to resume",
    )
    p.add_argument(
        "--fleet-workers", type=int, default=1,
        help="worker processes for the day loop itself (sharded over "
             "shared memory; bit-identical to serial for any count)",
    )
    p.add_argument(
        "--window", type=int, default=0,
        help="max no-death window in days (0 = per-day stepping); "
             "batches death-free day spans without changing results",
    )
    p.add_argument(
        "--json", action="store_true", default=False,
        help="emit the fleet report as JSON",
    )
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "verify",
        help="statically check workloads/configs without simulating",
    )
    p.add_argument(
        "--workload", default="all",
        choices=["all", *available_workloads()],
        help="workload to check (default: all registered)",
    )
    p.add_argument(
        "--library", default="all",
        choices=["all", *_LIBRARY_NAMES],
        help="gate library to check (default: all built-ins)",
    )
    p.add_argument(
        "--config", dest="configs", metavar="LABEL", nargs="+",
        default=list(_VERIFY_CONFIGS),
        help="balance configuration labels to check "
             f"(default: {' '.join(_VERIFY_CONFIGS)})",
    )
    p.add_argument(
        "--functional", action="store_true", default=False,
        help="treat functional findings (uninitialized reads, dead "
             "writes, tag coverage) as errors, not warnings",
    )
    p.add_argument(
        "--fleet", action="store_true", default=False,
        help="verify a fleet campaign spec statically (shard plan "
             "disjointness and races, window bound, RNG stream "
             "discipline; RPR012-RPR016) instead of the workload sweep",
    )
    p.add_argument(
        "--self", dest="self_lint", action="store_true", default=False,
        help="run the repo self-lint (RPR018): registry append-only, "
             "telemetry event/counter vocabulary, __all__ consistency",
    )
    p.add_argument(
        "--shard-plan", default=None, metavar="FILE",
        help="verify a shard plan from a JSON file "
             '({"n_arrays": N, "bounds": [[lo, hi], ...]}) '
             "against RPR012/RPR013",
    )
    p.add_argument(
        "--arrays", type=int, default=512,
        help="population size for --fleet (default: the E36 spec's 512)",
    )
    p.add_argument(
        "--fleet-workers", type=int, default=8,
        help="worker count whose shard plan --fleet verifies",
    )
    p.add_argument(
        "--window", type=int, default=3650,
        help="declared no-death window --fleet verifies",
    )
    p.add_argument(
        "--traffic", choices=("deterministic", "poisson", "bursty"),
        default="poisson",
        help="arrival model for the --fleet stream-discipline checks",
    )
    p.add_argument(
        "--json", action="store_true", default=False,
        help="emit the merged report as JSON",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "trace",
        help="run a PIMulator-style trace as a workload (E35)",
    )
    p.add_argument(
        "--file", default=None, metavar="TRACE",
        help="trace file to load (default: the bundled GEMV fixture)",
    )
    p.add_argument(
        "--bits", type=int, default=8,
        help="operand width for the lowered compute ops",
    )
    p.add_argument(
        "--policy", choices=MAPPING_POLICIES, default="direct",
        help="address-to-lane mapping policy",
    )
    p.add_argument(
        "--config", dest="configs", metavar="LABEL", nargs="+",
        default=["StxSt", "BsxBs", "BsxBs+Hw"],
        help="balance configuration labels to verify and simulate",
    )
    p.add_argument("--iterations", type=int, default=2000)
    p.add_argument(
        "--verify-only", action="store_true", default=False,
        help="stop after the static checks (no simulation)",
    )
    _add_engine_flags(p)
    _add_sim_flags(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("stats", help="summarize a JSONL telemetry trace")
    p.add_argument("trace_file", help="trace produced with --trace FILE")
    p.set_defaults(func=cmd_stats)

    return parser


def _configure_telemetry(args) -> list:
    """Attach the sinks the telemetry flags ask for; returns them."""
    tele = get_telemetry()
    sinks = []
    if getattr(args, "log_level", None):
        level = getattr(logging, args.log_level.upper())
        logging.basicConfig(level=level, stream=sys.stderr)
        sinks.append(LoggingSink(level=level))
    if getattr(args, "trace", None):
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink())
    tele.sinks.extend(sinks)
    return sinks


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    sinks = _configure_telemetry(args)
    tele = get_telemetry()
    try:
        try:
            status = args.func(args)
        except VerificationError as error:
            # Pre-dispatch verification failures (e.g. RPR011: a config
            # the fast-forward must refuse) are user errors, not bugs —
            # render the report, not a traceback.
            print(error.report.render_text(), file=sys.stderr)
            return 1
    finally:
        for sink in sinks:
            if sink in tele.sinks:
                tele.sinks.remove(sink)
            sink.close()
    return int(status or 0)


if __name__ == "__main__":
    sys.exit(main())
