"""AST-based self-lint: repo invariants ruff cannot express (RPR018).

The codebase keeps several cross-file contracts that no off-the-shelf
linter knows about, and that used to be enforced only by convention:

* the diagnostic registry (:data:`repro.verify.diagnostics.CODES`) is
  append-only — a contiguous, ascending ``RPR001..RPRnnn`` dict literal
  with non-empty messages;
* every :class:`~repro.verify.diagnostics.Diagnostic` constructed with
  a literal code uses a registered code;
* every telemetry event emitted with a literal name appears in
  :data:`repro.telemetry.stats.EVENT_FIELDS` (so ``repro-endurance
  stats`` can always validate and census it);
* every counter/gauge name passed to ``Telemetry.count``/``gauge``
  appears in the documented registry
  :data:`repro.telemetry.stats.KNOWN_COUNTERS`;
* every ``__all__`` entry names something actually defined (or
  imported) at module top level, with no duplicates.

:func:`self_lint` walks every module under ``src/repro`` (or a caller-
supplied root) with :mod:`ast` — no imports of the linted code, so a
syntax-broken module is itself a finding rather than a crash — and
reports each violation as an ``RPR018`` diagnostic whose location
carries ``file:line``. ``repro-endurance verify --self`` runs exactly
this pass, and CI requires it clean.

Telemetry receivers are matched conservatively: only attribute calls on
names ``tele``/``telemetry``/``self`` or directly on
``get_telemetry()`` count, so ``str.count`` or an unrelated ``emit``
method cannot false-positive.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = ["self_lint"]

#: Receiver names whose ``.emit``/``.count``/``.gauge`` calls are
#: treated as telemetry calls.
_TELEMETRY_RECEIVERS = frozenset({"tele", "telemetry", "self"})


def _is_telemetry_receiver(node: ast.expr) -> bool:
    """Whether an attribute call's receiver is (very likely) telemetry."""
    if isinstance(node, ast.Name):
        return node.id in _TELEMETRY_RECEIVERS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "get_telemetry"
    return False


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    """The node's string value when it is a plain string literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _iter_sources(root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, repo-relative label)`` for every module in root."""
    for path in sorted(root.rglob("*.py")):
        yield path, path.relative_to(root.parent).as_posix()


def _top_level_names(tree: ast.Module) -> List[str]:
    """Names bound at module top level (including in top-level If/Try)."""
    names: List[str] = []

    def collect(body) -> None:
        for node in body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.append(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                names.append(element.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.append(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name.split(".")[0]
                    names.append(bound)
            elif isinstance(node, ast.If):
                collect(node.body)
                collect(node.orelse)
            elif isinstance(node, ast.Try):
                collect(node.body)
                collect(node.orelse)
                collect(node.finalbody)
                for handler in node.handlers:
                    collect(handler.body)

    collect(tree.body)
    return names


def _find_codes_dict(tree: ast.Module) -> Optional[ast.Dict]:
    """The ``CODES = {...}`` literal of the diagnostics module, if any."""
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "CODES"
            and isinstance(value, ast.Dict)
        ):
            return value
    return None


def _check_registry(
    tree: ast.Module, label: str
) -> List[Diagnostic]:
    """The append-only shape of the diagnostic registry literal."""
    diagnostics: List[Diagnostic] = []

    def finding(message: str, line: int, hint: Optional[str] = None):
        diagnostics.append(
            Diagnostic(
                "RPR018",
                Severity.ERROR,
                message,
                Location(place=f"{label}:{line}"),
                hint=hint,
            )
        )

    codes = _find_codes_dict(tree)
    if codes is None:
        finding(
            "diagnostics module has no CODES dict literal",
            1,
            "the registry must be a plain dict literal the linter can read",
        )
        return diagnostics
    keys: List[str] = []
    for key_node, value_node in zip(codes.keys, codes.values):
        key = _literal_str(key_node)
        if key is None:
            finding(
                "CODES key is not a string literal",
                getattr(key_node, "lineno", codes.lineno),
            )
            continue
        message = _literal_str(value_node)
        if not message:
            finding(
                f"CODES[{key!r}] message is not a non-empty string literal",
                getattr(value_node, "lineno", codes.lineno),
            )
        keys.append(key)
    expected = [f"RPR{i:03d}" for i in range(1, len(keys) + 1)]
    if keys != expected:
        finding(
            f"CODES keys are not contiguous ascending RPR001..RPR{len(keys):03d}"
            f" (got {keys})",
            codes.lineno,
            "the registry is append-only: never rename, reorder, or retire "
            "a code",
        )
    return diagnostics


def _check_module(
    tree: ast.Module,
    label: str,
    known_codes: frozenset,
    known_events: frozenset,
    known_counters: frozenset,
) -> List[Diagnostic]:
    """All per-module checks: calls with literal names, ``__all__``."""
    diagnostics: List[Diagnostic] = []

    def finding(message: str, line: int, hint: Optional[str] = None):
        diagnostics.append(
            Diagnostic(
                "RPR018",
                Severity.ERROR,
                message,
                Location(place=f"{label}:{line}"),
                hint=hint,
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # Diagnostic("RPRnnn", ...) with a literal code.
        if isinstance(func, ast.Name) and func.id == "Diagnostic":
            code = None
            if node.args:
                code = _literal_str(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "code":
                    code = _literal_str(keyword.value)
            if code is not None and code not in known_codes:
                finding(
                    f"Diagnostic constructed with unregistered code {code!r}",
                    node.lineno,
                    "register the code in repro.verify.diagnostics.CODES",
                )
        # tele.emit("event", ...) / tele.count("name") / tele.gauge("name")
        if isinstance(func, ast.Attribute) and _is_telemetry_receiver(
            func.value
        ):
            name = _literal_str(node.args[0]) if node.args else None
            if name is None:
                continue
            if func.attr == "emit" and name not in known_events:
                finding(
                    f"telemetry event {name!r} is not declared in "
                    "EVENT_FIELDS",
                    node.lineno,
                    "add the event and its required fields to "
                    "repro.telemetry.stats.EVENT_FIELDS",
                )
            elif func.attr in ("count", "gauge") and (
                name not in known_counters
            ):
                finding(
                    f"counter name {name!r} is not in the documented "
                    "KNOWN_COUNTERS registry",
                    node.lineno,
                    "add the name to repro.telemetry.stats.KNOWN_COUNTERS "
                    "and document it in docs/observability.md",
                )
    # __all__ consistency.
    defined = set(_top_level_names(tree))
    for node in tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
        ):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            finding("__all__ is not a list/tuple literal", node.lineno)
            continue
        seen = set()
        for element in node.value.elts:
            name = _literal_str(element)
            if name is None:
                finding(
                    "__all__ entry is not a string literal",
                    getattr(element, "lineno", node.lineno),
                )
                continue
            if name in seen:
                finding(
                    f"__all__ lists {name!r} more than once",
                    getattr(element, "lineno", node.lineno),
                )
            seen.add(name)
            if name not in defined:
                finding(
                    f"__all__ exports {name!r}, which the module never "
                    "defines or imports",
                    getattr(element, "lineno", node.lineno),
                )
    return diagnostics


def self_lint(
    root: Optional[Union[str, Path]] = None
) -> List[Diagnostic]:
    """RPR018: lint every module under ``root`` for repo invariants.

    Args:
        root: Package directory to walk; defaults to the installed
            ``repro`` package (i.e. the shipped tree lints itself).

    Returns:
        One diagnostic per violation, each located at ``file:line``
        relative to the package parent. A module that fails to parse is
        reported rather than raised, so the lint always completes.
    """
    from repro.telemetry.stats import EVENT_FIELDS, KNOWN_COUNTERS
    from repro.verify.diagnostics import CODES

    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"lint root {root} is not a directory")
    known_codes = frozenset(CODES)
    known_events = frozenset(EVENT_FIELDS)
    known_counters = frozenset(KNOWN_COUNTERS)
    diagnostics: List[Diagnostic] = []
    for path, label in _iter_sources(root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    "RPR018",
                    Severity.ERROR,
                    f"module does not parse: {exc.msg}",
                    Location(place=f"{label}:{exc.lineno or 1}"),
                )
            )
            continue
        if path.name == "diagnostics.py" and path.parent.name == "verify":
            diagnostics.extend(_check_registry(tree, label))
        diagnostics.extend(
            _check_module(
                tree, label, known_codes, known_events, known_counters
            )
        )
    return diagnostics
