"""High-level entry points composing the static-analysis passes.

Callers pick the surface that matches what they hold:

* :func:`verify_program` — one :class:`LaneProgram`;
* :func:`verify_mapping` — a built :class:`WorkloadMapping` (plus,
  optionally, the balance configuration it will run under);
* :func:`verify_network` — interconnected programs exchanging tagged
  read-out streams;
* :func:`verify_spec` — a declarative engine :class:`JobSpec`, checked
  before any simulation is dispatched.

``functional=False`` relaxes the value-semantics codes (RPR001, RPR002,
RPR004) to warnings: wear simulations never execute gate values, so a
wear-view canonical program with placeholder transfer tags is legal
there even though it could not be *evaluated*. Structural codes (bounds,
hazards, conservation, permutations, schedules) stay errors — they
corrupt wear accounting no matter the execution mode.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.synth.program import ExternalBit, LaneProgram, ReadInstr, WriteInstr
from repro.telemetry import get_telemetry
from repro.verify.concurrency import (
    check_shard_plan,
    check_shard_races,
    check_window_bound,
)
from repro.verify.dataflow import check_bounds, check_dataflow, check_levels
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    VerifyReport,
)
from repro.verify.lint import self_lint
from repro.verify.streams import check_streams
from repro.verify.wear import (
    check_config,
    check_fastforward,
    check_profile_conservation,
    check_schedule,
)

__all__ = [
    "VerificationError",
    "verify_program",
    "verify_mapping",
    "verify_network",
    "verify_spec",
    "verify_fleet_spec",
    "verify_self",
]

#: Codes that assert value semantics rather than wear accounting.
FUNCTIONAL_CODES = frozenset({"RPR001", "RPR002", "RPR004"})


class VerificationError(ValueError):
    """A verification run found errors and the caller demanded none.

    Attributes:
        report: The full :class:`VerifyReport`, for inspection.
    """

    def __init__(self, report: VerifyReport) -> None:
        self.report = report
        super().__init__(report.render_text())


def _relax_functional(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Downgrade value-semantics findings to warnings (wear-only mode)."""
    relaxed = []
    for diagnostic in diagnostics:
        if (
            diagnostic.code in FUNCTIONAL_CODES
            and diagnostic.severity is Severity.ERROR
        ):
            diagnostic = Diagnostic(
                diagnostic.code,
                Severity.WARNING,
                diagnostic.message,
                diagnostic.location,
                diagnostic.hint,
            )
        relaxed.append(diagnostic)
    return relaxed


def _finish(diagnostics: List[Diagnostic]) -> VerifyReport:
    """Wrap findings in a report and count them in telemetry."""
    report = VerifyReport(diagnostics)
    tele = get_telemetry()
    tele.count("verify.runs")
    if len(report):
        tele.count("verify.diagnostics", len(report))
        # Surface the codes themselves in the trace so `repro-endurance
        # stats` can census them alongside the counters.
        tele.emit(
            "verify_report",
            codes=report.codes(),
            errors=len(report.errors),
            warnings=len(report.warnings),
            total=len(report),
        )
    if report.errors:
        tele.count("verify.errors", len(report.errors))
    return report


def _check_program(
    program: LaneProgram,
    lane_size: Optional[int],
    writes_per_gate: int,
    spare_bit: bool,
) -> List[Diagnostic]:
    diagnostics = list(check_dataflow(program))
    if lane_size is not None:
        diagnostics.extend(check_bounds(program, lane_size, spare_bit))
    diagnostics.extend(check_levels(program))
    diagnostics.extend(
        check_profile_conservation(program, writes_per_gate, lane_size)
    )
    return diagnostics


def verify_program(
    program: LaneProgram,
    lane_size: Optional[int] = None,
    writes_per_gate: int = 1,
    spare_bit: bool = False,
) -> VerifyReport:
    """Statically check one lane program.

    Runs the dataflow pass (RPR001/002/004), the bounds pass when a
    ``lane_size`` is given (RPR003/009), the compiled-level hazard pass
    (RPR005), and profile conservation (RPR006).
    """
    return _finish(
        _check_program(program, lane_size, writes_per_gate, spare_bit)
    )


def verify_mapping(
    mapping,
    config=None,
    functional: bool = True,
) -> VerifyReport:
    """Statically check a built workload mapping.

    Args:
        mapping: A :class:`~repro.workloads.base.WorkloadMapping`.
        config: Optional :class:`~repro.balance.config.BalanceConfig`;
            when given, its permutation streams are validated (RPR007/
            010) and hardware re-mapping's spare-bit requirement is
            enforced (RPR009).
        functional: When False, the value-semantics codes (RPR001/002/
            004) are reported as warnings — a wear-only simulation never
            executes gate values.
    """
    architecture = mapping.architecture
    lane_size = architecture.lane_size
    writes_per_gate = architecture.writes_per_gate
    spare_bit = bool(config.hardware) if config is not None else False
    diagnostics: List[Diagnostic] = []
    for program in mapping.distinct_programs():
        diagnostics.extend(
            _check_program(program, lane_size, writes_per_gate, spare_bit)
        )
    if not functional:
        diagnostics = _relax_functional(diagnostics)
    diagnostics.extend(check_schedule(mapping))
    if config is not None:
        lane_loads = np.zeros(architecture.lane_count)
        include = architecture.presets_output
        for lane, program in mapping.assignment.items():
            lane_loads[lane] = program.write_counts(
                include_presets=include
            ).sum()
        diagnostics.extend(
            check_config(
                config,
                lane_size,
                architecture.lane_count,
                lane_loads=lane_loads,
            )
        )
    return _finish(diagnostics)


def verify_network(
    programs: Mapping[int, LaneProgram],
    order: Sequence[int],
    externals: Sequence[str] = (),
) -> VerifyReport:
    """Statically check interconnected programs (tagged stream wiring).

    Proves that :func:`~repro.workloads.base.evaluate_networked` over
    ``order`` cannot fail on the wiring: every consumed transfer tag is
    produced by an earlier lane (or pre-seeded via ``externals``), the
    producer's stream is wide enough for every consumer, and no two
    lanes produce the same tag. A produced-but-unconsumed tag is *not*
    flagged — the network's final result leaves through exactly such a
    tag.
    """
    diagnostics: List[Diagnostic] = []
    if set(order) != set(programs):
        diagnostics.append(
            Diagnostic(
                "RPR004",
                Severity.ERROR,
                "evaluation order must cover exactly the mapped lanes",
                Location(place=f"order {list(order)!r}"),
                hint="every lane appears once; no extras",
            )
        )
        return _finish(diagnostics)
    for lane in order:
        diagnostics.extend(check_dataflow(programs[lane]))
    produced = {tag: -1 for tag in externals}  # tag -> width (-1: unknown)
    for lane in order:
        program = programs[lane]
        for index, instr in enumerate(program.instructions):
            if isinstance(instr, WriteInstr) and isinstance(
                instr.source, ExternalBit
            ):
                tag = instr.source.tag
                if tag not in produced:
                    diagnostics.append(
                        Diagnostic(
                            "RPR004",
                            Severity.ERROR,
                            f"lane {lane} consumes transfer tag {tag!r}, "
                            "which no earlier lane produces",
                            Location(program.name, index, place=f"lane {lane}"),
                            hint="senders must precede their receivers in "
                            "the evaluation order",
                        )
                    )
                    produced[tag] = -1  # report once per tag
                elif 0 <= produced[tag] <= instr.source.index:
                    diagnostics.append(
                        Diagnostic(
                            "RPR004",
                            Severity.ERROR,
                            f"lane {lane} reads slot {instr.source.index} of "
                            f"transfer tag {tag!r}, which carries only "
                            f"{produced[tag]} bit(s)",
                            Location(program.name, index, place=f"lane {lane}"),
                            hint="widen the producer's tagged read-out or "
                            "narrow the consumer",
                        )
                    )
        tags_here = {}
        for instr in program.instructions:
            if isinstance(instr, ReadInstr) and instr.tag is not None:
                tags_here[instr.tag] = (
                    max(tags_here.get(instr.tag, -1), instr.index)
                )
        for tag, top in tags_here.items():
            if tag in produced and produced[tag] != -1:
                diagnostics.append(
                    Diagnostic(
                        "RPR004",
                        Severity.ERROR,
                        f"transfer tag {tag!r} is produced by more than one "
                        f"lane (duplicate at lane {lane})",
                        Location(program.name, place=f"lane {lane}"),
                        hint="tags name point-to-point streams; make them "
                        "unique per sender",
                    )
                )
            else:
                produced[tag] = top + 1
    return _finish(diagnostics)


def verify_spec(spec) -> VerifyReport:
    """Statically check a declarative engine job before dispatch.

    Duck-typed over anything exposing ``workload``, ``architecture``,
    and (optionally) ``config`` — in practice a
    :class:`~repro.engine.spec.JobSpec`. Builds the workload mapping
    and runs :func:`verify_mapping` in wear-only mode, since the engine
    simulates wear rather than values.
    """
    mapping = spec.workload.build(spec.architecture)
    report = verify_mapping(
        mapping, getattr(spec, "config", None), functional=False
    )
    config = getattr(spec, "config", None)
    if config is not None and getattr(spec, "fastforward", False):
        # A spec that asks for the analytic fast-forward must also pass
        # the RPR011 eligibility gate — the engine rejects it up front
        # instead of failing (or worse, approximating) mid-dispatch.
        report = report.merged(VerifyReport(check_fastforward(config)))
    return report


#: Memo for :func:`verify_fleet_spec`, keyed on the facts the passes
#: actually consume. The fleet service verifies on every ``run()``;
#: repeated runs of one campaign (resume, benchmarks, worker sweeps)
#: should pay the analysis once.
_FLEET_VERIFY_CACHE: dict = {}


def verify_fleet_spec(spec, use_cache: bool = True) -> VerifyReport:
    """Statically check a fleet campaign spec before any day runs.

    Duck-typed over anything shaped like a
    :class:`~repro.fleet.service.FleetSpec`. Composes the whole-system
    passes:

    * the shard plan the campaign would execute under
      (``ShardPlan.build(n_arrays, fleet_workers)``) must be a disjoint
      exact cover (RPR012) and race-free under the executor's access
      model (RPR013) — :mod:`repro.verify.concurrency`;
    * the declared no-death window bound must be sound (RPR014);
    * every seeded substream derivation must be collision-free (RPR015)
      and the windowed traffic path's declared draw order stream-exact
      (RPR016) — :mod:`repro.verify.streams`;
    * every cohort's balance configuration must validate (RPR007/010),
      plus RPR011 fast-forward eligibility when the spec asks for it.

    Results are memoized on ``(content_hash, fleet_workers, window,
    fastforward)`` — the campaign identity plus the hash-excluded
    execution knobs the passes read — so gating every
    :meth:`FleetService.run` costs one analysis per distinct campaign
    shape. Pass ``use_cache=False`` to force a fresh run (benchmarks
    measuring analysis cost do).
    """
    from repro.array.architecture import default_architecture
    from repro.balance.config import BalanceConfig
    from repro.fleet.parallel import ShardPlan

    key = None
    if use_cache:
        key = (
            spec.content_hash,
            int(spec.fleet_workers),
            int(spec.window),
            bool(spec.fastforward),
        )
        cached = _FLEET_VERIFY_CACHE.get(key)
        if cached is not None:
            return cached
    cohorts = spec.population.cohorts
    plan = ShardPlan.build(
        spec.population.n_arrays, int(spec.fleet_workers)
    )
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(check_shard_plan(plan))
    diagnostics.extend(check_shard_races(plan, n_cohorts=len(cohorts)))
    diagnostics.extend(check_window_bound(int(spec.window)))
    diagnostics.extend(check_streams(spec))
    architecture = default_architecture(spec.rows, spec.cols)
    for cohort in cohorts:
        config = BalanceConfig.from_label(cohort.config)
        cohort_findings = check_config(
            config,
            architecture.lane_size,
            architecture.lane_count,
            seed=spec.seed,
        )
        if spec.fastforward:
            cohort_findings = list(cohort_findings) + list(
                check_fastforward(config)
            )
        for diagnostic in cohort_findings:
            location = diagnostic.location
            if location.place is None:
                location = Location(
                    location.program,
                    location.instruction,
                    location.address,
                    f"cohort {cohort.key!r}",
                )
            diagnostics.append(
                Diagnostic(
                    diagnostic.code,
                    diagnostic.severity,
                    diagnostic.message,
                    location,
                    diagnostic.hint,
                )
            )
    report = _finish(diagnostics)
    if key is not None:
        _FLEET_VERIFY_CACHE[key] = report
    return report


def verify_self(root=None) -> VerifyReport:
    """Run the repo self-lint (RPR018) and wrap it in a report.

    Args:
        root: Package directory to lint; defaults to the installed
            ``repro`` tree. See :func:`repro.verify.lint.self_lint`.
    """
    return _finish(list(self_lint(root)))
