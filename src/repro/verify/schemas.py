"""Versioned artifact schema validation (checkpoints, manifests, traces).

The repo persists three kinds of JSON artifacts that later runs (and
humans) consume: fleet checkpoint files
(:mod:`repro.fleet.checkpoint`), per-run store manifests
(:meth:`repro.engine.store.ResultStore._write_manifest`), and JSONL
telemetry traces (:mod:`repro.telemetry.stats`). Each has a declared
shape; silently drifting from it turns into "resume quietly starts
over" or "stats renders nothing" bugs. This pass validates an artifact
against its schema and reports every violation as ``RPR017``.

* :func:`check_checkpoint` — envelope (``version`` /
  ``campaign_hash`` / ``day`` / ``state``), the campaign-state keys,
  and the per-array vector length agreement.
* :func:`check_manifest` — the required provenance keys every run
  manifest carries.
* :func:`check_trace` — per-line JSONL schema validation, wrapping
  :class:`~repro.telemetry.stats.TraceSchemaError` into diagnostics
  with line-numbered locations.

All checkers accept already-parsed payloads (dicts / record iterables)
so tests and tools can validate without touching the filesystem;
:func:`check_trace` also accepts a path.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "CHECKPOINT_STATE_KEYS",
    "MANIFEST_KEYS",
    "check_checkpoint",
    "check_manifest",
    "check_trace",
]

#: Keys every checkpointed campaign state carries
#: (:meth:`repro.fleet.service._CampaignState.to_json`).
CHECKPOINT_STATE_KEYS = frozenset(
    {
        "day",
        "cumulative",
        "death_day",
        "served",
        "dropped",
        "traffic_state",
        "rng_state",
    }
)

#: Keys every per-run store manifest carries
#: (:meth:`repro.engine.store.ResultStore._write_manifest`).
MANIFEST_KEYS = frozenset(
    {
        "content_hash",
        "label",
        "seed",
        "kernel",
        "chunk_size",
        "backend",
        "fastforward",
        "numpy_version",
        "blas",
        "iterations",
        "track_reads",
        "wall_s",
        "telemetry",
    }
)


def _missing(payload: Dict, required: frozenset) -> List[str]:
    return sorted(required - payload.keys())


def check_checkpoint(payload) -> List[Diagnostic]:
    """RPR017: validate one fleet checkpoint payload.

    Checks the versioned envelope (``version`` must equal the current
    :data:`repro.fleet.checkpoint.CHECKPOINT_VERSION`, ``campaign_hash``
    a string, ``day`` a non-negative int), the campaign-state keys
    (:data:`CHECKPOINT_STATE_KEYS`), and that the per-array vectors
    agree in length — a truncated ``cumulative`` would scatter-resume
    garbage.
    """
    from repro.fleet.checkpoint import CHECKPOINT_VERSION

    place = "checkpoint"
    if not isinstance(payload, dict):
        return [
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                f"checkpoint payload is {type(payload).__name__}, "
                "not a JSON object",
                Location(place=place),
            )
        ]
    diagnostics: List[Diagnostic] = []
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                f"checkpoint version {version!r} != current "
                f"CHECKPOINT_VERSION {CHECKPOINT_VERSION}",
                Location(place=place),
                hint="stale-version checkpoints are ignored on resume",
            )
        )
    if not isinstance(payload.get("campaign_hash"), str):
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                "checkpoint 'campaign_hash' is missing or not a string",
                Location(place=place),
            )
        )
    day = payload.get("day")
    if not isinstance(day, int) or isinstance(day, bool) or day < 0:
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                f"checkpoint 'day' {day!r} is not a non-negative integer",
                Location(place=place),
            )
        )
    state = payload.get("state")
    if not isinstance(state, dict):
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                "checkpoint 'state' is missing or not an object",
                Location(place=place),
            )
        )
        return diagnostics
    missing = _missing(state, CHECKPOINT_STATE_KEYS)
    if missing:
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                "checkpoint state missing required key(s): "
                + ", ".join(missing),
                Location(place=f"{place} state"),
            )
        )
    cumulative = state.get("cumulative")
    death_day = state.get("death_day")
    if (
        isinstance(cumulative, list)
        and isinstance(death_day, list)
        and len(cumulative) != len(death_day)
    ):
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                f"checkpoint per-array vectors disagree: "
                f"{len(cumulative)} cumulative vs {len(death_day)} "
                "death_day entries",
                Location(place=f"{place} state"),
            )
        )
    return diagnostics


def check_manifest(payload) -> List[Diagnostic]:
    """RPR017: validate one per-run store manifest.

    Every manifest the store writes carries the full provenance set
    (:data:`MANIFEST_KEYS`); a manifest missing any of them came from a
    drifted writer and would break manifest-streaming aggregation.
    """
    place = "manifest"
    if not isinstance(payload, dict):
        return [
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                f"manifest payload is {type(payload).__name__}, "
                "not a JSON object",
                Location(place=place),
            )
        ]
    diagnostics: List[Diagnostic] = []
    missing = _missing(payload, MANIFEST_KEYS)
    if missing:
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                "manifest missing required key(s): " + ", ".join(missing),
                Location(place=place),
            )
        )
    if "content_hash" in payload and not isinstance(
        payload["content_hash"], str
    ):
        diagnostics.append(
            Diagnostic(
                "RPR017",
                Severity.ERROR,
                "manifest 'content_hash' is not a string",
                Location(place=place),
            )
        )
    return diagnostics


def check_trace(trace: Union[str, Iterable[str]]) -> List[Diagnostic]:
    """RPR017: validate a JSONL telemetry trace line by line.

    Args:
        trace: A trace file path, or an iterable of raw JSONL lines.

    Every malformed line — unparsable JSON, a missing envelope field, a
    known event missing one of its :data:`~repro.telemetry.stats.
    EVENT_FIELDS` requirements — becomes one diagnostic with the line
    number in its location, instead of the first one aborting the scan
    the way ``repro-endurance stats`` does.
    """
    from repro.telemetry.stats import TraceSchemaError, validate_record

    if isinstance(trace, str):
        with open(trace, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    else:
        lines = list(trace)
    diagnostics: List[Diagnostic] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            diagnostics.append(
                Diagnostic(
                    "RPR017",
                    Severity.ERROR,
                    f"trace line is not valid JSON ({exc.msg})",
                    Location(place=f"line {number}"),
                )
            )
            continue
        try:
            validate_record(record, number)
        except TraceSchemaError as exc:
            diagnostics.append(
                Diagnostic(
                    "RPR017",
                    Severity.ERROR,
                    str(exc),
                    Location(place=f"line {number}"),
                )
            )
    return diagnostics
