"""Static concurrency analysis of the parallel fleet day loop.

The parallel executor (:mod:`repro.fleet.parallel`) advances the
campaign day loop through shard workers that share one raw
``multiprocessing.shared_memory`` block — no locks, no pickled state,
just an ownership discipline: worker *w* only writes array indices in
its shard's ``[lo, hi)`` range (and the matching gather-scratch
columns), and the parent folds scratch segments at fixed shard offsets.
That discipline is what makes the whole design race-free and
bit-identical for any worker count, and until now it was enforced only
by construction and by tests that *run* campaigns.

This pass proves it statically, without executing a single fleet day:

* :func:`check_shard_plan` — the :class:`~repro.fleet.parallel.ShardPlan`
  must be a disjoint exact cover of the population index space
  (``RPR012``): in-range bounds, no overlap, no gap, full coverage.
* :func:`check_shard_races` — a plan-level race detector (``RPR013``).
  :func:`executor_access_plan` models every protocol step of
  :class:`~repro.fleet.parallel.ParallelDayExecutor` as per-worker
  read/write interval sets over the shared-memory regions
  (``cumulative`` / ``death_day`` / ``thresholds`` / ``capacities`` /
  ``cohort_index`` / per-cohort ``scratch``); the checker then proves no
  two workers' write regions overlap in any step, and that the parent
  reductions read gather scratch only at fixed, ascending shard base
  offsets (the fold-order property behind bit-identical reductions).
* :func:`check_window_bound` — re-proves the ``no_death_window``
  capacity bound per spec (``RPR014``): the declared window must stay
  under the hard cap that keeps the float64 rounding-drift margin
  valid, and — when concrete campaign vectors are supplied — the
  per-array bound ``window x per-day wear <= headroom margin`` must
  actually hold.

Everything here is pure interval arithmetic over the plan; the fleet
modules are imported lazily inside functions so ``repro.fleet`` can
import ``repro.verify`` for its own pre-run gating without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "RegionAccess",
    "check_shard_plan",
    "check_shard_races",
    "check_window_bound",
    "executor_access_plan",
]

#: The shared-memory regions of ``CampaignSharedMemory``, in layout
#: order. ``scratch`` intervals are per-cohort columns; the rest are
#: flat per-array vectors.
SHARED_REGIONS = (
    "cumulative",
    "death_day",
    "thresholds",
    "capacities",
    "cohort_index",
    "scratch",
)

#: The executor protocol steps a worker serves, in phase order.
PROTOCOL_STEPS = ("headroom", "advance", "window")


@dataclass(frozen=True)
class RegionAccess:
    """One interval access in the static executor model.

    Attributes:
        step: Protocol step (:data:`PROTOCOL_STEPS`) or ``"fold"`` for
            the parent-side reduction read.
        worker: Worker (shard) index; ``-1`` for the parent.
        region: A :data:`SHARED_REGIONS` name.
        mode: ``"read"`` or ``"write"``.
        lo: Inclusive interval start (array index).
        hi: Exclusive interval end.
    """

    step: str
    worker: int
    region: str
    mode: str
    lo: int
    hi: int

    def overlaps(self, other: "RegionAccess") -> bool:
        """Whether two accesses touch a common index of the same region."""
        return (
            self.region == other.region
            and self.lo < other.hi
            and other.lo < self.hi
        )


def executor_access_plan(plan) -> List[RegionAccess]:
    """The full static access model of one executor day/window cycle.

    Derived from the worker protocol in
    :func:`repro.fleet.parallel._worker_main` and the parent fold in
    :meth:`repro.fleet.parallel.ParallelDayExecutor._fold`, per worker
    ``w`` owning ``[lo, hi)``:

    * ``headroom`` reads ``thresholds``/``cumulative`` over ``[lo, hi)``
      and writes the cohort scratch columns ``[lo, lo + n_live)`` —
      conservatively widened to ``[lo, hi)`` since ``n_live <= hi - lo``.
    * ``advance`` additionally reads ``capacities`` and writes
      ``cumulative``, ``death_day``, and scratch over ``[lo, hi)``.
    * ``window`` reads ``capacities``/``cumulative`` and writes
      ``cumulative`` and scratch over ``[lo, hi)``.
    * the parent ``fold`` reads each shard's scratch segment based at
      that shard's ``lo`` (worker ``-1``).

    Scratch columns are identical across cohorts in this model (every
    cohort row spans the same per-shard interval), so intervals are
    expressed once per region; a diagnostic about ``scratch`` applies to
    every cohort row.

    Args:
        plan: A :class:`repro.fleet.parallel.ShardPlan` (duck-typed:
            anything with ``bounds`` and ``n_arrays``).
    """
    reads = {
        "headroom": ("thresholds", "cumulative", "cohort_index"),
        "advance": ("thresholds", "cumulative", "capacities"),
        "window": ("cumulative", "capacities"),
    }
    writes = {
        "headroom": ("scratch",),
        "advance": ("cumulative", "death_day", "scratch"),
        "window": ("cumulative", "scratch"),
    }
    accesses: List[RegionAccess] = []
    for worker, (lo, hi) in enumerate(plan.bounds):
        for step in PROTOCOL_STEPS:
            for region in reads[step]:
                accesses.append(
                    RegionAccess(step, worker, region, "read", lo, hi)
                )
            for region in writes[step]:
                accesses.append(
                    RegionAccess(step, worker, region, "write", lo, hi)
                )
        # The parent folds this shard's scratch segment [lo, lo+count);
        # count <= hi - lo, so [lo, hi) is the conservative envelope.
        accesses.append(RegionAccess("fold", -1, "scratch", "read", lo, hi))
    return accesses


def check_shard_plan(plan) -> List[Diagnostic]:
    """RPR012: the plan must be a disjoint exact cover of ``[0, n)``.

    Four properties, each with its own finding: every bound is an
    in-range, non-empty ``lo < hi`` interval; no two shards overlap; no
    index between shards is left unowned (gap); and the union reaches
    both ends of the population. A population index owned by zero
    shards would silently never advance; one owned by two is a write
    race (also reported by :func:`check_shard_races`).
    """
    diagnostics: List[Diagnostic] = []
    n = int(plan.n_arrays)
    if n < 1:
        diagnostics.append(
            Diagnostic(
                "RPR012",
                Severity.ERROR,
                f"population size {n} is not positive",
                Location(place="shard plan"),
            )
        )
        return diagnostics
    if not plan.bounds:
        diagnostics.append(
            Diagnostic(
                "RPR012",
                Severity.ERROR,
                f"empty shard plan leaves all {n} arrays uncovered",
                Location(place="shard plan"),
            )
        )
        return diagnostics
    valid: List[Tuple[int, int, int]] = []
    for shard, (lo, hi) in enumerate(plan.bounds):
        place = f"shard {shard} [{lo}, {hi})"
        if not (0 <= lo < hi <= n):
            diagnostics.append(
                Diagnostic(
                    "RPR012",
                    Severity.ERROR,
                    f"shard bounds [{lo}, {hi}) are not a non-empty "
                    f"sub-interval of [0, {n})",
                    Location(place=place),
                    hint="each shard needs 0 <= lo < hi <= n_arrays",
                )
            )
            continue
        valid.append((lo, hi, shard))
    if not valid:
        return diagnostics
    covered_to: Optional[int] = None
    for lo, hi, shard in sorted(valid):
        if covered_to is None:
            if lo != 0:
                diagnostics.append(
                    Diagnostic(
                        "RPR012",
                        Severity.ERROR,
                        f"arrays [0, {lo}) are covered by no shard",
                        Location(place=f"shard {shard} [{lo}, {hi})"),
                        hint="the first shard must start at array 0",
                    )
                )
        elif lo > covered_to:
            diagnostics.append(
                Diagnostic(
                    "RPR012",
                    Severity.ERROR,
                    f"arrays [{covered_to}, {lo}) are covered by no shard",
                    Location(place=f"shard {shard} [{lo}, {hi})"),
                    hint="consecutive shards must tile with no gap",
                )
            )
        elif lo < covered_to:
            diagnostics.append(
                Diagnostic(
                    "RPR012",
                    Severity.ERROR,
                    f"arrays [{lo}, {min(hi, covered_to)}) are covered by "
                    "more than one shard",
                    Location(place=f"shard {shard} [{lo}, {hi})"),
                    hint="shards must be pairwise disjoint",
                )
            )
        covered_to = hi if covered_to is None else max(covered_to, hi)
    if covered_to is not None and covered_to < n:
        diagnostics.append(
            Diagnostic(
                "RPR012",
                Severity.ERROR,
                f"arrays [{covered_to}, {n}) are covered by no shard",
                Location(place="shard plan"),
                hint="the last shard must end at n_arrays",
            )
        )
    return diagnostics


def check_shard_races(plan, n_cohorts: int = 1) -> List[Diagnostic]:
    """RPR013: the plan-level race detector over the executor model.

    Builds the full :func:`executor_access_plan` and proves, per
    protocol step and shared region, that no two workers' *write*
    intervals intersect — the lock-free ownership invariant the real
    executor relies on. It then checks the parent-side reductions: fold
    reads must hit gather scratch at each shard's own base offset, in
    strictly ascending order (out-of-order segments would concatenate a
    differently-ordered vector and break the bit-identical-reduction
    argument, and overlapping segments read cells two workers wrote).

    Args:
        plan: The shard plan under test.
        n_cohorts: Cohort count (documentation of scope only — scratch
            findings apply to every cohort row; the interval math is
            row-independent).
    """
    if n_cohorts < 1:
        raise ValueError("n_cohorts must be positive")
    diagnostics: List[Diagnostic] = []
    accesses = executor_access_plan(plan)
    writes = [a for a in accesses if a.mode == "write"]
    by_step: dict = {}
    for access in writes:
        by_step.setdefault((access.step, access.region), []).append(access)
    for (step, region), group in sorted(by_step.items()):
        group = sorted(group, key=lambda a: (a.lo, a.hi, a.worker))
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                if first.worker == second.worker or not first.overlaps(
                    second
                ):
                    continue
                diagnostics.append(
                    Diagnostic(
                        "RPR013",
                        Severity.ERROR,
                        f"workers {first.worker} and {second.worker} both "
                        f"write {region}[{second.lo}, "
                        f"{min(first.hi, second.hi)}) in the {step!r} step",
                        Location(place=f"step {step!r}, region {region!r}"),
                        hint="shard write regions must be pairwise disjoint",
                    )
                )
    # Parent fold reads: fixed shard offsets, strictly ascending bases.
    folds = [a for a in accesses if a.step == "fold"]
    for shard, (fold, (lo, hi)) in enumerate(zip(folds, plan.bounds)):
        if fold.lo != lo or fold.hi > hi:
            diagnostics.append(
                Diagnostic(
                    "RPR013",
                    Severity.ERROR,
                    f"parent reduction reads scratch[{fold.lo}, {fold.hi}) "
                    f"for shard {shard}, outside its fixed offset "
                    f"[{lo}, {hi})",
                    Location(place=f"fold, shard {shard}"),
                    hint="reductions must read each shard's own segment",
                )
            )
    for shard, (first, second) in enumerate(zip(folds, folds[1:])):
        if second.lo < first.hi:
            diagnostics.append(
                Diagnostic(
                    "RPR013",
                    Severity.ERROR,
                    f"parent reduction folds shard {shard + 1}'s scratch "
                    f"segment [{second.lo}, {second.hi}) out of ascending "
                    f"order after [{first.lo}, {first.hi})",
                    Location(place=f"fold, shard {shard + 1}"),
                    hint="fold segments in ascending shard order or the "
                    "reduction is not bit-identical to the serial loop",
                )
            )
    return diagnostics


def check_window_bound(
    window: int,
    per_day_max: Optional[Sequence[float]] = None,
    thresholds: Optional[Sequence[float]] = None,
    cumulative: Optional[Sequence[float]] = None,
) -> List[Diagnostic]:
    """RPR014: re-prove the no-death window bound for a spec.

    Two layers:

    * **Spec-level** (always): the declared maximum window must not
      exceed :data:`repro.fleet.parallel.MAX_WINDOW`, and the float64
      rounding-drift proof behind
      :data:`repro.fleet.parallel.WINDOW_MARGIN` must still hold at the
      declared size (``window * 2**-53 < WINDOW_MARGIN`` — ``window``
      consecutive additions drift by at most ``window`` ulps).
    * **Campaign-level** (when concrete vectors are supplied): the
      capacity bound itself, per array — ``window * per_day_max[i]``
      must not exceed the margin-shrunk headroom ``thresholds[i] *
      (1 - WINDOW_MARGIN) - cumulative[i]``, i.e. no array can possibly
      cross its death threshold inside the window. This is the exact
      form :func:`repro.fleet.parallel.no_death_window` floors, so
      every runtime-derived window passes and ``window + 1`` fails.

    Args:
        window: The declared maximum no-death window, in days (0
            disables window stepping and is trivially sound).
        per_day_max: Optional per-array upper bound on daily wear.
        thresholds: Optional per-array death thresholds.
        cumulative: Optional per-array accumulated iterations.
    """
    from repro.fleet.parallel import MAX_WINDOW, WINDOW_MARGIN

    diagnostics: List[Diagnostic] = []
    if window < 0:
        diagnostics.append(
            Diagnostic(
                "RPR014",
                Severity.ERROR,
                f"window {window} is negative",
                Location(place="window bound"),
            )
        )
        return diagnostics
    if window == 0:
        return diagnostics
    if window > MAX_WINDOW:
        diagnostics.append(
            Diagnostic(
                "RPR014",
                Severity.ERROR,
                f"declared window {window} exceeds the rounding-proof cap "
                f"MAX_WINDOW = {MAX_WINDOW}",
                Location(place="window bound"),
                hint="the WINDOW_MARGIN drift analysis only covers windows "
                "up to MAX_WINDOW days",
            )
        )
    drift = window * 2.0 ** -53
    if drift >= WINDOW_MARGIN:
        diagnostics.append(
            Diagnostic(
                "RPR014",
                Severity.ERROR,
                f"worst-case rounding drift of {window} consecutive float64 "
                f"additions ({drift:.3e}) reaches WINDOW_MARGIN "
                f"({WINDOW_MARGIN:.0e})",
                Location(place="window bound"),
                hint="shrink the window or widen WINDOW_MARGIN",
            )
        )
    supplied = [per_day_max, thresholds, cumulative]
    if any(v is not None for v in supplied):
        if any(v is None for v in supplied):
            raise ValueError(
                "per_day_max, thresholds, and cumulative must be supplied "
                "together"
            )
        rate = np.asarray(per_day_max, dtype=float)
        thr = np.asarray(thresholds, dtype=float)
        cum = np.asarray(cumulative, dtype=float)
        if not (len(rate) == len(thr) == len(cum)):
            raise ValueError("campaign vectors must share one length")
        if len(rate):
            margin = thr * (1.0 - WINDOW_MARGIN) - cum
            excess = window * rate - margin
            offender = int(np.argmax(excess))
            if excess[offender] > 0:
                diagnostics.append(
                    Diagnostic(
                        "RPR014",
                        Severity.ERROR,
                        f"window {window} x per-day wear "
                        f"{rate[offender]:g} = "
                        f"{window * rate[offender]:g} exceeds array "
                        f"{offender}'s headroom margin "
                        f"{margin[offender]:g}",
                        Location(
                            address=offender, place="window capacity bound"
                        ),
                        hint="an array could cross its death threshold "
                        "inside the window; step per-day instead",
                    )
                )
    return diagnostics
