"""Static RNG stream-discipline checks for campaigns and jobs.

Reproducibility at fleet scale rests on a seeding discipline: every
random draw comes from a substream derived from the campaign's base seed
through a distinct spawn key (``np.random.default_rng([seed, TAG,
...])``), so no two consumers ever share a generator, and batched
("windowed") draws are only allowed where they provably walk the same
bit stream as the serial per-day loop. These rules lived in docstrings
and in tests that run campaigns; this pass checks them statically.

* :func:`derive_stream_keys` — walk every seeded substream derivation a
  :class:`~repro.fleet.service.FleetSpec` or
  :class:`~repro.engine.spec.JobSpec` performs: the campaign traffic
  stream (``TRAFFIC_STREAM``), the per-array endurance budget streams
  (``BUDGET_STREAM``), and the kernel/permutation base stream of a
  simulation job.
* :func:`check_stream_keys` — flag any spawn-key collision or reuse
  across the derived consumers (``RPR015``).
* :func:`check_draw_plan` — check a declared window draw plan
  (:func:`repro.fleet.traffic.window_draw_plan`) against the per-model
  stream rules: a batched draw is only sound where the vectorized call
  is stream-identical to the scalar loop, and a stochastic multi-cohort
  window must interleave draw and split per day (``RPR016``).
* :func:`check_streams` — the spec-level composition of the above.

Cohort-calibration simulations each own an isolated generator universe
(``default_rng(seed)`` inside one process), so sharing the base seed
across cohorts is not a collision — collisions only matter between
consumers of the *campaign's* shared stream space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "check_draw_plan",
    "check_stream_keys",
    "check_streams",
    "derive_stream_keys",
]

#: A derived substream: ``(consumer name, spawn-key tuple)``.
StreamKey = Tuple[str, Tuple[int, ...]]


def derive_stream_keys(spec) -> List[StreamKey]:
    """Every seeded substream derivation a spec performs, as named keys.

    For a fleet spec (anything with ``population`` and ``traffic``):
    the arrival-process stream ``(seed, TRAFFIC_STREAM)`` and — when
    per-cell endurance variation is on — one budget stream
    ``(seed, BUDGET_STREAM, array)`` per array. For a simulation job
    spec (anything with ``workload`` and ``seed``): the single
    kernel/permutation base stream ``(seed,)`` its simulator owns.
    """
    keys: List[StreamKey] = []
    if hasattr(spec, "population") and hasattr(spec, "traffic"):
        from repro.fleet.population import BUDGET_STREAM, TRAFFIC_STREAM

        seed = int(spec.seed)
        keys.append(("traffic", (seed, TRAFFIC_STREAM)))
        if spec.population.endurance_sigma > 0:
            for array in range(spec.population.n_arrays):
                keys.append(
                    (f"budget[{array}]", (seed, BUDGET_STREAM, array))
                )
        return keys
    if hasattr(spec, "workload") and hasattr(spec, "seed"):
        keys.append(("simulation", (int(spec.seed),)))
        return keys
    raise TypeError(
        f"cannot derive stream keys from {type(spec).__name__}; expected "
        "a fleet spec or a job spec"
    )


def check_stream_keys(keys: Sequence[StreamKey]) -> List[Diagnostic]:
    """RPR015: spawn keys must be pairwise distinct across consumers.

    Two consumers deriving the same key would draw from identical bit
    streams — correlated "independent" randomness, the classic silent
    seeding bug. Reuse of one key by the same consumer name (listed
    twice) is flagged too: a stream may only be instantiated once per
    campaign or its draws interleave unpredictably.
    """
    diagnostics: List[Diagnostic] = []
    seen: Dict[Tuple[int, ...], str] = {}
    for name, key in keys:
        key = tuple(int(part) for part in key)
        owner = seen.get(key)
        if owner is None:
            seen[key] = name
            continue
        kind = "reused by" if owner == name else "collides with"
        diagnostics.append(
            Diagnostic(
                "RPR015",
                Severity.ERROR,
                f"substream key {key} of {owner!r} {kind} {name!r}",
                Location(place=f"stream {name!r}"),
                hint="derive every consumer's stream from a distinct "
                "spawn-key tuple",
            )
        )
    return diagnostics


def check_draw_plan(
    model: str, n_cohorts: int, plan: Optional[Dict[str, str]] = None
) -> List[Diagnostic]:
    """RPR016: a window draw plan must match the serial stream order.

    The per-day loop consumes, per day: the arrival ``draw`` (no RNG
    for ``deterministic``, one Poisson for ``poisson``, a Poisson plus
    a state-flip uniform for ``bursty``), then the cohort ``split`` (no
    RNG for one cohort, a multinomial otherwise). A windowed execution
    declaring how it batches those calls
    (:func:`repro.fleet.traffic.window_draw_plan`) is only sound when
    the declared consumption order provably equals the serial stream:

    * a ``bursty`` draw can never be ``"batched"`` — its sampler
      consumes a data-dependent number of raw draws and interleaves the
      state-flip uniform per day;
    * with a stochastic model *and* multiple cohorts, draw and split
      alternate on one generator every day, so **both** must be
      ``"interleaved"`` — hoisting either into its own batch reorders
      the stream;
    * a split that consumes RNG (multiple cohorts) may only be
      ``"batched"`` when the draw consumes none (``deterministic``).

    Args:
        model: A :data:`repro.fleet.traffic.TRAFFIC_MODELS` entry.
        n_cohorts: Cohort count (the split consumes RNG above 1).
        plan: The declared ``{"draw": ..., "split": ...}`` plan;
            defaults to the live decision procedure
            :func:`~repro.fleet.traffic.window_draw_plan`, which makes
            this a check of the service's real windowed path.
    """
    from repro.fleet.traffic import TRAFFIC_MODELS, window_draw_plan

    if model not in TRAFFIC_MODELS:
        raise ValueError(
            f"unknown traffic model {model!r}; choose from {TRAFFIC_MODELS}"
        )
    if n_cohorts < 1:
        raise ValueError("n_cohorts must be positive")
    if plan is None:
        plan = window_draw_plan(model, n_cohorts)
    diagnostics: List[Diagnostic] = []
    valid = {"batched", "looped", "interleaved"}
    for half in ("draw", "split"):
        if plan.get(half) not in valid:
            diagnostics.append(
                Diagnostic(
                    "RPR016",
                    Severity.ERROR,
                    f"window plan declares no valid {half!r} mode "
                    f"(got {plan.get(half)!r})",
                    Location(place=f"traffic {model!r}, {half}"),
                )
            )
    if diagnostics:
        return diagnostics
    rng_draw = model != "deterministic"
    rng_split = n_cohorts > 1
    if model == "bursty" and plan["draw"] == "batched":
        diagnostics.append(
            Diagnostic(
                "RPR016",
                Severity.ERROR,
                "bursty arrival draws cannot batch: the MMPP consumes a "
                "data-dependent raw-draw count plus a state-flip uniform "
                "per day",
                Location(place=f"traffic {model!r}, draw"),
                hint="loop draw_day per day (or interleave with the split)",
            )
        )
    if rng_draw and rng_split:
        for half in ("draw", "split"):
            if plan[half] != "interleaved":
                diagnostics.append(
                    Diagnostic(
                        "RPR016",
                        Severity.ERROR,
                        f"stochastic {model!r} traffic over {n_cohorts} "
                        f"cohorts alternates draw and split on one "
                        f"generator per day, but the plan batches the "
                        f"{half} ({plan[half]!r})",
                        Location(place=f"traffic {model!r}, {half}"),
                        hint="run full per-day iterations inside the window",
                    )
                )
    return diagnostics


def check_streams(spec) -> List[Diagnostic]:
    """The spec-level stream pass: key discipline plus window draws.

    Composes :func:`check_stream_keys` over
    :func:`derive_stream_keys` (RPR015) with — for fleet specs — a
    sanity check that the stream *tags* themselves are distinct and a
    :func:`check_draw_plan` re-derivation of the windowed path's
    declared consumption order (RPR016).
    """
    diagnostics = check_stream_keys(derive_stream_keys(spec))
    if hasattr(spec, "population") and hasattr(spec, "traffic"):
        from repro.fleet.population import BUDGET_STREAM, TRAFFIC_STREAM

        if BUDGET_STREAM == TRAFFIC_STREAM:
            diagnostics.append(
                Diagnostic(
                    "RPR015",
                    Severity.ERROR,
                    "BUDGET_STREAM and TRAFFIC_STREAM share one tag value",
                    Location(place="stream tags"),
                    hint="spawn-key tags must be pairwise distinct",
                )
            )
        diagnostics.extend(
            check_draw_plan(
                spec.traffic.model, len(spec.population.cohorts)
            )
        )
    return diagnostics
