"""repro.verify — static analysis for programs, mappings, and job specs.

Checks programs and configurations without executing them: an IR
dataflow pass over the lane-program instruction stream, a hazard pass
over the compiled gate levels, and a wear-invariant pass over profiles,
permutations, and schedules. Findings carry stable ``RPR0xx`` codes and
render as text or JSON; the ``repro-endurance verify`` CLI subcommand
and the simulator/engine pre-dispatch hooks are built on these entry
points.
"""

from repro.verify.api import (
    FUNCTIONAL_CODES,
    VerificationError,
    verify_mapping,
    verify_network,
    verify_program,
    verify_spec,
)
from repro.verify.dataflow import (
    check_bounds,
    check_dataflow,
    check_level_segments,
    check_levels,
)
from repro.verify.diagnostics import (
    CODES,
    Diagnostic,
    Location,
    Severity,
    VerifyReport,
)
from repro.verify.wear import (
    check_config,
    check_fastforward,
    check_permutation_rows,
    check_profile_conservation,
    check_schedule,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "FUNCTIONAL_CODES",
    "Location",
    "Severity",
    "VerificationError",
    "VerifyReport",
    "check_bounds",
    "check_config",
    "check_dataflow",
    "check_fastforward",
    "check_level_segments",
    "check_levels",
    "check_permutation_rows",
    "check_profile_conservation",
    "check_schedule",
    "verify_mapping",
    "verify_network",
    "verify_program",
    "verify_spec",
]
