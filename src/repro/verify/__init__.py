"""repro.verify — whole-system static analysis without execution.

Checks programs, configurations, and now whole campaigns without
executing them: an IR dataflow pass over the lane-program instruction
stream, a hazard pass over the compiled gate levels, a wear-invariant
pass over profiles, permutations, and schedules, a concurrency pass
proving the parallel fleet's shard plan race-free
(:mod:`~repro.verify.concurrency`), an RNG stream-discipline pass
(:mod:`~repro.verify.streams`), versioned artifact schema validation
(:mod:`~repro.verify.schemas`), and an AST self-lint over the repo's
own invariants (:mod:`~repro.verify.lint`). Findings carry stable
``RPR0xx`` codes and render as text or JSON; the ``repro-endurance
verify`` CLI subcommand and the simulator/engine/fleet pre-dispatch
hooks are built on these entry points.
"""

from repro.verify.api import (
    FUNCTIONAL_CODES,
    VerificationError,
    verify_fleet_spec,
    verify_mapping,
    verify_network,
    verify_program,
    verify_self,
    verify_spec,
)
from repro.verify.concurrency import (
    RegionAccess,
    check_shard_plan,
    check_shard_races,
    check_window_bound,
    executor_access_plan,
)
from repro.verify.dataflow import (
    check_bounds,
    check_dataflow,
    check_level_segments,
    check_levels,
)
from repro.verify.diagnostics import (
    CODES,
    Diagnostic,
    Location,
    Severity,
    VerifyReport,
)
from repro.verify.lint import self_lint
from repro.verify.schemas import (
    check_checkpoint,
    check_manifest,
    check_trace,
)
from repro.verify.streams import (
    check_draw_plan,
    check_stream_keys,
    check_streams,
    derive_stream_keys,
)
from repro.verify.wear import (
    check_config,
    check_fastforward,
    check_permutation_rows,
    check_profile_conservation,
    check_schedule,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "FUNCTIONAL_CODES",
    "Location",
    "RegionAccess",
    "Severity",
    "VerificationError",
    "VerifyReport",
    "check_bounds",
    "check_checkpoint",
    "check_config",
    "check_dataflow",
    "check_draw_plan",
    "check_fastforward",
    "check_level_segments",
    "check_levels",
    "check_manifest",
    "check_permutation_rows",
    "check_profile_conservation",
    "check_schedule",
    "check_shard_plan",
    "check_shard_races",
    "check_stream_keys",
    "check_streams",
    "check_trace",
    "check_window_bound",
    "derive_stream_keys",
    "executor_access_plan",
    "self_lint",
    "verify_fleet_spec",
    "verify_mapping",
    "verify_network",
    "verify_program",
    "verify_self",
    "verify_spec",
]
