"""The diagnostic framework: stable codes, severities, renderers.

Every check in :mod:`repro.verify` reports findings as
:class:`Diagnostic` records with a stable ``RPR0xx`` code, so tests can
pin exact codes, CI can grep for them, and users can suppress individual
codes without silencing a whole pass. A :class:`VerifyReport` collects
the diagnostics of one verification run and renders them as text or
JSON with conventional exit codes (0 clean, 1 errors, 2 warnings only).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(Enum):
    """How serious a finding is.

    ``ERROR`` findings mean the program/config would misbehave or crash
    at runtime; ``WARNING`` findings are wasteful or suspicious but
    executable; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering key: errors sort before warnings before infos."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Registry of stable diagnostic codes. Codes are append-only: a code's
#: meaning never changes, and retired codes are never reused.
CODES: Dict[str, str] = {
    "RPR001": "read of an uninitialized cell",
    "RPR002": "dead write (overwritten or never read)",
    "RPR003": "cell address outside the array geometry",
    "RPR004": "read-out tag / output coverage violation",
    "RPR005": "compiled gate level is not hazard-free",
    "RPR006": "write/read profile not conserved across representations",
    "RPR007": "balance mapping is not a valid permutation",
    "RPR008": "schedule violates the lane-load bounds",
    "RPR009": "hardware re-mapping has no spare bit",
    "RPR010": "invalid balance configuration",
    "RPR011": "configuration not eligible for steady-state fast-forward",
    "RPR012": "shard plan is not a disjoint exact cover of the population",
    "RPR013": "plan-level race: overlapping worker write regions or a "
    "parent reduction reading outside fixed shard offsets",
    "RPR014": "no-death window bound is unsound for this spec",
    "RPR015": "seeded RNG substream key collision or reuse",
    "RPR016": "window-batched draw order can diverge from the serial stream",
    "RPR017": "versioned artifact schema violation",
    "RPR018": "repo invariant violated (self-lint)",
}


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    Attributes:
        program: Lane-program name, when the finding is about a program.
        instruction: Zero-based instruction index within the program.
        address: Logical bit address involved.
        place: Free-form location for non-program findings (a phase
            name, a config label, a permutation row).
    """

    program: Optional[str] = None
    instruction: Optional[int] = None
    address: Optional[int] = None
    place: Optional[str] = None

    def __str__(self) -> str:
        parts = []
        if self.program is not None:
            parts.append(f"program {self.program!r}")
        if self.instruction is not None:
            parts.append(f"instruction {self.instruction}")
        if self.address is not None:
            parts.append(f"bit {self.address}")
        if self.place is not None:
            parts.append(self.place)
        return ", ".join(parts) if parts else "<no location>"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: Stable ``RPR0xx`` code (a key of :data:`CODES`).
        severity: How serious the finding is.
        message: What was found, in one sentence.
        location: Where it points.
        hint: How to fix or suppress it, when known.
    """

    code: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def render(self) -> str:
        """One-line text rendering: ``RPR0xx severity: message [at ...]``."""
        text = f"{self.code} {self.severity.value}: {self.message}"
        located = str(self.location)
        if located != "<no location>":
            text += f" [{located}]"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def as_dict(self) -> dict:
        """JSON-able representation (used by ``verify --json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "program": self.location.program,
            "instruction": self.location.instruction,
            "address": self.location.address,
            "place": self.location.place,
            "hint": self.hint,
        }


class VerifyReport:
    """The outcome of one verification run.

    Diagnostics are stored most-severe first (stable within a severity).
    Reports are immutable; combine them with :meth:`merged` and drop
    suppressed codes with :meth:`without`.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(
            sorted(diagnostics, key=lambda d: d.severity.rank)
        )

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """The ERROR-severity findings."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """The WARNING-severity findings."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when nothing above INFO was found."""
        return not self.errors and not self.warnings

    @property
    def exit_code(self) -> int:
        """Conventional process exit code: 0 clean, 1 errors, 2 warnings."""
        if self.errors:
            return 1
        if self.warnings:
            return 2
        return 0

    def without(self, codes: Sequence[str]) -> "VerifyReport":
        """A copy with the given codes suppressed."""
        dropped = set(codes)
        unknown = dropped - set(CODES)
        if unknown:
            raise ValueError(
                f"cannot suppress unknown codes {sorted(unknown)}"
            )
        return VerifyReport(
            d for d in self.diagnostics if d.code not in dropped
        )

    def merged(self, other: "VerifyReport") -> "VerifyReport":
        """A report holding both runs' findings."""
        return VerifyReport(self.diagnostics + other.diagnostics)

    def codes(self) -> List[str]:
        """The codes found, in rendered order (duplicates preserved)."""
        return [d.code for d in self.diagnostics]

    def render_text(self) -> str:
        """Multi-line human-readable rendering."""
        if not self.diagnostics:
            return "verify: no diagnostics"
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"verify: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} total"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON rendering: ``{"diagnostics": [...], "summary": {...}}``."""
        return json.dumps(
            {
                "diagnostics": [d.as_dict() for d in self.diagnostics],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "total": len(self.diagnostics),
                    "exit_code": self.exit_code,
                },
            },
            indent=2,
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"VerifyReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, total={len(self.diagnostics)})"
        )
