"""IR dataflow checks over :class:`~repro.synth.program.LaneProgram`.

One linear pass over the instruction stream proves, without executing a
single gate:

* **RPR001** — every read (gate input, ``ReadInstr``) sees a cell some
  earlier instruction wrote;
* **RPR002** — no write is dead: neither overwritten before any read
  (write-after-write) nor left unread at program end without being a
  declared output. Scratch/preset writes (``source=None``) are exempt —
  their value never matters by construction;
* **RPR003** — the program's footprint fits the lane it must run in;
* **RPR004** — declared outputs are computed, and every tagged read-out
  stream is dense (no gaps, no duplicate slots) so networked consumers
  never silently read zero-filled padding;
* **RPR005** — the compiled SoA form's fused gate levels are race-free
  *by construction*: within a level, gate outputs are pairwise distinct
  and no gate reads what another gate in the level writes. This re-proves
  the hazard property :mod:`repro.synth.compiled` relies on, instead of
  trusting the compiler that enforced it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.gates.gate import Gate
from repro.synth.program import LaneProgram, ReadInstr, WriteInstr
from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "check_dataflow",
    "check_bounds",
    "check_levels",
    "check_level_segments",
]


def check_dataflow(program: LaneProgram) -> List[Diagnostic]:
    """RPR001/RPR002/RPR004 over one program's instruction stream."""
    diagnostics: List[Diagnostic] = []
    initialized: Set[int] = set()
    # address -> (instruction index, counts-for-dead-write) of the last
    # write that no later instruction has read yet.
    unread: Dict[int, Tuple[int, bool]] = {}
    output_addresses = {
        address
        for addresses in program.outputs.values()
        for address in addresses
    }
    streams: Dict[str, Dict[int, int]] = {}

    def note_read(address: int, index: int) -> None:
        if address not in initialized:
            diagnostics.append(
                Diagnostic(
                    "RPR001",
                    Severity.ERROR,
                    f"read of uninitialized cell {address}",
                    Location(program.name, index, address),
                    hint="write the cell (operand load, const, or gate) "
                    "before reading it",
                )
            )
            initialized.add(address)  # report each cell once
        unread.pop(address, None)

    def note_write(address: int, index: int, meaningful: bool) -> None:
        previous = unread.get(address)
        if previous is not None and previous[1]:
            diagnostics.append(
                Diagnostic(
                    "RPR002",
                    Severity.WARNING,
                    f"write to cell {address} at instruction {previous[0]} "
                    f"is overwritten at instruction {index} without being "
                    "read",
                    Location(program.name, previous[0], address),
                    hint="drop the earlier write or read it first",
                )
            )
        initialized.add(address)
        unread[address] = (index, meaningful)

    for index, instr in enumerate(program.instructions):
        if isinstance(instr, WriteInstr):
            note_write(instr.address, index, instr.source is not None)
        elif isinstance(instr, ReadInstr):
            note_read(instr.address, index)
            if instr.tag is not None:
                slots = streams.setdefault(instr.tag, {})
                if instr.index in slots:
                    diagnostics.append(
                        Diagnostic(
                            "RPR004",
                            Severity.ERROR,
                            f"read-out tag {instr.tag!r} writes slot "
                            f"{instr.index} twice (instructions "
                            f"{slots[instr.index]} and {index})",
                            Location(program.name, index),
                            hint="each stream slot must be produced by "
                            "exactly one tagged read",
                        )
                    )
                slots[instr.index] = index
        else:  # Gate
            for address in instr.inputs:
                note_read(address, index)
            note_write(instr.output, index, True)

    for address, (index, meaningful) in sorted(unread.items()):
        if meaningful and address not in output_addresses:
            diagnostics.append(
                Diagnostic(
                    "RPR002",
                    Severity.WARNING,
                    f"final write to cell {address} at instruction {index} "
                    "is never read and the cell is not a declared output",
                    Location(program.name, index, address),
                    hint="free the value without computing it, or declare "
                    "it an output",
                )
            )

    for name, addresses in sorted(program.outputs.items()):
        for address in addresses:
            if address not in initialized:
                diagnostics.append(
                    Diagnostic(
                        "RPR004",
                        Severity.ERROR,
                        f"declared output {name!r} uses cell {address}, "
                        "which no instruction writes",
                        Location(program.name, address=address),
                        hint="compute the output bit or remove it from "
                        "the declaration",
                    )
                )
    for tag, slots in sorted(streams.items()):
        missing = sorted(set(range(max(slots) + 1)) - set(slots))
        if missing:
            diagnostics.append(
                Diagnostic(
                    "RPR004",
                    Severity.ERROR,
                    f"read-out tag {tag!r} leaves stream slots {missing} "
                    "unwritten (consumers would read zero-filled padding)",
                    Location(program.name),
                    hint="tagged read indices must cover 0..max densely",
                )
            )
    return diagnostics


def check_bounds(
    program: LaneProgram, lane_size: int, spare_bit: bool = False
) -> List[Diagnostic]:
    """RPR003/RPR009: does the program's footprint fit the lane?

    Args:
        program: The lane program.
        lane_size: Physical bits per lane in the target geometry.
        spare_bit: Whether hardware re-mapping is active, which reserves
            one physical bit (Section 3.2: ``N-1`` logical addresses).
    """
    if spare_bit and program.footprint > lane_size - 1:
        return [
            Diagnostic(
                "RPR009",
                Severity.ERROR,
                f"hardware re-mapping needs a spare bit: footprint "
                f"{program.footprint} must be < lane size {lane_size}",
                Location(program.name),
                hint="shrink the program's workspace or disable +Hw",
            )
        ]
    if program.footprint > lane_size:
        return [
            Diagnostic(
                "RPR003",
                Severity.ERROR,
                f"program footprint {program.footprint} exceeds the "
                f"lane size {lane_size}",
                Location(program.name),
                hint="use a larger array or a tighter workspace policy",
            )
        ]
    return []


def check_levels(program: LaneProgram) -> List[Diagnostic]:
    """RPR005: re-prove the compiled gate levels are race-free."""
    from repro.synth.compiled import _GateLevel

    segments = [
        segment
        for segment in program.compiled()._segments
        if isinstance(segment, _GateLevel)
    ]
    return check_level_segments(segments, program.name)


def check_level_segments(segments, program_name: str) -> List[Diagnostic]:
    """RPR005 over explicit gate-level segments (testable in isolation).

    A level is race-free when its gate outputs are pairwise distinct and
    no output address is also a level input — then the gates commute, so
    the fused same-opcode groups may execute in any order.
    """
    diagnostics: List[Diagnostic] = []
    for rank, level in enumerate(segments):
        outputs = [int(a) for a in level.output_addresses]
        inputs = {int(a) for a in level.input_addresses}
        seen: Set[int] = set()
        for address in outputs:
            if address in seen:
                diagnostics.append(
                    Diagnostic(
                        "RPR005",
                        Severity.ERROR,
                        f"gate level {rank} writes cell {address} twice "
                        "(write-write race within a fused level)",
                        Location(
                            program_name,
                            address=address,
                            place=f"level {rank}",
                        ),
                        hint="the level scheduler must flush on "
                        "write-after-write hazards",
                    )
                )
            seen.add(address)
        for address in sorted(seen & inputs):
            diagnostics.append(
                Diagnostic(
                    "RPR005",
                    Severity.ERROR,
                    f"gate level {rank} both reads and writes cell "
                    f"{address} (read-write race within a fused level)",
                    Location(
                        program_name, address=address, place=f"level {rank}"
                    ),
                    hint="the level scheduler must flush on "
                    "read-after-write hazards",
                )
            )
    return diagnostics
