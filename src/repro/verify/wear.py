"""Wear-invariant checks: profile conservation, permutations, schedules.

Every endurance number in the paper reduces to per-cell write/read
counts pushed through logical-to-physical mappings. These checks prove
the three invariants that pipeline rests on, without simulating:

* **RPR006** — the interpreter (:meth:`LaneProgram.write_counts`), the
  compiled SoA form (:meth:`CompiledProgram.write_event_counts`), and
  the hardware-re-mapping algebra (:class:`HardwareRemapper`) must all
  conserve the same write/read totals — renaming and compilation
  relocate wear, never create or destroy it;
* **RPR007** — every balance mapping must be a true permutation
  (each physical address hit exactly once); a corrupted mapping would
  silently double-count wear on some cells and lose it on others
  (SoftWear's observation: wear-leveling bugs skew, they don't crash);
* **RPR008** — the hand-written phase schedule must agree with the wear
  view's lane work and stay within per-lane sequential budgets; the
  Eq. 1/Eq. 2 lifetime models divide by per-iteration write rates, so a
  schedule that under-counts lane load inflates lifetimes undetectably.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.balance.config import BalanceConfig
from repro.balance.hardware import HardwareRemapper
from repro.balance.software import (
    StrategyKind,
    make_permutations,
    wear_aware_permutation,
)
from repro.synth.program import LaneProgram
from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "check_profile_conservation",
    "check_permutation_rows",
    "check_config",
    "check_fastforward",
    "check_schedule",
]

#: Strategies whose per-epoch permutation is a pure periodic function
#: of the epoch index — the precondition of the analytic fast-forward.
#: Kept in sync with :data:`repro.core.fastforward.PERIODIC_KINDS` by a
#: pin in the test suite (verify must not import core).
_FASTFORWARD_KINDS = frozenset(
    {StrategyKind.STATIC, StrategyKind.BYTE_SHIFT, StrategyKind.BIT_SHIFT}
)

#: Epochs sampled per strategy when validating permutation streams.
PERMUTATION_SAMPLE_EPOCHS = 4


def check_profile_conservation(
    program: LaneProgram,
    writes_per_gate: int = 1,
    lane_size: Optional[int] = None,
) -> List[Diagnostic]:
    """RPR006: interpreter vs compiled (vs remapper) profile conservation.

    Args:
        program: The lane program.
        writes_per_gate: 2 on pre-setting architectures, else 1.
        lane_size: When given (and a spare bit fits), also check the
            hardware-re-mapping algebra conserves the per-iteration
            totals.
    """
    diagnostics: List[Diagnostic] = []
    include_presets = writes_per_gate > 1
    size = program.footprint
    interpreter_writes = program.write_counts(
        size, include_presets=include_presets
    )
    interpreter_reads = program.read_counts(size)
    compiled = program.compiled()
    compiled_writes = compiled.write_event_counts(size, writes_per_gate)
    compiled_reads = compiled.read_event_counts(size)
    if not np.array_equal(interpreter_writes, compiled_writes):
        bad = int(np.nonzero(interpreter_writes != compiled_writes)[0][0])
        diagnostics.append(
            Diagnostic(
                "RPR006",
                Severity.ERROR,
                f"write profile differs between interpreter and compiled "
                f"forms (first mismatch at cell {bad}: "
                f"{int(interpreter_writes[bad])} vs "
                f"{int(compiled_writes[bad])})",
                Location(program.name, address=bad),
                hint="the compiled event arrays drifted from the "
                "instruction stream",
            )
        )
    if not np.array_equal(interpreter_reads, compiled_reads):
        bad = int(np.nonzero(interpreter_reads != compiled_reads)[0][0])
        diagnostics.append(
            Diagnostic(
                "RPR006",
                Severity.ERROR,
                f"read profile differs between interpreter and compiled "
                f"forms (first mismatch at cell {bad}: "
                f"{int(interpreter_reads[bad])} vs "
                f"{int(compiled_reads[bad])})",
                Location(program.name, address=bad),
                hint="the compiled event arrays drifted from the "
                "instruction stream",
            )
        )
    if lane_size is not None and program.footprint <= lane_size - 1:
        remapper = HardwareRemapper(program, lane_size, include_presets)
        writes, reads = remapper.profile(1)
        expected_writes = float(interpreter_writes.sum())
        expected_reads = float(interpreter_reads.sum())
        if writes.sum() != expected_writes or (
            remapper.writes_per_iteration != expected_writes
        ):
            diagnostics.append(
                Diagnostic(
                    "RPR006",
                    Severity.ERROR,
                    f"hardware re-mapping does not conserve writes: "
                    f"{writes.sum():g} renamed vs {expected_writes:g} "
                    "issued per iteration",
                    Location(program.name),
                    hint="renaming relocates writes; it must never change "
                    "their number",
                )
            )
        if reads.sum() != expected_reads:
            diagnostics.append(
                Diagnostic(
                    "RPR006",
                    Severity.ERROR,
                    f"hardware re-mapping does not conserve reads: "
                    f"{reads.sum():g} vs {expected_reads:g} per iteration",
                    Location(program.name),
                    hint="renaming must leave the read count unchanged",
                )
            )
    return diagnostics


def check_permutation_rows(
    rows: np.ndarray, size: int, context: str
) -> List[Diagnostic]:
    """RPR007: every row must hit each physical address exactly once."""
    diagnostics: List[Diagnostic] = []
    rows = np.atleast_2d(np.asarray(rows))
    for epoch, row in enumerate(rows):
        valid = (
            row.shape == (size,)
            and row.min(initial=0) >= 0
            and row.max(initial=-1) < size
            and np.array_equal(
                np.bincount(row.astype(np.int64), minlength=size),
                np.ones(size, dtype=np.int64),
            )
        )
        if not valid:
            diagnostics.append(
                Diagnostic(
                    "RPR007",
                    Severity.ERROR,
                    f"{context} row {epoch} is not a permutation of "
                    f"0..{size - 1}",
                    Location(place=f"{context}, epoch {epoch}"),
                    hint="a corrupted mapping double-counts wear on some "
                    "cells and loses it on others",
                )
            )
    return diagnostics


def check_config(
    config: BalanceConfig,
    lane_size: int,
    lane_count: int,
    lane_loads: "np.ndarray | None" = None,
    seed: int = 0,
) -> List[Diagnostic]:
    """RPR007/RPR010: validate a balance configuration statically.

    Samples :data:`PERMUTATION_SAMPLE_EPOCHS` epochs from each software
    strategy's permutation stream and proves every row valid; resolves a
    wear-aware between-lane strategy against ``lane_loads`` (zero wear)
    the way the simulator's first epoch would.
    """
    diagnostics: List[Diagnostic] = []
    if config.within is StrategyKind.WEAR_AWARE:
        diagnostics.append(
            Diagnostic(
                "RPR010",
                Severity.ERROR,
                "wear-aware mapping applies between lanes only (within-"
                "lane roles are identical, so there is no load signal)",
                Location(place=f"config {config.label}"),
                hint="use Wa as the between-lane strategy",
            )
        )
    rng = np.random.default_rng(seed)
    for kind, size, axis in (
        (config.within, lane_size, "within-lane"),
        (config.between, lane_count, "between-lane"),
    ):
        if kind is StrategyKind.WEAR_AWARE:
            if axis == "between-lane" and lane_loads is not None:
                permutation = wear_aware_permutation(
                    lane_loads, np.zeros(lane_count)
                )
                diagnostics.extend(
                    check_permutation_rows(
                        permutation[None, :],
                        lane_count,
                        f"{config.label} {axis} (wear-aware, epoch 0)",
                    )
                )
            continue
        rows = make_permutations(
            kind, size, PERMUTATION_SAMPLE_EPOCHS, rng
        )
        diagnostics.extend(
            check_permutation_rows(
                rows, size, f"{config.label} {axis} ({kind.label})"
            )
        )
    return diagnostics


def check_fastforward(config: BalanceConfig) -> List[Diagnostic]:
    """RPR011: is ``config`` eligible for steady-state fast-forward?

    The analytic fast-forward (:mod:`repro.core.fastforward`)
    extrapolates wear across epochs whose deltas repeat with a provable
    period. Deterministic strategies (``St``/``Bs``/``B1``) qualify;
    random shuffling draws fresh permutations every epoch and wear-aware
    mapping couples each epoch's assignment to accumulated state, so
    neither has a steady state to extrapolate — such configs must be
    refused, never silently approximated.
    """
    diagnostics: List[Diagnostic] = []
    reasons = {
        StrategyKind.RANDOM: (
            "draws a fresh random permutation every epoch, so epoch "
            "deltas never repeat"
        ),
        StrategyKind.WEAR_AWARE: (
            "feeds accumulated wear state back into each epoch's "
            "assignment, so epoch deltas are state-coupled"
        ),
    }
    for kind, axis in (
        (config.within, "within-lane"),
        (config.between, "between-lane"),
    ):
        if kind in _FASTFORWARD_KINDS:
            continue
        diagnostics.append(
            Diagnostic(
                "RPR011",
                Severity.ERROR,
                f"{axis} strategy {kind.label} "
                f"{reasons.get(kind, 'is not a periodic function of the epoch index')}",
                Location(place=f"config {config.label}"),
                hint="fast-forward needs St/Bs/B1 on both axes; run the "
                "simulated kernel for this config instead",
            )
        )
    return diagnostics


def check_schedule(mapping) -> List[Diagnostic]:
    """RPR008: the schedule view must agree with the wear view.

    Mirrors :meth:`WorkloadMapping.validate_schedule` as diagnostics —
    plus the phase-width bound — so a drifted schedule is a report
    entry, not a deep traceback.
    """
    diagnostics: List[Diagnostic] = []
    architecture = mapping.architecture
    scheduled = float(
        sum(phase.steps * phase.active_lanes for phase in mapping.phases)
    )
    actual = mapping.lane_work()
    if scheduled != actual:
        diagnostics.append(
            Diagnostic(
                "RPR008",
                Severity.ERROR,
                f"schedule accounts for {scheduled:g} lane-ops but the "
                f"programs perform {actual:g}",
                Location(place=f"workload {mapping.workload_name!r}"),
                hint="per-iteration wear and the Eq. 1/Eq. 2 lifetime "
                "models assume these agree",
            )
        )
    slots = architecture.writes_per_gate
    budget = mapping.sequential_ops
    per_program: dict = {}
    for lane, program in sorted(mapping.assignment.items()):
        lane_ops = per_program.get(id(program))
        if lane_ops is None:
            gates = program.gate_count
            lane_ops = per_program[id(program)] = (
                program.sequential_ops - gates + gates * slots
            )
        if lane_ops > budget:
            diagnostics.append(
                Diagnostic(
                    "RPR008",
                    Severity.ERROR,
                    f"lane {lane} performs {lane_ops} ops but the "
                    f"schedule has only {budget} sequential slots",
                    Location(
                        program.name, place=f"lane {lane}"
                    ),
                    hint="a lane cannot do more work than there is time",
                )
            )
            break  # one representative lane per mapping is enough
    lane_count = architecture.lane_count
    for phase in mapping.phases:
        if phase.active_lanes > lane_count:
            diagnostics.append(
                Diagnostic(
                    "RPR008",
                    Severity.ERROR,
                    f"phase {phase.name!r} activates {phase.active_lanes} "
                    f"lanes but the array has only {lane_count}",
                    Location(place=f"phase {phase.name!r}"),
                    hint="the schedule references lanes that do not exist",
                )
            )
    return diagnostics
