"""The 18-point load-balancing configuration space of the evaluation.

Section 4: "we experiment with two strategies in software, random
shuffling of addresses and byte-shifting of addresses ... We also include
a static strategy ... Each of these strategies can be used within lanes
(rows) or between lanes (columns), giving rise to a total of 9 different
load balancing configurations. Hardware re-mapping is applied only within
the lane and can be turned on or off. Hence, there is a total of 18 load
balancing configurations per benchmark."

Labels follow the figures: ``<within>x<between>`` with an optional
``+Hw`` — e.g. ``RaxBs+Hw``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.balance.software import StrategyKind

#: The paper's default recompile interval for the heatmap figures
#: ("re-compilation every 100 iterations", Figs. 14-16).
DEFAULT_RECOMPILE_INTERVAL = 100


@dataclass(frozen=True)
class BalanceConfig:
    """One load-balancing configuration.

    Attributes:
        within: Software strategy for bit offsets within each lane.
        between: Software strategy for whole lanes.
        hardware: Whether spare-bit hardware re-mapping is active.
        recompile_interval: Iterations between software re-mapping epochs
            ("software re-mapping can be invoked every time the program is
            recompiled", Section 4).
    """

    within: StrategyKind = StrategyKind.STATIC
    between: StrategyKind = StrategyKind.STATIC
    hardware: bool = False
    recompile_interval: int = DEFAULT_RECOMPILE_INTERVAL

    def __post_init__(self) -> None:
        if self.recompile_interval < 1:
            raise ValueError("recompile_interval must be positive")

    @property
    def label(self) -> str:
        """The paper's figure label, e.g. ``"RaxBs+Hw"``."""
        text = f"{self.within.label}x{self.between.label}"
        if self.hardware:
            text += "+Hw"
        return text

    @property
    def is_static(self) -> bool:
        """True for the no-balancing baseline St x St (without Hw)."""
        return (
            self.within is StrategyKind.STATIC
            and self.between is StrategyKind.STATIC
            and not self.hardware
        )

    @property
    def needs_recompilation(self) -> bool:
        """Whether any software strategy actually re-maps per epoch."""
        return (
            self.within is not StrategyKind.STATIC
            or self.between is not StrategyKind.STATIC
        )

    def with_interval(self, recompile_interval: int) -> "BalanceConfig":
        """A copy at a different recompile interval."""
        return replace(self, recompile_interval=recompile_interval)

    @classmethod
    def from_label(
        cls, label: str, recompile_interval: int = DEFAULT_RECOMPILE_INTERVAL
    ) -> "BalanceConfig":
        """Parse a figure label like ``"StxRa"`` or ``"BsxBs+Hw"``."""
        text = label.strip()
        hardware = False
        if text.lower().endswith("+hw"):
            hardware = True
            text = text[: -len("+hw")]
        parts = text.split("x")
        if len(parts) != 2:
            raise ValueError(
                f"cannot parse balance label {label!r} "
                "(expected '<St|Ra|Bs>x<St|Ra|Bs>[+Hw]')"
            )
        return cls(
            within=StrategyKind.from_label(parts[0]),
            between=StrategyKind.from_label(parts[1]),
            hardware=hardware,
            recompile_interval=recompile_interval,
        )


def all_configurations(
    recompile_interval: int = DEFAULT_RECOMPILE_INTERVAL,
) -> List[BalanceConfig]:
    """The 18 configurations of Figs. 14-17, in figure order.

    Figure order: hardware off then on; within each block, between-lane
    strategy varies slowest (St, Ra, Bs) and within-lane fastest.
    """
    paper_kinds = (
        StrategyKind.STATIC,
        StrategyKind.RANDOM,
        StrategyKind.BYTE_SHIFT,
    )
    configs = []
    for hardware in (False, True):
        for between in paper_kinds:
            for within in paper_kinds:
                configs.append(
                    BalanceConfig(
                        within=within,
                        between=between,
                        hardware=hardware,
                        recompile_interval=recompile_interval,
                    )
                )
    return configs
