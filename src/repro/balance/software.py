"""Software re-mapping strategies: Static, Random shuffling, Byte-shifting.

The paper's software strategies change the logical-to-physical address
mapping at recompile time only ("both require periodic re-compilation in
order to balance load", Section 3.2). Each strategy is a pure function of
the epoch index, so simulations are reproducible given a seed.

Strategy labels follow the paper: ``St`` (static, no re-mapping), ``Ra``
(random shuffling), ``Bs`` (byte-shifting). Within-lane strategies permute
bit offsets inside every lane identically; between-lane strategies permute
whole lanes. Either dimension can use any strategy, giving the 3 x 3 grid
of Figs. 14-16.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.balance.mapping import (
    BITS_PER_BYTE,
    byte_shift_permutation,
    identity_permutation,
    random_permutation,
)


class StrategyKind(Enum):
    """A software re-mapping strategy (paper Section 4 terminology).

    ``St``, ``Ra`` and ``Bs`` are the paper's three strategies and form
    the default 18-configuration grid. Two extensions:

    * ``B1`` (bit-shifting) — a cyclic shift by a *single bit* per epoch.
      It deliberately violates the byte-alignment constraint the paper
      imposes for memory-access friendliness ("shifts should be by an
      integer number of bytes"), so its gains over ``Bs`` measure exactly
      what that constraint costs — e.g., it levels the convolution's
      period-4 hot columns that ``Bs`` provably cannot touch.
    * ``Wa`` (wear-aware) — at each recompile, assign the heaviest lane
      roles to the least-worn physical lanes (the greedy min-max policy of
      wear-leveling remappers like WoLFRaM, applied at PIM's whole-lane
      granularity). Stateful: valid only as a *between-lane* strategy,
      resolved by the simulator, which has the accumulated wear;
      :func:`make_permutation` rejects it.
    """

    STATIC = "St"
    RANDOM = "Ra"
    BYTE_SHIFT = "Bs"
    BIT_SHIFT = "B1"
    WEAR_AWARE = "Wa"

    @property
    def label(self) -> str:
        """The paper's two-letter label."""
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "StrategyKind":
        """Parse a paper label (``St``/``Ra``/``Bs``), case-insensitively."""
        normalized = label.strip().lower()
        for kind in cls:
            if kind.value.lower() == normalized:
                return kind
        raise ValueError(f"unknown strategy label {label!r} (want St/Ra/Bs)")


def make_permutation(
    kind: StrategyKind,
    size: int,
    epoch: int,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """The logical-to-physical permutation a strategy uses in ``epoch``.

    Args:
        kind: Strategy.
        size: Number of addresses (lane size or lane count).
        epoch: Zero-based recompile epoch index. Static ignores it;
            byte-shifting shifts by ``epoch`` bytes; random shuffling draws
            a fresh permutation from ``rng`` per call (callers must invoke
            in epoch order for reproducibility).
        rng: Random generator, required for :attr:`StrategyKind.RANDOM`.
    """
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    if kind is StrategyKind.STATIC:
        return identity_permutation(size)
    if kind is StrategyKind.BYTE_SHIFT:
        return byte_shift_permutation(size, shift_bytes=epoch)
    if kind is StrategyKind.BIT_SHIFT:
        shift = epoch % size
        return ((np.arange(size, dtype=np.int64) + shift) % size).astype(
            np.int64
        )
    if kind is StrategyKind.RANDOM:
        if rng is None:
            raise ValueError("random shuffling requires an rng")
        return random_permutation(size, rng)
    if kind is StrategyKind.WEAR_AWARE:
        raise ValueError(
            "wear-aware mapping is stateful and resolved by the simulator; "
            "it has no pure per-epoch permutation"
        )
    raise ValueError(f"unhandled strategy {kind!r}")


def make_permutations(
    kind: StrategyKind,
    size: int,
    count: int,
    rng: "np.random.Generator | None" = None,
    epoch_start: int = 0,
) -> np.ndarray:
    """Permutations for ``count`` consecutive epochs, as a matrix.

    The batched analogue of :func:`make_permutation`: row ``e`` is the
    permutation of epoch ``epoch_start + e``. Deterministic strategies
    (``St``/``Bs``/``B1``) produce rows identical to the per-epoch
    function. Random shuffling draws one uniform block per epoch and
    argsorts it — a uniformly random permutation per row, but a
    *different* stream than ``rng.permutation`` (callers must use one
    convention consistently; the simulator uses this one on every path).

    Args:
        kind: Strategy.
        size: Number of addresses (lane size or lane count).
        count: Number of epochs to generate.
        rng: Random generator, required for :attr:`StrategyKind.RANDOM`.
        epoch_start: Zero-based index of the first epoch.

    Returns:
        A ``(count, size)`` int64 matrix; the Static row is a read-only
        broadcast view (no per-epoch storage).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if epoch_start < 0:
        raise ValueError("epoch_start must be non-negative")
    base = np.arange(size, dtype=np.int64)
    if kind is StrategyKind.STATIC:
        return np.broadcast_to(base, (count, size))
    epochs = epoch_start + np.arange(count, dtype=np.int64)
    if kind is StrategyKind.BYTE_SHIFT:
        offsets = (epochs * BITS_PER_BYTE) % size
        return (base[None, :] + offsets[:, None]) % size
    if kind is StrategyKind.BIT_SHIFT:
        shifts = epochs % size
        return (base[None, :] + shifts[:, None]) % size
    if kind is StrategyKind.RANDOM:
        if rng is None:
            raise ValueError("random shuffling requires an rng")
        return np.argsort(rng.random((count, size)), axis=1).astype(
            np.int64, copy=False
        )
    if kind is StrategyKind.WEAR_AWARE:
        raise ValueError(
            "wear-aware mapping is stateful and resolved by the simulator; "
            "it has no pure per-epoch permutation"
        )
    raise ValueError(f"unhandled strategy {kind!r}")


def wear_aware_permutation(
    lane_loads: np.ndarray, accumulated_wear: np.ndarray
) -> np.ndarray:
    """Greedy min-max lane assignment: heavy roles onto cold lanes.

    Args:
        lane_loads: Per-*logical*-lane writes per iteration (how heavy each
            lane's role is).
        accumulated_wear: Per-*physical*-lane accumulated writes so far.

    Returns:
        Logical-lane -> physical-lane permutation pairing the heaviest
        loads with the least-worn lanes.
    """
    lane_loads = np.asarray(lane_loads, dtype=float)
    accumulated_wear = np.asarray(accumulated_wear, dtype=float)
    if lane_loads.shape != accumulated_wear.shape:
        raise ValueError("lane_loads and accumulated_wear must align")
    heavy_first = np.argsort(-lane_loads, kind="stable")
    cold_first = np.argsort(accumulated_wear, kind="stable")
    permutation = np.empty(lane_loads.size, dtype=np.int64)
    permutation[heavy_first] = cold_first
    return permutation
