"""Standard-NVM wear-leveling baselines — and why they break PIM.

The paper's Section 3.2 argues that classic NVM load balancing
("redistribute write operations by modifying the virtual to physical
address mapping over time") is not directly applicable to PIM because PIM
couples the physical locations of variables: "correct computation
constrains data layout by requiring alignment of the input operands in
memory" (Fig. 6).

This module provides two representative classic mechanisms as working
baselines — Start-Gap [Qureshi 2009] and a write-count table remapper (the
pre-Start-Gap approach the paper's related work describes) — plus
:func:`pim_and_after_remap`, an executable rendition of the Fig. 6
misalignment argument.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


class StartGapRemapper:
    """Start-Gap wear leveling [Qureshi 2009] for a standard NVM region.

    ``n_lines`` logical lines live in ``n_lines + 1`` physical lines; the
    extra line is the *gap*. Every ``gap_write_interval`` writes the gap
    moves down by one line (one line's content is copied into the gap),
    and once the gap has traversed the whole region the *start* register
    advances, rotating the entire logical-to-physical mapping by one. Two
    registers and one spare line achieve near-uniform wear — the paper's
    point of contrast: cheap for memory, unusable for PIM because it
    relocates single lines and so breaks operand alignment.

    Args:
        n_lines: Number of logical lines.
        gap_write_interval: Writes between gap movements (Qureshi's psi).
    """

    def __init__(self, n_lines: int, gap_write_interval: int = 100) -> None:
        if n_lines < 2:
            raise ValueError("n_lines must be at least 2")
        if gap_write_interval < 1:
            raise ValueError("gap_write_interval must be positive")
        self.n_lines = n_lines
        self.gap_write_interval = gap_write_interval
        self.start = 0
        self.gap = n_lines  # physical index of the gap line
        self._writes_since_move = 0
        #: Physical write counts, including gap-movement copy writes.
        self.physical_writes = np.zeros(n_lines + 1, dtype=np.int64)

    def translate(self, logical: int) -> int:
        """Physical line currently backing ``logical``."""
        if not 0 <= logical < self.n_lines:
            raise IndexError(f"logical line {logical} out of range")
        physical = (logical + self.start) % self.n_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def write(self, logical: int) -> int:
        """Perform one logical write; returns the physical line written."""
        physical = self.translate(logical)
        self.physical_writes[physical] += 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_write_interval:
            self._writes_since_move = 0
            self._move_gap()
        return physical

    def _move_gap(self) -> None:
        if self.gap == 0:
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
        else:
            # Copy line gap-1 into the gap: one extra physical write.
            self.physical_writes[self.gap] += 1
            self.gap -= 1


class TableBasedRemapper:
    """Write-count-table remapping (the pre-Start-Gap classic).

    Tracks per-physical-line write counts and, every ``swap_interval``
    writes, swaps the hottest line's mapping with the coldest line's. The
    table cost is what Start-Gap was designed to eliminate ("prior to
    Start-Gap large tables were typically used to track write counts",
    Section 6) — and bit-granularity tables are exactly what the paper
    deems unreasonable for PIM ("maintaining counters to track writes at
    the bit-level is unreasonable", Section 3.2).
    """

    def __init__(self, n_lines: int, swap_interval: int = 1000) -> None:
        if n_lines < 2:
            raise ValueError("n_lines must be at least 2")
        if swap_interval < 1:
            raise ValueError("swap_interval must be positive")
        self.n_lines = n_lines
        self.swap_interval = swap_interval
        self._l2p = np.arange(n_lines, dtype=np.int64)
        self.physical_writes = np.zeros(n_lines, dtype=np.int64)
        self._writes_since_swap = 0

    def translate(self, logical: int) -> int:
        """Physical line currently backing ``logical``."""
        if not 0 <= logical < self.n_lines:
            raise IndexError(f"logical line {logical} out of range")
        return int(self._l2p[logical])

    def write(self, logical: int) -> int:
        """Perform one logical write; returns the physical line written."""
        physical = self.translate(logical)
        self.physical_writes[physical] += 1
        self._writes_since_swap += 1
        if self._writes_since_swap >= self.swap_interval:
            self._writes_since_swap = 0
            self._swap_extremes()
        return physical

    def _swap_extremes(self) -> None:
        hot_physical = int(np.argmax(self.physical_writes))
        cold_physical = int(np.argmin(self.physical_writes))
        if hot_physical == cold_physical:
            return
        p2l: Dict[int, int] = {
            int(p): l for l, p in enumerate(self._l2p)
        }
        hot_logical = p2l[hot_physical]
        cold_logical = p2l[cold_physical]
        # Swapping relocates both lines' contents: two extra writes.
        self.physical_writes[hot_physical] += 1
        self.physical_writes[cold_physical] += 1
        self._l2p[hot_logical] = cold_physical
        self._l2p[cold_logical] = hot_physical


def pim_and_after_remap(x: int, y: int, width: int, shift: int) -> int:
    """Fig. 6 as an executable statement: bitwise PIM AND after a remap.

    ``x`` sits in row 0; a classic wear leveler has shifted ``y`` within
    row 1 by ``shift`` bit positions (with wraparound). A column-parallel
    PIM AND then combines bit ``i`` of ``x`` with whatever now occupies
    column ``i`` of row 1. The result equals ``x & y`` only when
    ``shift % width == 0`` — remapping that is harmless for standard memory
    corrupts in-memory computation.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if x >> width or y >> width:
        raise ValueError("operands must fit in the given width")
    x_bits: List[int] = [(x >> i) & 1 for i in range(width)]
    y_bits: List[int] = [(y >> i) & 1 for i in range(width)]
    shifted = [y_bits[(i - shift) % width] for i in range(width)]
    result_bits = [x_bits[i] & shifted[i] for i in range(width)]
    return sum(bit << i for i, bit in enumerate(result_bits))
