"""Hardware re-mapping: spare-bit register renaming within a lane.

Section 3.2: "Hardware re-mapping requires a spare bit which can be used
to swap logical addresses. For a lane with N physical bits, there are N-1
logical bit addresses and 1 free bit address. ... when a write operation is
performed to logical bit address A in all lanes, the hardware re-directs
the write to the free physical address, overwriting its contents. It then
marks the free physical address as logical address A, and assigns the
previous physical address of A as the free address."

The evaluation applies this "most extreme case of re-mapping on every gate
that uses all lanes" (Section 4). For CRAM-style architectures the pre-set
write accompanies the renamed gate write onto the *same* new physical cell
("an additional write operation would be required"), so a preset gate
counts as one renaming event of write-weight two.

Exact fast path
---------------

Naively this is a per-write stateful simulation — tens of millions of
sequential steps for the paper's 100,000 iterations. We instead exploit a
closed form. Model the lane mapping as a bijection ``pi: domain ->
physical`` where the domain is the N-1 logical addresses plus one FREE
slot. A renamed write to logical ``a`` swaps ``pi(FREE)`` and ``pi(a)`` —
a *domain-side* transposition, independent of ``pi``'s values. Hence after
one iteration of a fixed program, ``pi_1 = pi_0 ∘ tau`` for a fixed
permutation ``tau``, and after ``k`` iterations ``pi_k = pi_0 ∘ tau^k``.
The i-th write of iteration ``k`` lands on ``pi_0(tau^k(d_i))`` where
``d_i`` is a fixed domain element recorded from one symbolic pass. Summing
over ``k`` reduces to counting visits along the cycles of ``tau`` — an
``O(writes + N * (K mod L))`` computation that is *bit-exact* with the
naive replay (property-tested in the test suite).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.gates.gate import Gate
from repro.synth.program import LaneProgram, ReadInstr, WriteInstr


class HardwareRemapper:
    """Exact wear profile of one lane program under hardware re-mapping.

    One instance is built per (program, lane size, preset accounting)
    triple; it precomputes the per-iteration domain trace and the renaming
    permutation ``tau``, after which profiles for any horizon and any
    initial software mapping are cheap.

    Args:
        program: The lane program whose writes get renamed.
        lane_size: Physical bits in the lane (``N``); the program footprint
            must leave at least one spare bit.
        include_presets: Count the CRAM pre-set as an extra write riding on
            each gate's renaming event.
    """

    def __init__(
        self, program: LaneProgram, lane_size: int, include_presets: bool
    ) -> None:
        if program.footprint > lane_size - 1:
            raise ValueError(
                f"hardware re-mapping needs a spare bit: program footprint "
                f"{program.footprint} must be < lane size {lane_size}"
            )
        self.program = program
        self.lane_size = int(lane_size)
        self.include_presets = bool(include_presets)
        self._free_slot = self.lane_size - 1  # domain index of the FREE slot
        self._tau, self._write_events, self._read_events = self._domain_trace()
        self._cycles = _cycles_of(self._tau)
        # Epochs of equal length share their domain-count vectors: the
        # renaming dynamics depend only on the horizon, not on the software
        # mapping installed at epoch start.
        self._domain_cache: dict = {}

    # ------------------------------------------------------------------
    # Symbolic single-iteration pass
    # ------------------------------------------------------------------

    def _domain_trace(
        self,
    ) -> Tuple[np.ndarray, List[Tuple[int, int]], List[int]]:
        """One iteration in domain coordinates, starting from identity.

        Returns ``(tau, write_events, read_events)``: the per-iteration
        domain permutation, the ``(domain_element, write_weight)`` of each
        renaming event, and the domain element of each read.
        """
        n = self.lane_size
        free = self._free_slot
        sigma = np.arange(n, dtype=np.int64)  # current domain permutation
        write_events: List[Tuple[int, int]] = []
        read_events: List[int] = []
        gate_weight = 2 if self.include_presets else 1
        for instr in self.program.instructions:
            if isinstance(instr, WriteInstr):
                write_events.append((int(sigma[free]), 1))
                sigma[free], sigma[instr.address] = (
                    sigma[instr.address],
                    sigma[free],
                )
            elif isinstance(instr, ReadInstr):
                read_events.append(int(sigma[instr.address]))
            elif isinstance(instr, Gate):
                for address in instr.inputs:
                    read_events.append(int(sigma[address]))
                write_events.append((int(sigma[free]), gate_weight))
                sigma[free], sigma[instr.output] = (
                    sigma[instr.output],
                    sigma[free],
                )
            else:
                raise TypeError(f"unknown instruction {instr!r}")
        return sigma, write_events, read_events

    # ------------------------------------------------------------------
    # Exact multi-iteration profiles
    # ------------------------------------------------------------------

    def profile(
        self, iterations: int, within_map: "np.ndarray | None" = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-physical-offset ``(writes, reads)`` over ``iterations`` runs.

        Args:
            iterations: Number of program repetitions (one epoch).
            within_map: Initial logical-to-physical permutation installed by
                the software strategy at the start of the epoch (identity if
                omitted). Its image of the top logical slot is the initial
                free cell.

        Returns:
            Two float arrays of length ``lane_size`` in *physical* offsets.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        domain_writes, domain_reads = self._domain_profiles(iterations)
        n = self.lane_size
        pi0 = (
            np.arange(n, dtype=np.int64)
            if within_map is None
            else np.asarray(within_map, dtype=np.int64)
        )
        if pi0.shape != (n,):
            raise ValueError(f"within_map must have length {n}")
        physical_writes = np.zeros(n)
        physical_writes[pi0] = domain_writes
        physical_reads = np.zeros(n)
        physical_reads[pi0] = domain_reads
        return physical_writes, physical_reads

    def profile_many(
        self,
        lengths: np.ndarray,
        within_maps: "np.ndarray | None" = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`profile`: one epoch per row.

        Row ``e`` equals ``profile(lengths[e], within_maps[e])``. The
        per-length domain-count cache is shared with :meth:`profile`, so
        a chunk of equal-length epochs costs one domain computation plus
        one advanced-indexing scatter for the whole chunk.

        Args:
            lengths: Per-epoch iteration counts, shape ``(E,)``.
            within_maps: Per-epoch initial logical-to-physical maps,
                shape ``(E, lane_size)`` (identity rows if omitted).

        Returns:
            Two ``(E, lane_size)`` float arrays in physical offsets.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.ndim != 1:
            raise ValueError("lengths must be one-dimensional")
        if lengths.size and lengths.min() < 0:
            raise ValueError("iterations must be non-negative")
        n = self.lane_size
        count = lengths.size
        unique, inverse = np.unique(lengths, return_inverse=True)
        write_table = np.empty((unique.size, n))
        read_table = np.empty((unique.size, n))
        for i, length in enumerate(unique):
            write_table[i], read_table[i] = self._domain_profiles(int(length))
        domain_writes = write_table[inverse]
        domain_reads = read_table[inverse]
        if within_maps is None:
            return domain_writes, domain_reads
        within_maps = np.asarray(within_maps, dtype=np.int64)
        if within_maps.shape != (count, n):
            raise ValueError(
                f"within_maps must have shape {(count, n)}, "
                f"got {within_maps.shape}"
            )
        rows = np.arange(count)[:, None]
        physical_writes = np.empty((count, n))
        physical_writes[rows, within_maps] = domain_writes
        physical_reads = np.empty((count, n))
        physical_reads[rows, within_maps] = domain_reads
        return physical_writes, physical_reads

    @property
    def writes_per_iteration(self) -> float:
        """Total write weight one program repetition deposits on the lane.

        Renaming relocates writes; it never changes how many land, so this
        is the per-iteration wear any lane running the program accrues —
        the signal wear-aware between-lane mapping sorts by.
        """
        return float(sum(weight for _, weight in self._write_events))

    def _domain_profiles(self, iterations: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(domain_writes, domain_reads)`` for one horizon."""
        cached = self._domain_cache.get(iterations)
        if cached is None:
            cached = (
                self._domain_counts(self._write_events, iterations),
                self._domain_counts(
                    [(e, 1) for e in self._read_events], iterations
                ),
            )
            self._domain_cache[iterations] = cached
        return cached

    def _domain_counts(
        self, events: List[Tuple[int, int]], iterations: int
    ) -> np.ndarray:
        """Accumulated event counts per domain element over ``iterations``.

        Event ``(d, w)`` contributes weight ``w`` to element
        ``tau^k(d)`` for every iteration ``k``; elements on a ``tau``-cycle
        of length ``L`` are visited ``K // L`` times plus once more for the
        first ``K mod L`` phase offsets.
        """
        n = self.lane_size
        counts = np.zeros(n)
        if iterations == 0 or not events:
            return counts
        weights = np.zeros(n)
        for domain_element, weight in events:
            weights[domain_element] += weight
        for cycle in self._cycles:
            length = cycle.size
            m = weights[cycle]  # event weight by cycle position
            if not m.any():
                continue
            full, remainder = divmod(iterations, length)
            cycle_counts = np.full(length, full * m.sum())
            if remainder:
                # tau^k advances a cycle position by k; the first
                # `remainder` phases deliver one extra visit each, i.e.
                # position j gains sum_{delta<remainder} m[(j-delta) % L]
                # — a wrapped backward window, one prefix-sum pass over
                # the doubled cycle instead of O(L * remainder) rolls.
                prefix = np.zeros(2 * length + 1)
                np.cumsum(np.concatenate([m, m]), out=prefix[1:])
                ends = np.arange(length) + length + 1
                cycle_counts += prefix[ends] - prefix[ends - remainder]
            counts[cycle] += cycle_counts
        return counts

    # ------------------------------------------------------------------
    # Reference implementation (used to validate the algebra)
    # ------------------------------------------------------------------

    def simulate_explicit(
        self, iterations: int, within_map: "np.ndarray | None" = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Naive stateful replay; bit-identical to :meth:`profile`.

        Exposed for tests and for readers who want the paper's mechanism
        spelled out operationally. O(iterations * instructions).
        """
        n = self.lane_size
        mapping = (
            np.arange(n, dtype=np.int64)
            if within_map is None
            else np.asarray(within_map, dtype=np.int64).copy()
        )
        l2p = mapping[: n - 1].copy()  # logical address -> physical offset
        free = int(mapping[n - 1])  # physical offset of the spare bit
        writes = np.zeros(n)
        reads = np.zeros(n)
        gate_weight = 2 if self.include_presets else 1

        def renamed_write(address: int, weight: int) -> None:
            nonlocal free
            writes[free] += weight
            free, l2p[address] = int(l2p[address]), free

        for _ in range(iterations):
            for instr in self.program.instructions:
                if isinstance(instr, WriteInstr):
                    renamed_write(instr.address, 1)
                elif isinstance(instr, ReadInstr):
                    reads[l2p[instr.address]] += 1
                elif isinstance(instr, Gate):
                    for address in instr.inputs:
                        reads[l2p[address]] += 1
                    renamed_write(instr.output, gate_weight)
        return writes, reads


def _cycles_of(permutation: np.ndarray) -> List[np.ndarray]:
    """Cycle decomposition; each cycle lists elements in tau-orbit order."""
    n = permutation.size
    visited = np.zeros(n, dtype=bool)
    cycles: List[np.ndarray] = []
    for start in range(n):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        current = int(permutation[start])
        while current != start:
            cycle.append(current)
            visited[current] = True
            current = int(permutation[current])
        cycles.append(np.asarray(cycle, dtype=np.int64))
    return cycles
