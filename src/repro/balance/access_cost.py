"""Memory-access cost of re-mapped layouts (the paper's Fig. 8 argument).

Section 3.2: random within-lane re-mapping "can cause individual bits of
the variable to spread out to different bytes across the lane. Hence, many
more bytes may need to be accessed in order to read or update the
variable. ... This is less of an issue for column-parallel architectures,
as depicted in Fig. 8" (column-parallel lanes read bits serially anyway).

This module quantifies that cost for a ``b``-bit variable in a lane of
``lane_size`` bits under each strategy, for both orientations:

* row-parallel: a variable is read with byte-granularity accesses; the
  cost is the number of *distinct bytes* its bits occupy (1 byte per 8
  bits when aligned);
* column-parallel: bits are read one row at a time regardless of layout;
  the cost is always ``b`` accesses.
"""

from __future__ import annotations

import numpy as np

from repro.array.geometry import Orientation
from repro.balance.mapping import BITS_PER_BYTE
from repro.balance.software import StrategyKind, make_permutation


def bytes_touched(addresses: np.ndarray) -> int:
    """Distinct bytes covered by a set of physical bit addresses."""
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    return int(np.unique(addresses // BITS_PER_BYTE).size)


def variable_access_cost(
    strategy: StrategyKind,
    orientation: Orientation,
    bits: int,
    lane_size: int,
    epoch: int = 1,
    rng: "np.random.Generator | int | None" = None,
) -> int:
    """Accesses needed to read one ``bits``-wide variable after re-mapping.

    The variable's logical bits start byte-aligned at offset 0; the
    strategy's epoch-``epoch`` permutation relocates them.

    * Column-parallel lanes pay ``bits`` single-bit row accesses no matter
      what (re-mapping is free for memory operations).
    * Row-parallel lanes pay one access per distinct byte the bits land
      in: ``ceil(bits / 8)`` when aligned (St, Bs), up to ``bits`` under
      random shuffling.
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    if lane_size < bits:
        raise ValueError("variable does not fit the lane")
    if orientation is Orientation.COLUMN_PARALLEL:
        return bits
    generator = np.random.default_rng(rng)
    permutation = make_permutation(strategy, lane_size, epoch, generator)
    physical = permutation[np.arange(bits)]
    return bytes_touched(physical)


def expected_random_bytes(bits: int, lane_size: int) -> float:
    """Expected distinct bytes touched by ``bits`` uniformly-placed bits.

    Standard occupancy expectation: with ``m = lane_size / 8`` bytes, the
    probability a given byte holds none of the ``bits`` bits is
    ``C(lane_size - 8, bits) / C(lane_size, bits)``; the expected count of
    non-empty bytes follows by linearity. For 32 bits in a 1024-bit lane
    this is ~28.4 bytes versus 4 when aligned — a ~7x read amplification,
    the Fig. 8 penalty.
    """
    if bits < 1 or lane_size < bits:
        raise ValueError("invalid bits/lane_size")
    if lane_size % BITS_PER_BYTE:
        raise ValueError("lane_size must be a whole number of bytes")
    n_bytes = lane_size // BITS_PER_BYTE
    # P(byte empty) via a product form of the hypergeometric ratio.
    probability_empty = 1.0
    for i in range(BITS_PER_BYTE):
        probability_empty *= (lane_size - bits - i) / (lane_size - i)
    return n_bytes * (1.0 - probability_empty)


def access_cost_table(
    bits: int = 32,
    lane_size: int = 1024,
    trials: int = 64,
    rng: "np.random.Generator | int | None" = 0,
) -> "list[tuple[str, str, float]]":
    """Rows of the Fig. 8 comparison: (strategy, orientation, accesses).

    Random shuffling is averaged over ``trials`` permutations; the other
    strategies are deterministic.
    """
    generator = np.random.default_rng(rng)
    rows = []
    for strategy in (
        StrategyKind.STATIC,
        StrategyKind.BYTE_SHIFT,
        StrategyKind.RANDOM,
    ):
        for orientation in Orientation:
            if strategy is StrategyKind.RANDOM:
                cost = float(
                    np.mean(
                        [
                            variable_access_cost(
                                strategy, orientation, bits, lane_size,
                                rng=generator,
                            )
                            for _ in range(trials)
                        ]
                    )
                )
            else:
                cost = float(
                    variable_access_cost(
                        strategy, orientation, bits, lane_size, epoch=1
                    )
                )
            rows.append((strategy.label, orientation.value, cost))
    return rows
