"""Memory-access-aware re-mapping: shuffle with COPY gates (Table 2).

Section 3.2: computations can be re-mapped while keeping regular memory
read/write access patterns intact by physically shuffling the input
operands with COPY gates before computing, and un-shuffling the output
afterwards. "For a precision of b bits, shuffling requires 2 x b COPY
gates (or 4 x b NOT gates) to move the two input operands ... For
multiplication, the output has twice as many bits, so 2 x b COPY (or 4 x b
NOT) gates are required to move the output back ... In total, we need
4 x b COPY (or 8 x b NOT) gates."

Relative overheads (the paper's closed forms, reproduced as Table 2):

* multiplication: ``4b / (6b^2 - 8b)``  -> 2.17% at b = 32;
* addition: ``(3b + 1) / (5b - 3)``     -> 61.78% at b = 32.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.gates.library import MINIMAL_LIBRARY, GateLibrary
from repro.synth.analysis import adder_counts, multiplier_counts
from repro.synth.bits import BitVector
from repro.synth.multiplier import multiply
from repro.synth.program import LaneProgram, LaneProgramBuilder

#: Operations Table 2 covers.
SUPPORTED_OPERATIONS = ("multiply", "add")


def shuffle_copy_gates(operation: str, bits: int) -> int:
    """COPY gates needed to shuffle inputs and un-shuffle the output.

    Both operations move ``2b`` input bits. Multiplication moves a ``2b``
    output ("in many applications allocating more bits to the output is
    useful; we consider this more general case"); addition moves ``b + 1``.
    """
    _check(operation, bits)
    if operation == "multiply":
        return 2 * bits + 2 * bits
    return 2 * bits + (bits + 1)


def shuffle_overhead_percent(
    operation: str, bits: int, library: GateLibrary = MINIMAL_LIBRARY
) -> float:
    """Extra gates for access-aware shuffling, % of the computation's gates.

    With the minimal library this reproduces Table 2 exactly. "Overhead
    corresponds directly to extra latency and energy as all gates must be
    performed sequentially."
    """
    _check(operation, bits)
    copies = shuffle_copy_gates(operation, bits) * library.copy_gate_cost
    if operation == "multiply":
        compute = multiplier_counts(bits, library).gates
    else:
        compute = adder_counts(bits, library).gates
    return 100.0 * copies / compute


def table2_rows(
    precisions: Sequence[int] = (4, 8, 16, 32, 64),
    library: GateLibrary = MINIMAL_LIBRARY,
) -> List[Tuple[int, float, float]]:
    """Rows of the paper's Table 2: (bits, mult overhead %, add overhead %)."""
    return [
        (
            bits,
            shuffle_overhead_percent("multiply", bits, library),
            shuffle_overhead_percent("add", bits, library),
        )
        for bits in precisions
    ]


def build_shuffled_multiply(
    library: GateLibrary, bits: int, name: str = "shuffled-multiply"
) -> LaneProgram:
    """A multiply program with access-aware shuffling materialized as gates.

    Inputs are loaded at their canonical addresses, copied to fresh
    workspace addresses (the shuffle), multiplied there, and the product is
    copied back to a reserved destination region so regular memory accesses
    observe the original layout (paper Fig. 10). The resulting program has
    exactly ``shuffle_copy_gates("multiply", bits) * copy_cost`` more gates
    than the plain multiply — the overhead Table 2 quantifies.
    """
    builder = LaneProgramBuilder(library, name=name)
    a = builder.input_vector("a", bits)
    b = builder.input_vector("b", bits)
    # Reserve the canonical destination before shuffling, mirroring a fixed
    # data layout whose addresses regular reads/writes rely on.
    destination = BitVector(builder.allocator.alloc_many(2 * bits))
    shuffled_a = BitVector([builder.copy_bit(address) for address in a])
    shuffled_b = BitVector([builder.copy_bit(address) for address in b])
    builder.free_vector(a)
    builder.free_vector(b)
    product = multiply(builder, shuffled_a, shuffled_b, free_inputs=True)
    for source, target in zip(product, destination):
        builder.copy_into(source, target)
        builder.free(source)
    builder.mark_output("product", destination)
    return builder.finish()


def _check(operation: str, bits: int) -> None:
    if operation not in SUPPORTED_OPERATIONS:
        raise ValueError(
            f"operation must be one of {SUPPORTED_OPERATIONS}, got {operation!r}"
        )
    if bits < 2:
        raise ValueError("bits must be at least 2")
