"""Load balancing (wear leveling) for NVPIM.

Implements the paper's strategy space (Section 3.2):

* **Software** re-mapping of the logical-to-physical bit map, within lanes
  and between lanes, applied at recompile time: Static (``St``), Random
  shuffling (``Ra``), Byte-shifting (``Bs``) — 9 combinations;
* **Hardware** re-mapping (``Hw``): spare-bit register renaming applied on
  every write/gate, modelled exactly via a permutation-cycle algebra;
* **Memory-access-aware** re-mapping: COPY-gate shuffling whose gate
  overhead reproduces Table 2;
* **Standard-NVM baselines** (Start-Gap, table-based remap) plus the
  Fig. 6 demonstration of why word-granularity remapping breaks PIM.
"""

from repro.balance.mapping import (
    byte_shift_permutation,
    identity_permutation,
    random_permutation,
)
from repro.balance.software import StrategyKind, make_permutation
from repro.balance.hardware import HardwareRemapper
from repro.balance.access_aware import (
    shuffle_copy_gates,
    shuffle_overhead_percent,
    table2_rows,
)
from repro.balance.nvm_baselines import (
    StartGapRemapper,
    TableBasedRemapper,
    pim_and_after_remap,
)
from repro.balance.config import BalanceConfig, all_configurations

__all__ = [
    "identity_permutation",
    "random_permutation",
    "byte_shift_permutation",
    "StrategyKind",
    "make_permutation",
    "HardwareRemapper",
    "shuffle_copy_gates",
    "shuffle_overhead_percent",
    "table2_rows",
    "StartGapRemapper",
    "TableBasedRemapper",
    "pim_and_after_remap",
    "BalanceConfig",
    "all_configurations",
]
