"""Permutation primitives for logical-to-physical re-mapping.

All mappings are dense permutations: index = logical address, value =
physical address. Software load balancing "can change logical to physical
mapping periodically, arbitrarily re-mapping logic gate operations within
lanes" (Section 3.2, Fig. 7) — a permutation per recompile epoch.
"""

from __future__ import annotations

import numpy as np

#: Bits per byte; byte-shifting moves addresses by whole bytes so that
#: "proper (byte-addressable) read and write operations" are maintained
#: (Section 3.2).
BITS_PER_BYTE = 8


def identity_permutation(size: int) -> np.ndarray:
    """The no-remap (Static) mapping."""
    if size <= 0:
        raise ValueError("size must be positive")
    return np.arange(size, dtype=np.int64)


def random_permutation(
    size: int, rng: "np.random.Generator | int | None" = None
) -> np.ndarray:
    """A uniformly random mapping (the paper's Random shuffling, ``Ra``)."""
    if size <= 0:
        raise ValueError("size must be positive")
    return np.random.default_rng(rng).permutation(size).astype(np.int64)


def byte_shift_permutation(size: int, shift_bytes: int) -> np.ndarray:
    """A cyclic shift by a whole number of bytes (``Bs``).

    Logical address ``i`` maps to ``(i + 8 * shift_bytes) mod size``.
    Shifting by bytes keeps variables byte-aligned, which is why the paper
    prefers it for memory-access friendliness — and why it fails to balance
    workloads whose hot stripes recur with byte-divisible periods
    (Section 5: "shifting columns by an integer number of bytes re-maps
    write-heavy columns to other write-heavy columns").
    """
    if size <= 0:
        raise ValueError("size must be positive")
    offset = (shift_bytes * BITS_PER_BYTE) % size
    return ((np.arange(size, dtype=np.int64) + offset) % size).astype(np.int64)


def invert_permutation(permutation: np.ndarray) -> np.ndarray:
    """Inverse mapping (physical -> logical)."""
    permutation = np.asarray(permutation, dtype=np.int64)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.size, dtype=np.int64)
    return inverse
