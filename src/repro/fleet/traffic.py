"""Stochastic request traffic for fleet campaigns.

Arrival processes draw a fleet-wide request count per **virtual day**,
which the service splits over cohorts (by cohort weight) and dispatches
to arrays as iteration budgets. Three models:

``deterministic``
    Exactly ``rate`` requests every day. Consumes no RNG — this is the
    degenerate mode the bit-exact cross-check against
    :func:`repro.core.failure.failure_timeline` runs in.

``poisson``
    ``N_day ~ Poisson(rate)`` — the memoryless baseline.

``bursty``
    A two-state Markov-modulated Poisson process (MMPP): each day the
    process sits in a *calm* or *burst* state; the day's count is
    Poisson at ``rate`` or ``rate * burst_factor`` respectively, and
    the state flips with the configured probabilities at the day
    boundary. Bursts capture the diurnal/flash-crowd traffic that
    SoftWear-style observed access patterns exhibit and that a plain
    Poisson average hides — burst days concentrate wear.

All draws come from a generator the caller owns (the campaign's
``TRAFFIC_STREAM``), and the per-day consumption pattern is fixed per
model, so a checkpoint that captures the generator state resumes the
arrival sequence bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

#: The recognized arrival models.
TRAFFIC_MODELS = ("deterministic", "poisson", "bursty")

#: MMPP state labels, index-aligned with :class:`TrafficState.state`.
CALM, BURST = 0, 1


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative arrival-process description.

    Attributes:
        model: One of :data:`TRAFFIC_MODELS`.
        rate: Mean requests per virtual day in the calm state.
        burst_factor: Rate multiplier while the MMPP is bursting.
        p_burst: Daily calm→burst transition probability.
        p_calm: Daily burst→calm transition probability.
    """

    model: str = "deterministic"
    rate: float = 1000.0
    burst_factor: float = 8.0
    p_burst: float = 0.1
    p_calm: float = 0.5

    def __post_init__(self) -> None:
        if self.model not in TRAFFIC_MODELS:
            raise ValueError(
                f"unknown traffic model {self.model!r}; "
                f"choose from {TRAFFIC_MODELS}"
            )
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        for name in ("p_burst", "p_calm"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def identity(self) -> dict:
        """JSON-able canonical form (feeds the fleet spec hash)."""
        payload = {"model": self.model, "rate": self.rate}
        if self.model == "bursty":
            payload.update(
                burst_factor=self.burst_factor,
                p_burst=self.p_burst,
                p_calm=self.p_calm,
            )
        return payload

    @property
    def mean_rate(self) -> float:
        """Long-run mean requests/day (MMPP stationary mixture)."""
        if self.model != "bursty":
            return self.rate
        denom = self.p_burst + self.p_calm
        if denom == 0:
            return self.rate  # absorbing calm start state
        burst_share = self.p_burst / denom
        return self.rate * (1 - burst_share) + (
            self.rate * self.burst_factor * burst_share
        )


@dataclass
class TrafficState:
    """Mutable per-campaign arrival-process state (checkpointed).

    Only the MMPP uses it (``state`` = :data:`CALM` or :data:`BURST`);
    the other models keep it for a uniform checkpoint shape.
    """

    state: int = CALM

    def to_json(self) -> Dict[str, int]:
        """Checkpoint payload."""
        return {"state": int(self.state)}

    @classmethod
    def from_json(cls, payload: Dict[str, int]) -> "TrafficState":
        """Restore from a checkpoint payload."""
        return cls(state=int(payload["state"]))


def draw_day(
    spec: TrafficSpec,
    state: TrafficState,
    rng: np.random.Generator,
) -> int:
    """The request count for one virtual day; advances ``state``.

    The deterministic model consumes no RNG draws at all — the generator
    state after a deterministic day equals the state before it, which is
    what lets deterministic campaigns be replayed from any point without
    an RNG checkpoint mattering.
    """
    if spec.model == "deterministic":
        return int(round(spec.rate))
    if spec.model == "poisson":
        return int(rng.poisson(spec.rate))
    # bursty: draw at the current state's rate, then flip the state.
    rate = spec.rate * (spec.burst_factor if state.state == BURST else 1.0)
    count = int(rng.poisson(rate))
    flip_p = spec.p_calm if state.state == BURST else spec.p_burst
    if rng.random() < flip_p:
        state.state = BURST if state.state == CALM else CALM
    return count


def draw_window(
    spec: TrafficSpec,
    state: TrafficState,
    rng: np.random.Generator,
    days: int,
) -> np.ndarray:
    """Request counts for ``days`` consecutive virtual days (batched).

    Bit-compatible with calling :func:`draw_day` ``days`` times: the
    generator consumes the exact same stream, in the same order, so a
    campaign may freely mix windowed and per-day stepping (and a
    checkpoint taken at any window boundary resumes identically under
    either). Per model:

    ``deterministic``
        A constant vector; zero RNG draws, same as the per-day path.

    ``poisson``
        One vectorized ``rng.poisson(rate, size=days)`` call. NumPy
        fills the output by running the scalar sampler sequentially off
        the same bit stream, so the drawn sequence is identical to
        ``days`` scalar calls (pinned by ``tests/test_fleet_traffic.py``).

    ``bursty``
        The MMPP interleaves a Poisson draw and a state-flip uniform
        *per day*, and the Poisson sampler consumes a data-dependent
        number of raw draws — so a single batched call cannot reproduce
        the stream. The window path instead loops :func:`draw_day`
        (trivially stream-identical); the batching win for MMPP is the
        single traffic call per window at the service layer, not a
        vectorized kernel.
    """
    if days < 1:
        raise ValueError("days must be positive")
    if spec.model == "deterministic":
        return np.full(days, int(round(spec.rate)), dtype=np.int64)
    if spec.model == "poisson":
        return rng.poisson(spec.rate, size=days).astype(np.int64)
    return np.array(
        [draw_day(spec, state, rng) for _ in range(days)], dtype=np.int64
    )


def split_requests(
    total: int,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Split a day's requests over cohorts.

    One cohort takes everything without touching the RNG (keeping the
    single-cohort degenerate case draw-free); otherwise a multinomial
    over the normalized cohort weights.
    """
    if len(weights) == 1:
        return np.array([total], dtype=np.int64)
    if total == 0:
        return np.zeros(len(weights), dtype=np.int64)
    return rng.multinomial(total, weights).astype(np.int64)


def split_requests_window(
    totals: np.ndarray,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-cohort splits for a whole day window at once.

    Returns a ``(days, cohorts)`` int64 matrix whose rows are exactly
    what :func:`split_requests` would have produced day by day, off the
    same generator stream: NumPy's array-``n`` multinomial runs the
    scalar kernel per row in order, and zero-request days are masked
    out before drawing because the per-day path never touches the RNG
    for them (both facts pinned by ``tests/test_fleet_traffic.py``).
    """
    totals = np.asarray(totals, dtype=np.int64)
    if len(weights) == 1:
        return totals[:, None].copy()
    out = np.zeros((len(totals), len(weights)), dtype=np.int64)
    nonzero = np.flatnonzero(totals)
    if len(nonzero):
        out[nonzero] = rng.multinomial(totals[nonzero], weights)
    return out


def window_draw_plan(model: str, n_cohorts: int) -> Dict[str, str]:
    """The declared RNG-consumption plan for a window of traffic draws.

    This is the *decision procedure* the service's windowed path uses
    (and :func:`repro.verify.check_draw_plan` statically re-checks): for
    each of the two per-day RNG touchpoints — the arrival ``draw`` and
    the cohort ``split`` — it names how a window may batch the calls
    without diverging from the serial per-day stream:

    ``"batched"``
        One vectorized call for the whole window is stream-identical to
        the per-day loop (or the path consumes no RNG at all).

    ``"looped"``
        The window must loop the scalar per-day call; a single batched
        call could consume a different raw-draw sequence.

    ``"interleaved"``
        The two touchpoints interleave on the same generator per day,
        so the window must run full per-day iterations — neither half
        may be hoisted into its own batch.

    Rules: the ``deterministic`` model draws nothing (``batched`` by
    vacuity), and a single cohort splits without the RNG — so with one
    cohort the split is ``batched`` and the draw is ``batched`` for
    ``poisson`` (NumPy's vectorized sampler walks the same bit stream)
    but ``looped`` for ``bursty`` (data-dependent raw-draw counts plus
    a state-flip uniform per day). With multiple cohorts and a stochastic
    model, draw and split alternate on the same stream every day, so
    both come back ``interleaved``.
    """
    if model not in TRAFFIC_MODELS:
        raise ValueError(
            f"unknown traffic model {model!r}; choose from {TRAFFIC_MODELS}"
        )
    if n_cohorts < 1:
        raise ValueError("n_cohorts must be positive")
    if model == "deterministic":
        return {"draw": "batched", "split": "batched"}
    if n_cohorts == 1:
        return {
            "draw": "batched" if model == "poisson" else "looped",
            "split": "batched",
        }
    return {"draw": "interleaved", "split": "interleaved"}


def capacity_iterations(
    iteration_latency_s: float, duty_cycle: float
) -> float:
    """How many workload iterations one array can serve per virtual day.

    The Bitlet-style throughput litmus: an array at ``duty_cycle``
    utilization of an 86400-second day, each iteration costing
    ``iteration_latency_s`` seconds of array time.
    """
    if iteration_latency_s <= 0:
        raise ValueError("iteration_latency_s must be positive")
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError("duty_cycle must be in (0, 1]")
    return duty_cycle * 86400.0 / iteration_latency_s


def rng_state_to_json(rng: np.random.Generator) -> dict:
    """The generator's bit-generator state as a JSON-able dict.

    PCG64 state is a nested dict of Python ints (arbitrary precision —
    JSON carries them exactly), so a round trip restores the generator
    bit-identically.
    """
    return rng.bit_generator.state


def rng_state_from_json(payload: dict) -> np.random.Generator:
    """Rebuild a generator from :func:`rng_state_to_json` output."""
    rng = np.random.Generator(getattr(np.random, payload["bit_generator"])())
    rng.bit_generator.state = payload
    return rng


def traffic_rng(seed: int) -> np.random.Generator:
    """The campaign's dedicated arrival-process generator."""
    from repro.fleet.population import TRAFFIC_STREAM

    return np.random.default_rng([seed, TRAFFIC_STREAM])
