"""Fleet populations: many arrays, heterogeneous technologies and cohorts.

A fleet is a population of PIM arrays. Each array belongs to a **cohort**
— one (workload, balance-config) pair whose calibrated wear profile is
simulated once and shared by every array in the cohort — and carries a
**technology** preset (MRAM/RRAM/PCM, :mod:`repro.devices.technology`)
plus optional per-cell lognormal endurance variation
(:class:`~repro.devices.endurance.LognormalEndurance`).

The per-array death threshold (iterations until the array is dead) is
computed with *exactly* the closed-form machinery of
:mod:`repro.core.failure` — :func:`cell_failure_times` and
:func:`offset_death_times` over the cohort's per-iteration rate matrix —
so a degenerate one-array fleet reproduces
:func:`repro.core.failure.failure_timeline` bit for bit (pinned by
``tests/test_fleet_service.py``).

Assignment of cohorts and technologies to array slots is deterministic
(largest-remainder proportional allocation, interleaved), so a
population is a pure function of its spec; all randomness lives in the
per-cell endurance draws, whose RNG streams derive from
``(campaign seed, BUDGET_STREAM, array index)`` and are therefore
independent of visitation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.balance.config import BalanceConfig
from repro.core.failure import cell_failure_times, offset_death_times
from repro.devices.endurance import (
    EnduranceModel,
    LognormalEndurance,
    UniformEndurance,
)
from repro.devices.technology import Technology, technology_by_name
from repro.workloads.registry import (
    UnknownWorkloadError,
    get_workload,
    get_workload_factory,
    workload_factories,
)

#: Workload factories a cohort spec may name. Since the registry became
#: the single resolution path this is a live, read-only view of
#: :data:`repro.workloads.registry.workload_factories` — anything
#: registered there (built-ins, trace workloads, user plugins) can serve
#: fleet traffic. The name survives as the stable public alias.
WORKLOAD_FACTORIES = workload_factories

#: Spawn-key tags for the independent RNG streams a campaign derives from
#: its base seed (``np.random.default_rng([seed, TAG, ...])``). Keeping
#: the budget and traffic streams disjoint means per-cell endurance draws
#: never perturb the arrival process and vice versa.
BUDGET_STREAM = 0xB0D6
TRAFFIC_STREAM = 0x7AFF


@dataclass(frozen=True)
class CohortSpec:
    """One homogeneous slice of the fleet.

    Attributes:
        workload: Kernel name (a :data:`WORKLOAD_FACTORIES` key).
        config: Balance-configuration label (``BalanceConfig.from_label``).
        weight: Relative share of arrays *and* of request traffic.
        iterations_per_request: Workload iterations one request costs.
    """

    workload: str
    config: str = "StxSt"
    weight: float = 1.0
    iterations_per_request: int = 1

    def __post_init__(self) -> None:
        try:
            get_workload_factory(self.workload)
        except UnknownWorkloadError as exc:
            # Cohort specs have always raised ValueError; re-wrap with
            # the registry's richer message (suggestion + provenance).
            raise ValueError(str(exc)) from None
        BalanceConfig.from_label(self.config)  # validates the label
        if self.weight <= 0:
            raise ValueError("cohort weight must be positive")
        if self.iterations_per_request <= 0:
            raise ValueError("iterations_per_request must be positive")

    @property
    def key(self) -> str:
        """Stable identifier (also the result-store shard key)."""
        return f"{self.workload}-{self.config}"

    def build_workload(self):
        """A fresh workload instance for this cohort."""
        return get_workload(self.workload)

    def identity(self) -> dict:
        """JSON-able canonical form (feeds the fleet spec hash)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "weight": self.weight,
            "iterations_per_request": self.iterations_per_request,
        }


@dataclass(frozen=True)
class PopulationSpec:
    """Declarative description of a fleet population.

    Attributes:
        n_arrays: Population size.
        technology_mix: ``((name, weight), ...)`` technology shares.
        cohorts: The cohort slices (weights double as traffic shares).
        endurance_sigma: Per-cell lognormal endurance spread (0 =
            the paper's uniform-endurance assumption).
        repacking: Die at the fault-aware repacking horizon
            (:func:`repro.core.failure.failure_timeline` semantics)
            instead of at first cell failure.
    """

    n_arrays: int = 64
    technology_mix: Tuple[Tuple[str, float], ...] = (("MRAM", 1.0),)
    cohorts: Tuple[CohortSpec, ...] = (CohortSpec("mult"),)
    endurance_sigma: float = 0.0
    repacking: bool = False

    def __post_init__(self) -> None:
        if self.n_arrays < 1:
            raise ValueError("n_arrays must be positive")
        if not self.technology_mix:
            raise ValueError("technology_mix must not be empty")
        for name, weight in self.technology_mix:
            technology_by_name(name)  # validates the preset
            if weight <= 0:
                raise ValueError(f"technology weight for {name} must be > 0")
        if not self.cohorts:
            raise ValueError("at least one cohort is required")
        keys = [cohort.key for cohort in self.cohorts]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate cohort keys: {sorted(keys)}")
        if self.endurance_sigma < 0:
            raise ValueError("endurance_sigma must be non-negative")

    def identity(self) -> dict:
        """JSON-able canonical form (feeds the fleet spec hash)."""
        return {
            "n_arrays": self.n_arrays,
            "technology_mix": [list(pair) for pair in self.technology_mix],
            "cohorts": [cohort.identity() for cohort in self.cohorts],
            "endurance_sigma": self.endurance_sigma,
            "repacking": self.repacking,
        }

    @property
    def cohort_weights(self) -> np.ndarray:
        """Normalized cohort weights (traffic and population shares)."""
        weights = np.array([c.weight for c in self.cohorts], dtype=float)
        return weights / weights.sum()


def proportional_counts(weights: Sequence[float], total: int) -> List[int]:
    """Largest-remainder apportionment of ``total`` slots over ``weights``.

    Deterministic, exact (counts sum to ``total``), and stable: ties in
    the fractional remainders break toward the earlier entry.
    """
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    quotas = weights / weights.sum() * total
    counts = np.floor(quotas).astype(int)
    remainder = total - int(counts.sum())
    if remainder:
        # Stable sort descending by fractional part; earlier entries win ties.
        fractional = quotas - counts
        order = np.argsort(-fractional, kind="stable")
        for index in order[:remainder]:
            counts[index] += 1
    return counts.tolist()


def interleaved_assignment(weights: Sequence[float], total: int) -> np.ndarray:
    """Per-slot category assignment that interleaves categories evenly.

    Greedy largest-deficit scheduling: slot ``i`` goes to the category
    whose assigned count lags its quota the most. Category totals match
    :func:`proportional_counts`; within any prefix the mix stays close
    to the target, so e.g. an 8-array 50/50 fleet alternates rather than
    splitting into two blocks.
    """
    counts = np.asarray(proportional_counts(weights, total), dtype=int)
    weights = np.asarray(weights, dtype=float)
    share = weights / weights.sum()
    assigned = np.zeros(len(counts), dtype=int)
    out = np.empty(total, dtype=int)
    for slot in range(total):
        deficit = share * (slot + 1) - assigned
        deficit[assigned >= counts] = -np.inf  # category exhausted
        out[slot] = int(np.argmax(deficit))
        assigned[out[slot]] += 1
    return out


@dataclass(frozen=True)
class Population:
    """A concrete fleet population: per-array cohort and technology.

    Built deterministically from a :class:`PopulationSpec` — no RNG is
    consumed — so two builds of the same spec are identical.
    """

    spec: PopulationSpec
    cohort_index: np.ndarray = field(repr=False)
    technology_index: np.ndarray = field(repr=False)
    technologies: Tuple[Technology, ...]

    @classmethod
    def build(cls, spec: PopulationSpec) -> "Population":
        """Assign each array slot a cohort and a technology."""
        cohort_index = interleaved_assignment(
            [c.weight for c in spec.cohorts], spec.n_arrays
        )
        # Lay the interleaved technology sequence over the arrays in
        # cohort-grouped order, not slot order: two lockstep
        # interleavings would correlate perfectly (e.g. a 50/50 cohort
        # split times a 50/50 technology split puts every PCM array in
        # one cohort). Grouping first gives each cohort its own
        # proportional technology mix.
        technology_sequence = interleaved_assignment(
            [w for _, w in spec.technology_mix], spec.n_arrays
        )
        technology_index = np.empty(spec.n_arrays, dtype=int)
        technology_index[np.argsort(cohort_index, kind="stable")] = (
            technology_sequence
        )
        technologies = tuple(
            technology_by_name(name) for name, _ in spec.technology_mix
        )
        return cls(
            spec=spec,
            cohort_index=cohort_index,
            technology_index=technology_index,
            technologies=technologies,
        )

    @property
    def n_arrays(self) -> int:
        """Population size."""
        return self.spec.n_arrays

    def arrays_in_cohort(self, cohort: int) -> np.ndarray:
        """Indices of the arrays belonging to cohort ``cohort``."""
        return np.flatnonzero(self.cohort_index == cohort)

    def technology_of(self, array: int) -> Technology:
        """The technology preset of array ``array``."""
        return self.technologies[int(self.technology_index[array])]

    def endurance_model_for(self, array: int, seed: int) -> EnduranceModel:
        """The per-cell endurance model of one array.

        With ``endurance_sigma == 0`` this is the paper's uniform
        assumption at the array's technology endurance; otherwise a
        lognormal with that endurance as the median, seeded from
        ``(seed, BUDGET_STREAM, array)`` so draws are independent of the
        order arrays are processed in.
        """
        technology = self.technology_of(array)
        if self.spec.endurance_sigma == 0:
            return UniformEndurance(technology.endurance_writes)
        return LognormalEndurance(
            technology.endurance_writes,
            sigma=self.spec.endurance_sigma,
            rng=np.random.default_rng([seed, BUDGET_STREAM, array]),
        )

    def death_thresholds(
        self,
        cohort_results: Sequence,
        seed: int,
        required_offsets: Optional[Sequence[Optional[int]]] = None,
    ) -> np.ndarray:
        """Per-array iterations-to-death under each cohort's wear pattern.

        Mirrors :func:`repro.core.failure.failure_timeline` exactly:
        the cohort simulation's accumulated counters give the long-run
        per-cell wear rate, the endurance model supplies per-cell
        budgets, and the array dies at the first cell failure — or,
        with ``repacking``, at the order-statistic repacking horizon
        over ``required_offsets``.

        Args:
            cohort_results: One (possibly store-restored) simulation
                result per cohort, in cohort order.
            seed: Campaign base seed (drives the budget streams).
            required_offsets: Per-cohort minimum footprint; required
                when the spec enables repacking.
        """
        if len(cohort_results) != len(self.spec.cohorts):
            raise ValueError(
                f"expected {len(self.spec.cohorts)} cohort results, "
                f"got {len(cohort_results)}"
            )
        if self.spec.repacking and (
            required_offsets is None
            or any(offsets is None for offsets in required_offsets)
        ):
            raise ValueError("repacking requires per-cohort required_offsets")
        rates: Dict[int, np.ndarray] = {}
        thresholds = np.empty(self.n_arrays, dtype=float)
        for array in range(self.n_arrays):
            cohort = int(self.cohort_index[array])
            rate = rates.get(cohort)
            if rate is None:
                result = cohort_results[cohort]
                rate = result.state.write_counts / result.iterations
                rates[cohort] = rate
            model = self.endurance_model_for(array, seed)
            budgets = model.sample_budgets(rate.shape)
            times = cell_failure_times(rate, budgets)
            if not self.spec.repacking:
                thresholds[array] = float(times.min())
                continue
            result = cohort_results[cohort]
            architecture = result.architecture
            deaths = offset_death_times(times, architecture.orientation)
            required = int(required_offsets[cohort])
            k = architecture.lane_size - required + 1
            thresholds[array] = float(np.sort(deaths)[k - 1])
        return thresholds
