"""Fleet survival analytics: Kaplan–Meier, replacement rate, headroom.

Deaths come out of a campaign as integer virtual days (``-1`` = alive at
the horizon, i.e. right-censored). The estimator here is the standard
Kaplan–Meier product-limit; with every array followed for the full
horizon (no staggered entry) it degenerates to the empirical survival
function, and for a one-array deterministic-traffic fleet the curve's
single step lands exactly on the closed-form
:func:`repro.core.failure.failure_timeline` day — the bit-exactness
property ``tests/test_fleet_survival.py`` pins.

Capacity planning inverts the curve: given a demand of ``d`` arrays and
a survival probability ``s`` at the planning horizon, provision the
smallest ``n`` with ``P(Binomial(n, s) >= d) >= slo`` — the binomial
tail evaluated in log space (:func:`math.lgamma`), no SciPy needed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class SurvivalCurve:
    """A Kaplan–Meier survival curve over virtual days.

    Attributes:
        horizon_days: Campaign length; alive arrays are censored here.
        days: Distinct event days, ascending.
        deaths: Deaths on each event day.
        at_risk: Arrays still alive entering each event day.
        survival: KM estimate ``S(day)`` after each event day.
    """

    horizon_days: int
    days: Sequence[int]
    deaths: Sequence[int]
    at_risk: Sequence[int]
    survival: Sequence[float]

    def probability_at(self, day: int) -> float:
        """``S(day)`` — survival probability at the end of ``day``."""
        out = 1.0
        for event_day, value in zip(self.days, self.survival):
            if event_day > day:
                break
            out = value
        return out

    def to_json(self) -> Dict:
        """Canonical JSON-able form (hashed into the fleet report)."""
        return {
            "horizon_days": self.horizon_days,
            "days": [int(d) for d in self.days],
            "deaths": [int(d) for d in self.deaths],
            "at_risk": [int(n) for n in self.at_risk],
            "survival": [float(s) for s in self.survival],
        }

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON form (the CI smoke pin)."""
        return canonical_hash(self.to_json())


def canonical_hash(payload: Dict) -> str:
    """SHA-256 of a dict's canonical (sorted, compact) JSON encoding.

    Floats serialize via ``repr`` so equal doubles always hash equally;
    this is the hash the CI fleet-smoke job pins.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def kaplan_meier(
    death_days: Sequence[int], horizon_days: int
) -> SurvivalCurve:
    """Kaplan–Meier product-limit estimate from per-array death days.

    Args:
        death_days: One entry per array — the virtual day it died, or
            ``-1`` if it survived to the horizon (right-censored).
        horizon_days: Campaign length in virtual days.
    """
    deaths = np.asarray(death_days, dtype=np.int64)
    n = len(deaths)
    if n == 0:
        raise ValueError("death_days must not be empty")
    if horizon_days < 1:
        raise ValueError("horizon_days must be positive")
    observed = deaths[deaths >= 0]
    if np.any(observed > horizon_days):
        raise ValueError("death day beyond the horizon")
    event_days, counts = np.unique(observed, return_counts=True)
    at_risk: List[int] = []
    survival: List[float] = []
    alive = n
    s = 1.0
    for day, died in zip(event_days, counts):
        at_risk.append(int(alive))
        s *= 1.0 - died / alive
        survival.append(float(s))
        alive -= int(died)
    return SurvivalCurve(
        horizon_days=int(horizon_days),
        days=[int(d) for d in event_days],
        deaths=[int(c) for c in counts],
        at_risk=at_risk,
        survival=survival,
    )


def annual_replacement_rate(
    death_days: Sequence[int], horizon_days: int
) -> float:
    """Expected replacements per array per year.

    Deaths divided by observed array-days (each array contributes its
    death day, or the full horizon when censored), scaled to a 365-day
    year. This is the incidence-rate view operators budget spares with.
    """
    deaths = np.asarray(death_days, dtype=np.int64)
    if len(deaths) == 0:
        raise ValueError("death_days must not be empty")
    exposure = np.where(deaths >= 0, deaths, horizon_days).astype(float)
    # An array dying on day d was in service d days; clamp day-0 deaths
    # to one day of exposure so the rate stays finite.
    total_days = float(np.maximum(exposure, 1.0).sum())
    n_deaths = int((deaths >= 0).sum())
    return n_deaths / total_days * 365.0


def binomial_tail(n: int, k: int, p: float) -> float:
    """``P(Binomial(n, p) >= k)`` in log space — SciPy-free.

    Exact summation of the upper tail; with ``n`` in the thousands this
    is a few thousand lgamma calls, well inside planning-tool budgets.
    """
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for i in range(k, n + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
    return min(total, 1.0)


def required_fleet_size(
    demand_arrays: int, survival_probability: float, slo: float
) -> int:
    """Smallest fleet meeting demand at the horizon with SLO confidence.

    The smallest ``n`` with ``P(Binomial(n, s) >= demand) >= slo`` —
    found by doubling then bisecting, so the cost is logarithmic in the
    answer.

    Args:
        demand_arrays: Arrays that must still be alive at the horizon.
        survival_probability: Per-array ``S(horizon)`` from the curve.
        slo: Required confidence, e.g. ``0.999``.
    """
    if demand_arrays < 0:
        raise ValueError("demand_arrays must be non-negative")
    if not 0.0 < slo < 1.0:
        raise ValueError("slo must be in (0, 1)")
    if demand_arrays == 0:
        return 0
    if survival_probability <= 0.0:
        raise ValueError(
            "no fleet size meets demand with zero survival probability"
        )
    lo, hi = demand_arrays, demand_arrays
    while binomial_tail(hi, demand_arrays, survival_probability) < slo:
        hi *= 2
        if hi > 10**9:
            raise ValueError("required fleet size exceeds 1e9 arrays")
    while lo < hi:
        mid = (lo + hi) // 2
        if binomial_tail(mid, demand_arrays, survival_probability) >= slo:
            hi = mid
        else:
            lo = mid + 1
    return lo


def capacity_headroom(
    n_arrays: int,
    demand_arrays: int,
    survival_probability: float,
    slo: float,
) -> Dict:
    """SLO-driven provisioning summary for the fleet report.

    Returns the required fleet size for the demand (see
    :func:`required_fleet_size`), the headroom the current fleet carries
    over it (negative = under-provisioned), and the probability the
    current fleet meets demand at the horizon. With zero survival
    probability and nonzero demand no finite fleet works; ``required``
    and ``headroom`` come back ``None`` with ``meets_slo`` false rather
    than raising — a fleet report must be buildable for any outcome.
    """
    if demand_arrays > 0 and survival_probability <= 0.0:
        return {
            "demand_arrays": int(demand_arrays),
            "survival_probability": float(survival_probability),
            "slo": float(slo),
            "required_arrays": None,
            "headroom_arrays": None,
            "meets_slo": False,
            "p_meet_demand": 0.0,
        }
    required = required_fleet_size(demand_arrays, survival_probability, slo)
    return {
        "demand_arrays": int(demand_arrays),
        "survival_probability": float(survival_probability),
        "slo": float(slo),
        "required_arrays": int(required),
        "headroom_arrays": int(n_arrays - required),
        "meets_slo": bool(n_arrays >= required),
        "p_meet_demand": float(
            binomial_tail(n_arrays, demand_arrays, survival_probability)
        ),
    }
