"""Checkpointed fleet-campaign state (kill-safe, resume-deterministic).

A checkpoint is one JSON file capturing everything the day loop needs to
continue: the last completed day, per-array cumulative iterations and
death days, traffic totals, the arrival-process state, and the traffic
generator's full PCG64 state. Writes are atomic (temp file + rename),
so a campaign killed mid-write leaves only complete checkpoints behind;
resuming from the latest one replays the remaining days bit-identically
(Python's JSON round-trips both doubles and arbitrary-precision ints
exactly, and the RNG state restores the arrival stream in place).

File names carry the campaign's spec hash —
``fleet-<hash12>-day<N>.json`` — so checkpoints from different campaigns
can share a directory without cross-resume, and a spec change silently
invalidates old checkpoints rather than corrupting a resume.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Bumped whenever the checkpoint payload shape changes; a mismatch is
#: treated as "no checkpoint" rather than a best-effort parse.
CHECKPOINT_VERSION = 1


class CheckpointManager:
    """Reads and writes the checkpoint files of one campaign.

    Args:
        directory: Where checkpoints live (created if missing).
        campaign_hash: The campaign's spec content hash; only
            checkpoints stamped with it are visible to this manager.
    """

    def __init__(
        self, directory: Union[str, Path], campaign_hash: str
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.campaign_hash = campaign_hash

    # -- paths ----------------------------------------------------------

    @property
    def _stem(self) -> str:
        return f"fleet-{self.campaign_hash[:12]}"

    def path_for(self, day: int) -> Path:
        """Where the checkpoint for completed day ``day`` lives."""
        return self.directory / f"{self._stem}-day{day:06d}.json"

    # -- operations -----------------------------------------------------

    def save(self, day: int, state: Dict) -> Path:
        """Atomically write the checkpoint for completed day ``day``."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "campaign_hash": self.campaign_hash,
            "day": int(day),
            "state": state,
        }
        path = self.path_for(day)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def load(self, day: int) -> Optional[Dict]:
        """The state payload checkpointed after ``day``, or ``None``."""
        return self._read(self.path_for(day))

    def _read(self, path: Path) -> Optional[Dict]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CHECKPOINT_VERSION
            or payload.get("campaign_hash") != self.campaign_hash
        ):
            return None
        return payload.get("state")

    def days(self) -> List[int]:
        """Completed days with a readable checkpoint, ascending."""
        pattern = re.compile(
            re.escape(self._stem) + r"-day(\d{6})\.json$"
        )
        out = []
        for path in sorted(self.directory.glob(f"{self._stem}-day*.json")):
            match = pattern.search(path.name)
            if match:
                out.append(int(match.group(1)))
        return out

    def latest(self) -> Optional[Tuple[int, Dict]]:
        """The most recent readable checkpoint as ``(day, state)``.

        Unreadable or stale-format files are skipped (falling back to
        the next-newest), so a truncated final checkpoint degrades to a
        slightly earlier resume point instead of a failed resume.
        """
        for day in reversed(self.days()):
            state = self.load(day)
            if state is not None:
                return day, state
        return None

    def clear(self) -> int:
        """Delete this campaign's checkpoints; returns count removed."""
        removed = 0
        for day in self.days():
            self.path_for(day).unlink(missing_ok=True)
            removed += 1
        return removed
