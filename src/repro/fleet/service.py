"""The fleet service: a long-lived, checkpointed endurance campaign.

:class:`FleetService` extends the one-shot :class:`ExperimentEngine`
batch model into a job layer for population-scale questions. A campaign
runs in three phases:

1. **Calibrate** — simulate each cohort's wear profile once through the
   experiment engine (store-cached, shard per cohort), giving the
   per-cell write *rates* every array in the cohort shares.
2. **Advance** — a vectorized virtual-day loop: draw the day's request
   count from the traffic model, split it over cohorts, dispatch
   iteration budgets to live arrays (capped by the Bitlet-style
   throughput capacity), and retire arrays whose cumulative iterations
   cross their closed-form death thresholds.
3. **Report** — fold the death days into survival analytics
   (:mod:`repro.fleet.survival`) and a hashable
   :class:`~repro.fleet.report.FleetReport`.

Nothing in the day loop re-simulates wear: thresholds come from
:meth:`Population.death_thresholds`, which reuses the exact
:mod:`repro.core.failure` closed forms — that is what makes a 10,000
array × 10 year campaign tractable *and* what pins the degenerate
one-array case bit-exact to :func:`~repro.core.failure.failure_timeline`.

Campaign state (cumulative iterations, death days, traffic RNG state)
checkpoints through :class:`~repro.fleet.checkpoint.CheckpointManager`;
a killed campaign resumes from its last checkpoint and produces a final
report bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.array.architecture import default_architecture
from repro.balance.config import BalanceConfig
from repro.core.backend import flush_pool_counters, get_backend
from repro.core.failure import minimum_footprint
from repro.engine.runner import ExperimentEngine, require_ok
from repro.engine.spec import JobSpec
from repro.engine.store import ResultStore
from repro.fleet.checkpoint import CheckpointManager
from repro.fleet.parallel import (
    EVEN,
    WORN,
    WORN_FALLBACK,
    ParallelDayExecutor,
    no_death_window,
)
from repro.fleet.population import Population, PopulationSpec
from repro.fleet.report import FleetReport
from repro.fleet.survival import (
    annual_replacement_rate,
    canonical_hash,
    capacity_headroom,
    kaplan_meier,
)
from repro.fleet.traffic import (
    TrafficSpec,
    TrafficState,
    capacity_iterations,
    draw_day,
    draw_window,
    rng_state_from_json,
    rng_state_to_json,
    split_requests,
    split_requests_window,
    traffic_rng,
    window_draw_plan,
)
from repro.telemetry import get_telemetry
from repro.verify import VerificationError, verify_fleet_spec

#: The recognized dispatch policies.
DISPATCH_POLICIES = ("even", "least_worn")


@dataclass(frozen=True)
class FleetSpec:
    """Everything that determines a fleet campaign's outcome.

    Like :class:`~repro.engine.spec.JobSpec`, execution knobs that
    cannot change results (``kernel``, ``chunk_size``) are carried for
    convenience but excluded from the content hash, so a campaign keeps
    its identity — and its checkpoints — across kernel switches.

    Attributes:
        population: The fleet's makeup.
        traffic: The arrival process.
        days: Campaign horizon in virtual days.
        seed: Base seed for every campaign RNG stream.
        dispatch: ``"even"`` splits a cohort's demand uniformly over its
            live arrays; ``"least_worn"`` allocates proportionally to
            remaining endurance headroom (software wear-leveling at
            fleet scale).
        duty_cycle: Fraction of each 86400 s day an array may compute.
        slo: Confidence level for the capacity-headroom analysis.
        rows: Cohort-calibration array rows.
        cols: Cohort-calibration array cols.
        cohort_iterations: Iterations for each cohort's wear simulation.
        kernel: Simulation kernel (hash-excluded).
        chunk_size: Batched-kernel chunk size (hash-excluded).
        backend: Array backend for cohort calibration and the day loop's
            vector math (hash-excluded; falls back to numpy when the
            optional backend is unavailable).
        fastforward: Calibrate cohorts through the analytic steady-state
            fast-forward when their configs are eligible (hash-excluded;
            bit-identical where accepted, refused via RPR011 otherwise).
        fleet_workers: Worker processes for the day loop itself
            (hash-excluded). Above 1, the loop runs through
            :class:`~repro.fleet.parallel.ParallelDayExecutor` —
            contiguous per-array shards over shared memory, with the
            floating-point reductions folded in fixed shard order so the
            report hash is bit-identical to the serial loop for any
            worker count.
        window: Maximum no-death window size in days (hash-excluded;
            0 disables window stepping). When a conservative bound
            proves no array can die for the next N ≥ 2 days, the loop
            advances the whole window with batched arithmetic and
            batched (stream-order-identical) traffic draws instead of
            day-at-a-time bookkeeping. Per-day ``fleet_day`` telemetry
            events collapse into per-window ``fleet_window`` events for
            the days so covered; results are unchanged.
    """

    population: PopulationSpec = PopulationSpec()
    traffic: TrafficSpec = TrafficSpec()
    days: int = 365
    seed: int = 0
    dispatch: str = "even"
    duty_cycle: float = 1.0
    slo: float = 0.999
    rows: int = 1024
    cols: int = 1024
    cohort_iterations: int = 2000
    kernel: str = "batched"
    chunk_size: Optional[int] = None
    backend: str = "numpy"
    fastforward: bool = False
    fleet_workers: int = 1
    window: int = 0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be positive")
        if self.dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.dispatch!r}; "
                f"choose from {DISPATCH_POLICIES}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if not 0.0 < self.slo < 1.0:
            raise ValueError("slo must be in (0, 1)")
        if self.cohort_iterations < 1:
            raise ValueError("cohort_iterations must be positive")
        if self.backend not in ("numpy", "cupy", "numba"):
            raise ValueError(
                f"backend must be 'numpy', 'cupy', or 'numba', "
                f"got {self.backend!r}"
            )
        if self.fleet_workers < 1:
            raise ValueError("fleet_workers must be positive")
        if self.window < 0:
            raise ValueError("window must be non-negative")

    def identity(self) -> dict:
        """The canonical JSON-able dict the content hash covers."""
        return {
            "fleet_version": 1,
            "population": self.population.identity(),
            "traffic": self.traffic.identity(),
            "days": self.days,
            "seed": self.seed,
            "dispatch": self.dispatch,
            "duty_cycle": self.duty_cycle,
            "slo": self.slo,
            "rows": self.rows,
            "cols": self.cols,
            "cohort_iterations": self.cohort_iterations,
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical identity (hex, 64 chars)."""
        return canonical_hash(self.identity())


@dataclass
class _CampaignState:
    """The mutable state the day loop advances (and checkpoints)."""

    day: int
    cumulative: np.ndarray  # float64, iterations served per array
    death_day: np.ndarray  # int64, -1 = alive
    served: int
    dropped: int
    traffic_state: TrafficState
    rng: np.random.Generator

    def to_json(self) -> Dict:
        return {
            "day": int(self.day),
            "cumulative": [float(x) for x in self.cumulative],
            "death_day": [int(d) for d in self.death_day],
            "served": int(self.served),
            "dropped": int(self.dropped),
            "traffic_state": self.traffic_state.to_json(),
            "rng_state": rng_state_to_json(self.rng),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "_CampaignState":
        return cls(
            day=int(payload["day"]),
            cumulative=np.array(payload["cumulative"], dtype=float),
            death_day=np.array(payload["death_day"], dtype=np.int64),
            served=int(payload["served"]),
            dropped=int(payload["dropped"]),
            traffic_state=TrafficState.from_json(payload["traffic_state"]),
            rng=rng_state_from_json(payload["rng_state"]),
        )


class FleetService:
    """Runs fleet campaigns: calibrate, advance, checkpoint, report.

    Args:
        spec: The campaign.
        store: Optional result store for cohort calibrations; shared
            across campaigns, sharded per cohort key
            (:meth:`ResultStore.shard`), so repeated campaigns over the
            same cohorts calibrate from cache.
        checkpoint_dir: Where to keep campaign checkpoints; ``None``
            disables checkpointing (and resuming).
        checkpoint_every: Write a checkpoint after every N completed
            virtual days (0 = only at explicit stops). Not part of the
            campaign identity: any checkpoint cadence resumes to the
            same final report.
        jobs: Worker processes for cohort calibration (engine pool).
    """

    def __init__(
        self,
        spec: FleetSpec,
        store: Optional[ResultStore] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        jobs: int = 1,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.spec = spec
        self.store = store
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, spec.content_hash)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoint_every = checkpoint_every
        self.jobs = jobs
        self.population = Population.build(spec.population)
        self.architecture = default_architecture(spec.rows, spec.cols)
        # The day loop's vector math runs on the selected backend's
        # array namespace (numpy itself unless an optional backend is
        # installed); campaign state stays host-side either way.
        self.backend = get_backend(spec.backend)
        self._xp = self.backend.xp

    # -- phase 1: cohort calibration ------------------------------------

    def cohort_specs(self) -> List[JobSpec]:
        """One calibration job per cohort, on the campaign settings."""
        return [
            JobSpec(
                workload=cohort.build_workload(),
                architecture=self.architecture,
                config=BalanceConfig.from_label(cohort.config),
                iterations=self.spec.cohort_iterations,
                seed=self.spec.seed,
                kernel=self.spec.kernel,
                chunk_size=self.spec.chunk_size,
                backend=self.spec.backend,
                fastforward=self.spec.fastforward,
            )
            for cohort in self.spec.population.cohorts
        ]

    def calibrate(self) -> Dict:
        """Simulate every cohort's wear profile (store-cached).

        Returns a dict with ``results`` (per-cohort simulation results),
        ``required_offsets`` (per-cohort minimum footprints, only
        computed when the population repacks), ``ops_per_iteration``
        (per-cohort write operations per iteration — the Bitlet-style
        cost that converts requests into array-seconds), and engine
        ``statuses`` per cohort for the runtime section.
        """
        results = []
        statuses = []
        for cohort, spec in zip(self.spec.population.cohorts, self.cohort_specs()):
            # Explicit None check: ResultStore defines __len__, so an
            # empty store is falsy and a bare truthiness test would
            # silently disable caching on first use.
            shard = (
                self.store.shard(cohort.key)
                if self.store is not None
                else None
            )
            engine = ExperimentEngine(store=shard, jobs=self.jobs)
            outcome = require_ok([engine.run_one(spec)])[0]
            results.append(outcome.result)
            statuses.append(outcome.status.value)
        required_offsets: List[Optional[int]] = [None] * len(results)
        if self.spec.population.repacking:
            required_offsets = [
                minimum_footprint(cohort.build_workload(), self.architecture)
                for cohort in self.spec.population.cohorts
            ]
        ops_per_iteration = [
            float(result.state.write_counts.sum()) / result.iterations
            for result in results
        ]
        return {
            "results": results,
            "required_offsets": required_offsets,
            "ops_per_iteration": ops_per_iteration,
            "statuses": statuses,
        }

    def _capacities(self, ops_per_iteration: Sequence[float]) -> np.ndarray:
        """Per-array iteration capacity per virtual day.

        An iteration costs ``ops_per_iteration * op_latency_s`` seconds
        of array time; capacity is the duty-cycled day divided by that.
        """
        capacities = np.empty(self.population.n_arrays, dtype=float)
        for array in range(self.population.n_arrays):
            cohort = int(self.population.cohort_index[array])
            latency = (
                ops_per_iteration[cohort]
                * self.population.technology_of(array).op_latency_s
            )
            capacities[array] = capacity_iterations(
                latency, self.spec.duty_cycle
            )
        return capacities

    # -- phase 2: the day loop ------------------------------------------

    def _dispatch(
        self,
        demand_iterations: float,
        alive: np.ndarray,
        state: _CampaignState,
        thresholds: np.ndarray,
        capacities: np.ndarray,
    ) -> float:
        """Allocate one cohort-day of demand; returns iterations served."""
        xp = self._xp
        # asarray is a no-copy pass-through on numpy and the host-to-
        # device transfer on an installed device backend.
        caps = xp.asarray(capacities[alive])
        if self.spec.dispatch == "even":
            allocation = xp.minimum(demand_iterations / len(alive), caps)
        else:  # least_worn
            headroom = xp.maximum(
                xp.asarray(thresholds[alive] - state.cumulative[alive]), 0.0
            )
            total = headroom.sum()
            if total <= 0:
                # Everyone is at the brink; fall back to an even split.
                share = xp.full(len(alive), 1.0 / len(alive))
            else:
                share = headroom / total
            allocation = xp.minimum(demand_iterations * share, caps)
        state.cumulative[alive] += self.backend.to_numpy(allocation)
        return float(allocation.sum())

    def _per_day_max(self, capacities: np.ndarray) -> np.ndarray:
        """Per-array upper bound on iterations accumulated in one day.

        Allocations are always capped by capacity; under deterministic
        traffic the day's total demand is known too, tightening the
        bound per cohort. Feeds :func:`no_death_window`.
        """
        per_day = capacities.copy()
        if self.spec.traffic.model == "deterministic":
            requests = int(round(self.spec.traffic.rate))
            for index, cohort in enumerate(self.spec.population.cohorts):
                members = self.population.arrays_in_cohort(index)
                cap = float(requests * cohort.iterations_per_request)
                per_day[members] = np.minimum(per_day[members], cap)
        return per_day

    def _advance_day_serial(
        self,
        state: _CampaignState,
        thresholds: np.ndarray,
        capacities: np.ndarray,
    ) -> int:
        """One virtual day, in-process (the reference arithmetic)."""
        spec = self.spec
        day_served = 0
        requests = draw_day(spec.traffic, state.traffic_state, state.rng)
        per_cohort = split_requests(
            requests, spec.population.cohort_weights, state.rng
        )
        for index, cohort in enumerate(spec.population.cohorts):
            cohort_requests = int(per_cohort[index])
            if cohort_requests == 0:
                continue
            members = self.population.arrays_in_cohort(index)
            alive = members[state.death_day[members] < 0]
            if len(alive) == 0:
                state.dropped += cohort_requests
                continue
            demand = float(cohort_requests * cohort.iterations_per_request)
            served_iters = self._dispatch(
                demand, alive, state, thresholds, capacities
            )
            served_requests = min(
                cohort_requests,
                int(served_iters // cohort.iterations_per_request),
            )
            state.served += served_requests
            state.dropped += cohort_requests - served_requests
            day_served += served_requests
            # Threshold crossings retire arrays at this day.
            crossed = alive[state.cumulative[alive] >= thresholds[alive]]
            state.death_day[crossed] = state.day
        return day_served

    def _advance_day_parallel(
        self, state: _CampaignState, executor: ParallelDayExecutor
    ) -> int:
        """One virtual day through the shard workers.

        Even dispatch is a single phase (the parent already knows each
        cohort's live count); ``least_worn`` first gathers the exact
        shard-ordered headroom reduction, then advances with the two
        scalars (live count, total headroom) the serial arithmetic
        needs. Traffic draws, request bookkeeping, and the decision
        structure (zero-request skip, extinct-cohort drop) stay in the
        parent, mirroring the serial loop branch for branch.
        """
        spec = self.spec
        cohorts = spec.population.cohorts
        day_served = 0
        requests = draw_day(spec.traffic, state.traffic_state, state.rng)
        per_cohort = split_requests(
            requests, spec.population.cohort_weights, state.rng
        )
        pending: Dict[int, int] = {}
        for index in range(len(cohorts)):
            cohort_requests = int(per_cohort[index])
            if cohort_requests == 0:
                continue
            members = self.population.arrays_in_cohort(index)
            if not (state.death_day[members] < 0).any():
                state.dropped += cohort_requests
                continue
            pending[index] = cohort_requests
        if not pending:
            return 0
        dispatches: Dict[int, tuple] = {}
        if spec.dispatch == "least_worn":
            gathered = executor.gather_headroom(tuple(pending))
            for index, cohort_requests in pending.items():
                total, n_alive = gathered[index]
                demand = float(
                    cohort_requests * cohorts[index].iterations_per_request
                )
                mode = WORN_FALLBACK if total <= 0 else WORN
                dispatches[index] = (mode, demand, n_alive, total)
        else:
            for index, cohort_requests in pending.items():
                members = self.population.arrays_in_cohort(index)
                n_alive = int((state.death_day[members] < 0).sum())
                demand = float(
                    cohort_requests * cohorts[index].iterations_per_request
                )
                dispatches[index] = (EVEN, demand, n_alive, 0.0)
        results = executor.advance_day(state.day, dispatches)
        for index, cohort_requests in pending.items():
            served_iters, _deaths = results[index]
            ipr = cohorts[index].iterations_per_request
            served_requests = min(
                cohort_requests, int(served_iters // ipr)
            )
            state.served += served_requests
            state.dropped += cohort_requests - served_requests
            day_served += served_requests
        return day_served

    def _advance_window_serial(
        self,
        state: _CampaignState,
        window: int,
        thresholds: np.ndarray,
        capacities: np.ndarray,
    ) -> int:
        """Advance ``window`` guaranteed-death-free days in one batch.

        Traffic draws stay stream-identical to per-day stepping: when
        either half of the per-day (draw, split) pair consumes no RNG —
        deterministic traffic, or a single cohort — the other half
        batches into one vectorized call; otherwise the pair interleaves
        per day exactly as the per-day loop would. Live sets are static
        by the no-death guarantee, so per-cohort state is gathered once,
        accumulated compactly (the same elementwise additions the
        per-day loop applies, so bitwise the same values), and scattered
        back once; threshold-crossing checks are provably skippable
        inside the window.
        """
        spec = self.spec
        cohorts = spec.population.cohorts
        weights = spec.population.cohort_weights
        # The batching decision is the declared, statically-checkable
        # plan of repro.fleet.traffic.window_draw_plan — the same
        # procedure repro.verify.check_draw_plan (RPR016) re-proves
        # stream-exact, so the verifier checks the path actually taken.
        plan = window_draw_plan(spec.traffic.model, len(weights))
        if plan["draw"] != "interleaved":
            totals = draw_window(
                spec.traffic, state.traffic_state, state.rng, window
            )
            splits = split_requests_window(totals, weights, state.rng)
        else:
            # Stochastic multi-cohort: the draw and the split alternate
            # on the same generator each day, so batching either one
            # would reorder the stream — interleave exactly as per-day.
            splits = np.empty((window, len(weights)), dtype=np.int64)
            for offset in range(window):
                total = draw_day(spec.traffic, state.traffic_state, state.rng)
                splits[offset] = split_requests(total, weights, state.rng)
        compact: Dict[int, Optional[list]] = {}
        for index in range(len(cohorts)):
            members = self.population.arrays_in_cohort(index)
            alive = members[state.death_day[members] < 0]
            compact[index] = (
                None
                if len(alive) == 0
                else [
                    alive,
                    state.cumulative[alive],
                    capacities[alive],
                    thresholds[alive],
                ]
            )
        window_served = 0
        constant = (
            spec.traffic.model == "deterministic"
            and len(cohorts) == 1
            and spec.dispatch == "even"
            and compact[0] is not None
            and int(splits[0, 0]) > 0
        )
        if constant:
            # Deterministic single-cohort even dispatch: the allocation
            # vector is the same every day of the window, so hoist it
            # and apply `window` repeated in-place additions — bitwise
            # the per-day accumulation, with no per-day bookkeeping.
            cohort_requests = int(splits[0, 0])
            entry = compact[0]
            assert entry is not None
            alive, cumulative, caps, _ = entry
            ipr = cohorts[0].iterations_per_request
            demand = float(cohort_requests * ipr)
            allocation = np.minimum(demand / len(alive), caps)
            for _ in range(window):
                cumulative += allocation
            served_iters = float(allocation.sum())
            served_requests = min(cohort_requests, int(served_iters // ipr))
            state.served += served_requests * window
            state.dropped += (cohort_requests - served_requests) * window
            window_served = served_requests * window
        else:
            for offset in range(window):
                for index, cohort in enumerate(cohorts):
                    cohort_requests = int(splits[offset, index])
                    if cohort_requests == 0:
                        continue
                    entry = compact[index]
                    if entry is None:
                        state.dropped += cohort_requests
                        continue
                    alive, cumulative, caps, thr = entry
                    demand = float(
                        cohort_requests * cohort.iterations_per_request
                    )
                    if spec.dispatch == "even":
                        allocation = np.minimum(demand / len(alive), caps)
                    else:  # least_worn
                        headroom = np.maximum(thr - cumulative, 0.0)
                        total = headroom.sum()
                        if total <= 0:
                            share = np.full(len(alive), 1.0 / len(alive))
                        else:
                            share = headroom / total
                        allocation = np.minimum(demand * share, caps)
                    cumulative += allocation
                    served_iters = float(allocation.sum())
                    served_requests = min(
                        cohort_requests,
                        int(served_iters // cohort.iterations_per_request),
                    )
                    state.served += served_requests
                    state.dropped += cohort_requests - served_requests
                    window_served += served_requests
        for entry in compact.values():
            if entry is not None:
                state.cumulative[entry[0]] = entry[1]
        state.day += window
        return window_served

    def _advance_window_parallel(
        self,
        state: _CampaignState,
        window: int,
        executor: ParallelDayExecutor,
    ) -> int:
        """A constant-allocation window through the shard workers.

        Only reached for deterministic single-cohort even dispatch (no
        RNG is consumed), where the whole window is one worker command:
        each shard applies ``window`` repeated compact additions and the
        parent folds the constant per-day allocation total once.
        """
        spec = self.spec
        cohort = spec.population.cohorts[0]
        cohort_requests = int(round(spec.traffic.rate))
        members = self.population.arrays_in_cohort(0)
        n_alive = int((state.death_day[members] < 0).sum())
        state.day += window
        if cohort_requests == 0:
            return 0
        if n_alive == 0:
            state.dropped += cohort_requests * window
            return 0
        ipr = cohort.iterations_per_request
        demand = float(cohort_requests * ipr)
        served_iters = executor.advance_window(window, {0: (demand, n_alive)})[0]
        served_requests = min(cohort_requests, int(served_iters // ipr))
        state.served += served_requests * window
        state.dropped += (cohort_requests - served_requests) * window
        return served_requests * window

    def run(
        self,
        stop_after_day: Optional[int] = None,
        resume: bool = True,
    ) -> Optional[FleetReport]:
        """Run (or resume) the campaign.

        Args:
            stop_after_day: Pause after completing this virtual day —
                a checkpoint is written (checkpointing must be enabled)
                and ``None`` is returned. Simulates a mid-campaign kill
                at a checkpoint boundary.
            resume: Continue from the latest matching checkpoint if one
                exists; ``False`` starts over.

        Returns:
            The final :class:`FleetReport`, or ``None`` when paused
            before the horizon.
        """
        spec = self.spec
        if stop_after_day is not None:
            if self.checkpoints is None:
                raise ValueError(
                    "stop_after_day requires a checkpoint_dir to pause into"
                )
            if not 1 <= stop_after_day:
                raise ValueError("stop_after_day must be >= 1")
        start_wall = time.perf_counter()
        tele = get_telemetry()

        # Static whole-campaign verification before any day runs: shard
        # disjointness and race freedom, window-bound soundness, RNG
        # stream discipline, cohort config validity. Memoized per
        # campaign shape, so resumed/repeated runs pay it once.
        verification = verify_fleet_spec(spec)
        if verification.errors:
            tele.count("fleet.rejected")
            raise VerificationError(verification)

        with tele.timed_phase("fleet.calibrate"):
            calibration = self.calibrate()
        thresholds = self.population.death_thresholds(
            calibration["results"],
            spec.seed,
            calibration["required_offsets"],
        )
        capacities = self._capacities(calibration["ops_per_iteration"])

        state = None
        resumed_from = None
        if resume and self.checkpoints is not None:
            latest = self.checkpoints.latest()
            if latest is not None:
                resumed_from, payload = latest
                state = _CampaignState.from_json(payload)
        if state is None:
            state = _CampaignState(
                day=0,
                cumulative=np.zeros(self.population.n_arrays),
                death_day=np.full(self.population.n_arrays, -1, np.int64),
                served=0,
                dropped=0,
                traffic_state=TrafficState(),
                rng=traffic_rng(spec.seed),
            )

        cohorts = spec.population.cohorts
        last_day = spec.days
        if stop_after_day is not None:
            last_day = min(last_day, stop_after_day)

        tele.emit(
            "fleet_start",
            arrays=self.population.n_arrays,
            days=spec.days,
            cohorts=len(cohorts),
            start_day=state.day,
        )
        numpy_math = self._xp is np
        if spec.fleet_workers > 1 and not numpy_math:
            raise ValueError(
                "fleet_workers > 1 requires numpy day-loop math; backend "
                f"{spec.backend!r} is active and not delegating to numpy"
            )
        executor: Optional[ParallelDayExecutor] = None
        worker_timers: List[Dict] = []
        shards = 1
        windows = 0
        window_days = 0
        checkpoints_written = 0
        # The only window shape the parallel protocol batches is the
        # constant-allocation one (deterministic traffic, one cohort,
        # even dispatch); other shapes step per-day under parallel
        # execution, windowed or not.
        constant_eligible = (
            spec.traffic.model == "deterministic"
            and len(cohorts) == 1
            and spec.dispatch == "even"
        )
        per_day_max = self._per_day_max(capacities)
        try:
            if spec.fleet_workers > 1 and self.population.n_arrays > 1:
                executor = ParallelDayExecutor(
                    cohort_index=self.population.cohort_index,
                    thresholds=thresholds,
                    capacities=capacities,
                    cumulative=state.cumulative,
                    death_day=state.death_day,
                    workers=spec.fleet_workers,
                )
                # The campaign state now *is* the shared block: workers
                # mutate it in place, and checkpoints/reports read it
                # through these views with no copy-out step.
                state.cumulative = executor.cumulative
                state.death_day = executor.death_day
                shards = executor.n_shards
                tele.gauge("fleet.shards", executor.n_shards)
            with tele.timed_phase("fleet.advance"):
                while state.day < last_day:
                    bound = 0
                    if spec.window >= 2 and numpy_math and (
                        executor is None or constant_eligible
                    ):
                        bound = no_death_window(
                            thresholds,
                            state.cumulative,
                            state.death_day,
                            per_day_max,
                            last_day - state.day,
                        )
                        bound = min(bound, spec.window)
                        if (
                            self.checkpoints is not None
                            and self.checkpoint_every
                        ):
                            # A window never crosses a checkpoint
                            # boundary, so cadenced checkpoints land on
                            # the same days as per-day stepping.
                            bound = min(
                                bound,
                                self.checkpoint_every
                                - state.day % self.checkpoint_every,
                            )
                    if bound >= 2:
                        if executor is not None:
                            day_served = self._advance_window_parallel(
                                state, bound, executor
                            )
                        else:
                            day_served = self._advance_window_serial(
                                state, bound, thresholds, capacities
                            )
                        windows += 1
                        window_days += bound
                        alive_now = int((state.death_day < 0).sum())
                        tele.count("fleet.days", bound)
                        tele.count("fleet.windows")
                        tele.count("fleet.window_days", bound)
                        tele.emit(
                            "fleet_window",
                            day=state.day,
                            days=bound,
                            alive=alive_now,
                            served=day_served,
                        )
                    else:
                        state.day += 1
                        if executor is not None:
                            day_served = self._advance_day_parallel(
                                state, executor
                            )
                        else:
                            day_served = self._advance_day_serial(
                                state, thresholds, capacities
                            )
                        alive_now = int((state.death_day < 0).sum())
                        tele.count("fleet.days")
                        tele.emit(
                            "fleet_day",
                            day=state.day,
                            alive=alive_now,
                            served=day_served,
                        )
                    at_boundary = (
                        self.checkpoint_every
                        and state.day % self.checkpoint_every == 0
                    )
                    at_stop = (
                        stop_after_day is not None and state.day == last_day
                    )
                    if self.checkpoints is not None and (
                        at_boundary or at_stop
                    ):
                        self.checkpoints.save(state.day, state.to_json())
                        checkpoints_written += 1
                        tele.count("fleet.checkpoints")
                        tele.emit("fleet_checkpoint", day=state.day)
        finally:
            if executor is not None:
                # Detach the campaign state from the shared block before
                # the workers and the memory go away.
                state.cumulative = state.cumulative.copy()
                state.death_day = state.death_day.copy()
                executor.close()
                worker_timers = executor.worker_timers

        if stop_after_day is not None and state.day < spec.days:
            return None

        report = self._build_report(state, calibration, capacities)
        runtime = dict(report.runtime)
        runtime.update(
            wall_s=round(time.perf_counter() - start_wall, 6),
            resumed_from_day=resumed_from,
            checkpoints_written=checkpoints_written,
            calibration_statuses=calibration["statuses"],
            fleet_workers=spec.fleet_workers,
            shards=shards,
            windows=windows,
            window_days=window_days,
            worker_timers=worker_timers,
        )
        report = replace(report, runtime=runtime)
        tele.count("fleet.deaths", report.n_deaths)
        # Publish the aggregate counters (fleet.*, backend.pool.*, ...)
        # into the trace so `repro-endurance stats` can render them.
        flush_pool_counters()
        tele.emit("counters", counters=tele.snapshot()["counters"])
        tele.emit(
            "fleet_end",
            days=state.day,
            alive=report.n_alive,
            deaths=report.n_deaths,
        )
        return report

    # -- phase 3: the report --------------------------------------------

    def _demand_arrays(self, ops_per_iteration: Sequence[float]) -> int:
        """Mean-traffic demand, in concurrently-live arrays.

        Converts the long-run mean request rate into array-equivalents
        through each cohort's per-iteration cost and its members' mean
        capacity — the Bitlet litmus inverted for provisioning.
        """
        capacities = self._capacities(ops_per_iteration)
        weights = self.spec.population.cohort_weights
        demand = 0.0
        for index, cohort in enumerate(self.spec.population.cohorts):
            members = self.population.arrays_in_cohort(index)
            if len(members) == 0:
                continue
            mean_capacity = float(capacities[members].mean())
            daily_iterations = (
                self.spec.traffic.mean_rate
                * float(weights[index])
                * cohort.iterations_per_request
            )
            demand += daily_iterations / mean_capacity
        return int(math.ceil(demand))

    def _build_report(
        self,
        state: _CampaignState,
        calibration: Dict,
        capacities: np.ndarray,
    ) -> FleetReport:
        spec = self.spec
        curve = kaplan_meier(state.death_day.tolist(), spec.days)
        headroom = capacity_headroom(
            self.population.n_arrays,
            self._demand_arrays(calibration["ops_per_iteration"]),
            curve.probability_at(spec.days),
            spec.slo,
        )
        runtime: Dict = {}
        if self.store is not None:
            runtime["manifests"] = sum(
                1 for _ in self.store.iter_manifests()
            )
        return FleetReport(
            spec_identity=spec.identity(),
            spec_hash=spec.content_hash,
            days_simulated=int(state.day),
            death_days=[int(d) for d in state.death_day],
            cohort_keys=[
                spec.population.cohorts[int(c)].key
                for c in self.population.cohort_index
            ],
            technology_names=[
                self.population.technology_of(i).name
                for i in range(self.population.n_arrays)
            ],
            curve=curve,
            annual_replacement_rate=annual_replacement_rate(
                state.death_day.tolist(), spec.days
            ),
            requests_served=int(state.served),
            requests_dropped=int(state.dropped),
            headroom=headroom,
            runtime=runtime,
        )


def run_campaign(
    spec: FleetSpec,
    store: Optional[Union[str, ResultStore]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    jobs: int = 1,
) -> FleetReport:
    """One-call campaign runner (the CLI entry point's workhorse)."""
    if isinstance(store, str):
        store = ResultStore(store)
    service = FleetService(
        spec,
        store=store,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        jobs=jobs,
    )
    report = service.run()
    assert report is not None  # run() without stop_after_day completes
    return report
