"""The fleet service: a long-lived, checkpointed endurance campaign.

:class:`FleetService` extends the one-shot :class:`ExperimentEngine`
batch model into a job layer for population-scale questions. A campaign
runs in three phases:

1. **Calibrate** — simulate each cohort's wear profile once through the
   experiment engine (store-cached, shard per cohort), giving the
   per-cell write *rates* every array in the cohort shares.
2. **Advance** — a vectorized virtual-day loop: draw the day's request
   count from the traffic model, split it over cohorts, dispatch
   iteration budgets to live arrays (capped by the Bitlet-style
   throughput capacity), and retire arrays whose cumulative iterations
   cross their closed-form death thresholds.
3. **Report** — fold the death days into survival analytics
   (:mod:`repro.fleet.survival`) and a hashable
   :class:`~repro.fleet.report.FleetReport`.

Nothing in the day loop re-simulates wear: thresholds come from
:meth:`Population.death_thresholds`, which reuses the exact
:mod:`repro.core.failure` closed forms — that is what makes a 10,000
array × 10 year campaign tractable *and* what pins the degenerate
one-array case bit-exact to :func:`~repro.core.failure.failure_timeline`.

Campaign state (cumulative iterations, death days, traffic RNG state)
checkpoints through :class:`~repro.fleet.checkpoint.CheckpointManager`;
a killed campaign resumes from its last checkpoint and produces a final
report bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.array.architecture import default_architecture
from repro.balance.config import BalanceConfig
from repro.core.backend import get_backend
from repro.core.failure import minimum_footprint
from repro.engine.runner import ExperimentEngine, require_ok
from repro.engine.spec import JobSpec
from repro.engine.store import ResultStore
from repro.fleet.checkpoint import CheckpointManager
from repro.fleet.population import Population, PopulationSpec
from repro.fleet.report import FleetReport
from repro.fleet.survival import (
    annual_replacement_rate,
    canonical_hash,
    capacity_headroom,
    kaplan_meier,
)
from repro.fleet.traffic import (
    TrafficSpec,
    TrafficState,
    capacity_iterations,
    draw_day,
    rng_state_from_json,
    rng_state_to_json,
    split_requests,
    traffic_rng,
)
from repro.telemetry import get_telemetry

#: The recognized dispatch policies.
DISPATCH_POLICIES = ("even", "least_worn")


@dataclass(frozen=True)
class FleetSpec:
    """Everything that determines a fleet campaign's outcome.

    Like :class:`~repro.engine.spec.JobSpec`, execution knobs that
    cannot change results (``kernel``, ``chunk_size``) are carried for
    convenience but excluded from the content hash, so a campaign keeps
    its identity — and its checkpoints — across kernel switches.

    Attributes:
        population: The fleet's makeup.
        traffic: The arrival process.
        days: Campaign horizon in virtual days.
        seed: Base seed for every campaign RNG stream.
        dispatch: ``"even"`` splits a cohort's demand uniformly over its
            live arrays; ``"least_worn"`` allocates proportionally to
            remaining endurance headroom (software wear-leveling at
            fleet scale).
        duty_cycle: Fraction of each 86400 s day an array may compute.
        slo: Confidence level for the capacity-headroom analysis.
        rows: Cohort-calibration array rows.
        cols: Cohort-calibration array cols.
        cohort_iterations: Iterations for each cohort's wear simulation.
        kernel: Simulation kernel (hash-excluded).
        chunk_size: Batched-kernel chunk size (hash-excluded).
        backend: Array backend for cohort calibration and the day loop's
            vector math (hash-excluded; falls back to numpy when the
            optional backend is unavailable).
        fastforward: Calibrate cohorts through the analytic steady-state
            fast-forward when their configs are eligible (hash-excluded;
            bit-identical where accepted, refused via RPR011 otherwise).
    """

    population: PopulationSpec = PopulationSpec()
    traffic: TrafficSpec = TrafficSpec()
    days: int = 365
    seed: int = 0
    dispatch: str = "even"
    duty_cycle: float = 1.0
    slo: float = 0.999
    rows: int = 1024
    cols: int = 1024
    cohort_iterations: int = 2000
    kernel: str = "batched"
    chunk_size: Optional[int] = None
    backend: str = "numpy"
    fastforward: bool = False

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be positive")
        if self.dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.dispatch!r}; "
                f"choose from {DISPATCH_POLICIES}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if not 0.0 < self.slo < 1.0:
            raise ValueError("slo must be in (0, 1)")
        if self.cohort_iterations < 1:
            raise ValueError("cohort_iterations must be positive")
        if self.backend not in ("numpy", "cupy", "numba"):
            raise ValueError(
                f"backend must be 'numpy', 'cupy', or 'numba', "
                f"got {self.backend!r}"
            )

    def identity(self) -> dict:
        """The canonical JSON-able dict the content hash covers."""
        return {
            "fleet_version": 1,
            "population": self.population.identity(),
            "traffic": self.traffic.identity(),
            "days": self.days,
            "seed": self.seed,
            "dispatch": self.dispatch,
            "duty_cycle": self.duty_cycle,
            "slo": self.slo,
            "rows": self.rows,
            "cols": self.cols,
            "cohort_iterations": self.cohort_iterations,
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical identity (hex, 64 chars)."""
        return canonical_hash(self.identity())


@dataclass
class _CampaignState:
    """The mutable state the day loop advances (and checkpoints)."""

    day: int
    cumulative: np.ndarray  # float64, iterations served per array
    death_day: np.ndarray  # int64, -1 = alive
    served: int
    dropped: int
    traffic_state: TrafficState
    rng: np.random.Generator

    def to_json(self) -> Dict:
        return {
            "day": int(self.day),
            "cumulative": [float(x) for x in self.cumulative],
            "death_day": [int(d) for d in self.death_day],
            "served": int(self.served),
            "dropped": int(self.dropped),
            "traffic_state": self.traffic_state.to_json(),
            "rng_state": rng_state_to_json(self.rng),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "_CampaignState":
        return cls(
            day=int(payload["day"]),
            cumulative=np.array(payload["cumulative"], dtype=float),
            death_day=np.array(payload["death_day"], dtype=np.int64),
            served=int(payload["served"]),
            dropped=int(payload["dropped"]),
            traffic_state=TrafficState.from_json(payload["traffic_state"]),
            rng=rng_state_from_json(payload["rng_state"]),
        )


class FleetService:
    """Runs fleet campaigns: calibrate, advance, checkpoint, report.

    Args:
        spec: The campaign.
        store: Optional result store for cohort calibrations; shared
            across campaigns, sharded per cohort key
            (:meth:`ResultStore.shard`), so repeated campaigns over the
            same cohorts calibrate from cache.
        checkpoint_dir: Where to keep campaign checkpoints; ``None``
            disables checkpointing (and resuming).
        checkpoint_every: Write a checkpoint after every N completed
            virtual days (0 = only at explicit stops). Not part of the
            campaign identity: any checkpoint cadence resumes to the
            same final report.
        jobs: Worker processes for cohort calibration (engine pool).
    """

    def __init__(
        self,
        spec: FleetSpec,
        store: Optional[ResultStore] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        jobs: int = 1,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.spec = spec
        self.store = store
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, spec.content_hash)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoint_every = checkpoint_every
        self.jobs = jobs
        self.population = Population.build(spec.population)
        self.architecture = default_architecture(spec.rows, spec.cols)
        # The day loop's vector math runs on the selected backend's
        # array namespace (numpy itself unless an optional backend is
        # installed); campaign state stays host-side either way.
        self.backend = get_backend(spec.backend)
        self._xp = self.backend.xp

    # -- phase 1: cohort calibration ------------------------------------

    def cohort_specs(self) -> List[JobSpec]:
        """One calibration job per cohort, on the campaign settings."""
        return [
            JobSpec(
                workload=cohort.build_workload(),
                architecture=self.architecture,
                config=BalanceConfig.from_label(cohort.config),
                iterations=self.spec.cohort_iterations,
                seed=self.spec.seed,
                kernel=self.spec.kernel,
                chunk_size=self.spec.chunk_size,
                backend=self.spec.backend,
                fastforward=self.spec.fastforward,
            )
            for cohort in self.spec.population.cohorts
        ]

    def calibrate(self) -> Dict:
        """Simulate every cohort's wear profile (store-cached).

        Returns a dict with ``results`` (per-cohort simulation results),
        ``required_offsets`` (per-cohort minimum footprints, only
        computed when the population repacks), ``ops_per_iteration``
        (per-cohort write operations per iteration — the Bitlet-style
        cost that converts requests into array-seconds), and engine
        ``statuses`` per cohort for the runtime section.
        """
        results = []
        statuses = []
        for cohort, spec in zip(self.spec.population.cohorts, self.cohort_specs()):
            # Explicit None check: ResultStore defines __len__, so an
            # empty store is falsy and a bare truthiness test would
            # silently disable caching on first use.
            shard = (
                self.store.shard(cohort.key)
                if self.store is not None
                else None
            )
            engine = ExperimentEngine(store=shard, jobs=self.jobs)
            outcome = require_ok([engine.run_one(spec)])[0]
            results.append(outcome.result)
            statuses.append(outcome.status.value)
        required_offsets: List[Optional[int]] = [None] * len(results)
        if self.spec.population.repacking:
            required_offsets = [
                minimum_footprint(cohort.build_workload(), self.architecture)
                for cohort in self.spec.population.cohorts
            ]
        ops_per_iteration = [
            float(result.state.write_counts.sum()) / result.iterations
            for result in results
        ]
        return {
            "results": results,
            "required_offsets": required_offsets,
            "ops_per_iteration": ops_per_iteration,
            "statuses": statuses,
        }

    def _capacities(self, ops_per_iteration: Sequence[float]) -> np.ndarray:
        """Per-array iteration capacity per virtual day.

        An iteration costs ``ops_per_iteration * op_latency_s`` seconds
        of array time; capacity is the duty-cycled day divided by that.
        """
        capacities = np.empty(self.population.n_arrays, dtype=float)
        for array in range(self.population.n_arrays):
            cohort = int(self.population.cohort_index[array])
            latency = (
                ops_per_iteration[cohort]
                * self.population.technology_of(array).op_latency_s
            )
            capacities[array] = capacity_iterations(
                latency, self.spec.duty_cycle
            )
        return capacities

    # -- phase 2: the day loop ------------------------------------------

    def _dispatch(
        self,
        demand_iterations: float,
        alive: np.ndarray,
        state: _CampaignState,
        thresholds: np.ndarray,
        capacities: np.ndarray,
    ) -> float:
        """Allocate one cohort-day of demand; returns iterations served."""
        xp = self._xp
        # asarray is a no-copy pass-through on numpy and the host-to-
        # device transfer on an installed device backend.
        caps = xp.asarray(capacities[alive])
        if self.spec.dispatch == "even":
            allocation = xp.minimum(demand_iterations / len(alive), caps)
        else:  # least_worn
            headroom = xp.maximum(
                xp.asarray(thresholds[alive] - state.cumulative[alive]), 0.0
            )
            total = headroom.sum()
            if total <= 0:
                # Everyone is at the brink; fall back to an even split.
                share = xp.full(len(alive), 1.0 / len(alive))
            else:
                share = headroom / total
            allocation = xp.minimum(demand_iterations * share, caps)
        state.cumulative[alive] += self.backend.to_numpy(allocation)
        return float(allocation.sum())

    def run(
        self,
        stop_after_day: Optional[int] = None,
        resume: bool = True,
    ) -> Optional[FleetReport]:
        """Run (or resume) the campaign.

        Args:
            stop_after_day: Pause after completing this virtual day —
                a checkpoint is written (checkpointing must be enabled)
                and ``None`` is returned. Simulates a mid-campaign kill
                at a checkpoint boundary.
            resume: Continue from the latest matching checkpoint if one
                exists; ``False`` starts over.

        Returns:
            The final :class:`FleetReport`, or ``None`` when paused
            before the horizon.
        """
        spec = self.spec
        if stop_after_day is not None:
            if self.checkpoints is None:
                raise ValueError(
                    "stop_after_day requires a checkpoint_dir to pause into"
                )
            if not 1 <= stop_after_day:
                raise ValueError("stop_after_day must be >= 1")
        start_wall = time.perf_counter()
        tele = get_telemetry()

        with tele.timed_phase("fleet.calibrate"):
            calibration = self.calibrate()
        thresholds = self.population.death_thresholds(
            calibration["results"],
            spec.seed,
            calibration["required_offsets"],
        )
        capacities = self._capacities(calibration["ops_per_iteration"])

        state = None
        resumed_from = None
        if resume and self.checkpoints is not None:
            latest = self.checkpoints.latest()
            if latest is not None:
                resumed_from, payload = latest
                state = _CampaignState.from_json(payload)
        if state is None:
            state = _CampaignState(
                day=0,
                cumulative=np.zeros(self.population.n_arrays),
                death_day=np.full(self.population.n_arrays, -1, np.int64),
                served=0,
                dropped=0,
                traffic_state=TrafficState(),
                rng=traffic_rng(spec.seed),
            )

        cohorts = spec.population.cohorts
        weights = spec.population.cohort_weights
        last_day = spec.days
        if stop_after_day is not None:
            last_day = min(last_day, stop_after_day)

        tele.emit(
            "fleet_start",
            arrays=self.population.n_arrays,
            days=spec.days,
            cohorts=len(cohorts),
            start_day=state.day,
        )
        checkpoints_written = 0
        with tele.timed_phase("fleet.advance"):
            while state.day < last_day:
                state.day += 1
                day_served = 0
                requests = draw_day(spec.traffic, state.traffic_state, state.rng)
                per_cohort = split_requests(requests, weights, state.rng)
                for index, cohort in enumerate(cohorts):
                    cohort_requests = int(per_cohort[index])
                    if cohort_requests == 0:
                        continue
                    members = self.population.arrays_in_cohort(index)
                    alive = members[state.death_day[members] < 0]
                    if len(alive) == 0:
                        state.dropped += cohort_requests
                        continue
                    demand = float(
                        cohort_requests * cohort.iterations_per_request
                    )
                    served_iters = self._dispatch(
                        demand, alive, state, thresholds, capacities
                    )
                    served_requests = min(
                        cohort_requests,
                        int(served_iters // cohort.iterations_per_request),
                    )
                    state.served += served_requests
                    state.dropped += cohort_requests - served_requests
                    day_served += served_requests
                    # Threshold crossings retire arrays at this day.
                    crossed = alive[
                        state.cumulative[alive] >= thresholds[alive]
                    ]
                    state.death_day[crossed] = state.day
                alive_now = int((state.death_day < 0).sum())
                tele.count("fleet.days")
                tele.emit(
                    "fleet_day",
                    day=state.day,
                    alive=alive_now,
                    served=day_served,
                )
                at_boundary = (
                    self.checkpoint_every
                    and state.day % self.checkpoint_every == 0
                )
                at_stop = stop_after_day is not None and state.day == last_day
                if self.checkpoints is not None and (at_boundary or at_stop):
                    self.checkpoints.save(state.day, state.to_json())
                    checkpoints_written += 1
                    tele.count("fleet.checkpoints")
                    tele.emit("fleet_checkpoint", day=state.day)

        if stop_after_day is not None and state.day < spec.days:
            return None

        report = self._build_report(state, calibration, capacities)
        runtime = dict(report.runtime)
        runtime.update(
            wall_s=round(time.perf_counter() - start_wall, 6),
            resumed_from_day=resumed_from,
            checkpoints_written=checkpoints_written,
            calibration_statuses=calibration["statuses"],
        )
        report = replace(report, runtime=runtime)
        tele.count("fleet.deaths", report.n_deaths)
        tele.emit(
            "fleet_end",
            days=state.day,
            alive=report.n_alive,
            deaths=report.n_deaths,
        )
        return report

    # -- phase 3: the report --------------------------------------------

    def _demand_arrays(self, ops_per_iteration: Sequence[float]) -> int:
        """Mean-traffic demand, in concurrently-live arrays.

        Converts the long-run mean request rate into array-equivalents
        through each cohort's per-iteration cost and its members' mean
        capacity — the Bitlet litmus inverted for provisioning.
        """
        capacities = self._capacities(ops_per_iteration)
        weights = self.spec.population.cohort_weights
        demand = 0.0
        for index, cohort in enumerate(self.spec.population.cohorts):
            members = self.population.arrays_in_cohort(index)
            if len(members) == 0:
                continue
            mean_capacity = float(capacities[members].mean())
            daily_iterations = (
                self.spec.traffic.mean_rate
                * float(weights[index])
                * cohort.iterations_per_request
            )
            demand += daily_iterations / mean_capacity
        return int(math.ceil(demand))

    def _build_report(
        self,
        state: _CampaignState,
        calibration: Dict,
        capacities: np.ndarray,
    ) -> FleetReport:
        spec = self.spec
        curve = kaplan_meier(state.death_day.tolist(), spec.days)
        headroom = capacity_headroom(
            self.population.n_arrays,
            self._demand_arrays(calibration["ops_per_iteration"]),
            curve.probability_at(spec.days),
            spec.slo,
        )
        runtime: Dict = {}
        if self.store is not None:
            runtime["manifests"] = sum(
                1 for _ in self.store.iter_manifests()
            )
        return FleetReport(
            spec_identity=spec.identity(),
            spec_hash=spec.content_hash,
            days_simulated=int(state.day),
            death_days=[int(d) for d in state.death_day],
            cohort_keys=[
                spec.population.cohorts[int(c)].key
                for c in self.population.cohort_index
            ],
            technology_names=[
                self.population.technology_of(i).name
                for i in range(self.population.n_arrays)
            ],
            curve=curve,
            annual_replacement_rate=annual_replacement_rate(
                state.death_day.tolist(), spec.days
            ),
            requests_served=int(state.served),
            requests_dropped=int(state.dropped),
            headroom=headroom,
            runtime=runtime,
        )


def run_campaign(
    spec: FleetSpec,
    store: Optional[Union[str, ResultStore]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    jobs: int = 1,
) -> FleetReport:
    """One-call campaign runner (the CLI entry point's workhorse)."""
    if isinstance(store, str):
        store = ResultStore(store)
    service = FleetService(
        spec,
        store=store,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        jobs=jobs,
    )
    report = service.run()
    assert report is not None  # run() without stop_after_day completes
    return report
