"""The fleet report: canonical campaign output, hashable and renderable.

A :class:`FleetReport` separates two kinds of content:

* the **canonical payload** — spec identity, population makeup, death
  days, survival curve, replacement rate, traffic totals, SLO headroom —
  which is a pure function of the fleet spec, so its hash
  (:meth:`FleetReport.content_hash`) is the resume-determinism oracle:
  cold runs, warm (store-cached) runs, and checkpoint-resumed runs of
  the same campaign must all hash identically. The CI fleet-smoke job
  pins this hash.
* the **runtime section** (wall times, cache hits, manifest census) —
  observability that legitimately differs between runs and is therefore
  excluded from the hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fleet.survival import SurvivalCurve, canonical_hash


@dataclass(frozen=True)
class FleetReport:
    """The result of one fleet campaign.

    Attributes:
        spec_identity: The campaign spec's canonical identity dict.
        spec_hash: The campaign spec's content hash.
        days_simulated: Virtual days actually run (== horizon unless
            the campaign was stopped early).
        death_days: Per-array death day (``-1`` = alive at horizon).
        cohort_keys: Per-array cohort key.
        technology_names: Per-array technology name.
        curve: Kaplan–Meier survival curve over the campaign.
        annual_replacement_rate: Expected replacements/array/year.
        requests_served: Total requests fully served.
        requests_dropped: Requests shed for lack of live capacity.
        headroom: SLO provisioning summary
            (:func:`repro.fleet.survival.capacity_headroom`).
        runtime: Non-canonical observability (wall clock, cache stats,
            manifest census); excluded from the hash.
    """

    spec_identity: Dict
    spec_hash: str
    days_simulated: int
    death_days: List[int]
    cohort_keys: List[str]
    technology_names: List[str]
    curve: SurvivalCurve
    annual_replacement_rate: float
    requests_served: int
    requests_dropped: int
    headroom: Dict
    runtime: Dict = field(default_factory=dict, compare=False)

    @property
    def n_arrays(self) -> int:
        """Population size."""
        return len(self.death_days)

    @property
    def n_deaths(self) -> int:
        """Arrays dead by the end of the campaign."""
        return sum(1 for day in self.death_days if day >= 0)

    @property
    def n_alive(self) -> int:
        """Arrays alive at the end of the campaign."""
        return self.n_arrays - self.n_deaths

    def canonical(self) -> Dict:
        """The deterministic payload the content hash covers."""
        return {
            "spec": self.spec_identity,
            "spec_hash": self.spec_hash,
            "days_simulated": self.days_simulated,
            "death_days": [int(d) for d in self.death_days],
            "cohort_keys": list(self.cohort_keys),
            "technology_names": list(self.technology_names),
            "curve": self.curve.to_json(),
            "annual_replacement_rate": float(self.annual_replacement_rate),
            "requests_served": int(self.requests_served),
            "requests_dropped": int(self.requests_dropped),
            "headroom": self.headroom,
        }

    def content_hash(self) -> str:
        """SHA-256 over the canonical payload (resume-determinism pin)."""
        return canonical_hash(self.canonical())

    def to_json(self) -> Dict:
        """Full JSON form: canonical payload + hashes + runtime extras."""
        payload = self.canonical()
        payload["report_hash"] = self.content_hash()
        payload["curve_hash"] = self.curve.content_hash()
        payload["runtime"] = self.runtime
        return payload

    def deaths_by(self, labels: List[str]) -> Dict[str, Dict[str, int]]:
        """Death/total census grouped by a per-array label vector."""
        census: Dict[str, Dict[str, int]] = {}
        for label, day in zip(labels, self.death_days):
            entry = census.setdefault(label, {"total": 0, "dead": 0})
            entry["total"] += 1
            if day >= 0:
                entry["dead"] += 1
        return dict(sorted(census.items()))


def format_report(
    report: FleetReport, emit: Optional[Callable[[str], None]] = None
) -> str:
    """Render a fleet report for a terminal.

    Args:
        report: The report to render.
        emit: Optional per-line sink (e.g.
            :func:`repro.telemetry.reporter.say`); the rendered text is
            returned either way.
    """
    lines = [
        f"fleet report  {report.spec_hash[:12]}",
        f"  arrays: {report.n_arrays}  "
        f"alive: {report.n_alive}  dead: {report.n_deaths}  "
        f"horizon: {report.curve.horizon_days} day(s)",
        f"  survival at horizon: "
        f"{report.curve.probability_at(report.curve.horizon_days):.4f}",
        f"  annual replacement rate: "
        f"{report.annual_replacement_rate:.4f} /array/year",
        f"  requests: {report.requests_served} served, "
        f"{report.requests_dropped} dropped",
    ]
    by_technology = report.deaths_by(report.technology_names)
    if len(by_technology) > 1:
        lines.append("  by technology:")
        for name, entry in by_technology.items():
            lines.append(
                f"    {name:<16} {entry['dead']}/{entry['total']} dead"
            )
    by_cohort = report.deaths_by(report.cohort_keys)
    if len(by_cohort) > 1:
        lines.append("  by cohort:")
        for name, entry in by_cohort.items():
            lines.append(
                f"    {name:<16} {entry['dead']}/{entry['total']} dead"
            )
    headroom = report.headroom
    if headroom["required_arrays"] is None:
        lines.append(
            f"  slo {headroom['slo']:g}: demand "
            f"{headroom['demand_arrays']} array(s), unattainable "
            f"(zero survival at horizon)"
        )
    else:
        lines.append(
            f"  slo {headroom['slo']:g}: demand {headroom['demand_arrays']} "
            f"array(s), required {headroom['required_arrays']}, "
            f"headroom {headroom['headroom_arrays']:+d} "
            f"({'meets' if headroom['meets_slo'] else 'MISSES'} SLO)"
        )
    lines.append(f"  curve hash: {report.curve.content_hash()}")
    lines.append(f"  report hash: {report.content_hash()}")
    text = "\n".join(lines)
    if emit is not None:
        for line in lines:
            emit(line)
    return text
