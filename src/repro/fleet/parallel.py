"""Parallel sharded execution of the fleet day loop.

The fleet campaign's hot path is the vectorized virtual-day loop in
:class:`~repro.fleet.service.FleetService`: per day, per cohort, an
elementwise dispatch over the cohort's live arrays plus two scalar
reductions (the live-array count and, for ``least_worn`` dispatch, the
total endurance headroom; the served-iteration total either way). This
module scales that loop across cores without giving up the fleet
layer's headline guarantee — the final :class:`FleetReport` content
hash is **bit-identical for any worker count**, including 1 (the
serial loop).

Three pieces:

:class:`ShardPlan`
    A deterministic partition of the array index space into contiguous,
    balanced shards — one per worker.

:class:`CampaignSharedMemory`
    One ``multiprocessing.shared_memory`` block holding the campaign's
    per-array state (``cumulative``, ``death_day``, ``thresholds``,
    ``capacities``, ``cohort_index``) plus a per-cohort gather scratch
    region. Workers map the same physical pages, so "communication" is
    a memcpy into disjoint shard-owned slices, never a pickle.

:class:`ParallelDayExecutor`
    A persistent worker pool (spawned once per campaign, not per day)
    advancing the day loop in one or two synchronized phases per day.

**Why this is bit-identical.** Every per-array update the workers
perform (headroom, allocation, cumulative accumulation, threshold
crossing) is elementwise, so partitioning cannot change it. The only
order-sensitive operations are the two floating-point reductions, and
those are *not* computed as per-worker partial sums — each worker
writes its shard's compacted values into the shared scratch at its
shard's base offset, and the parent folds the shard segments **in
fixed shard order** into one contiguous vector and applies a single
``np.sum``. That vector is element-for-element the same array the
serial loop reduces (live members in ascending array order), so the
reduction — and everything downstream of it — is bitwise identical to
the serial loop for every shard count. Worker-count invariance is a
corollary rather than a property that needs per-count validation,
though the tests pin 1/2/4/8 anyway.

The module also hosts :func:`no_death_window`, the conservative
"no array can possibly die for the next N days" bound behind the
batched window stepper (serial and parallel alike).
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Dispatch modes a day-advance command can carry, mirroring the serial
#: loop's three arithmetic paths: an even split, a headroom-proportional
#: split, and the everyone-at-the-brink fallback of ``least_worn``.
EVEN, WORN, WORN_FALLBACK = "even", "worn", "worn_fallback"

#: Safety margin for :func:`no_death_window`: thresholds are shrunk by
#: this relative amount before the days-to-crossing division, which
#: covers the worst-case accumulated rounding of up to ~1e6 consecutive
#: float64 additions (k ulps after k adds, k * 2^-53 ~ 1.1e-10 at
#: k = 1e6) with four orders of magnitude to spare.
WINDOW_MARGIN = 1e-6

#: Hard cap on a single no-death window, keeping the rounding-drift
#: analysis behind :data:`WINDOW_MARGIN` trivially valid.
MAX_WINDOW = 1_000_000

_REPLY_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``n_arrays`` into contiguous shards.

    Shard sizes are balanced to within one array, with the remainder
    going to the earliest shards — a pure function of the pair
    ``(n_arrays, shards)``, so two builds of the same plan agree.
    """

    n_arrays: int
    bounds: Tuple[Tuple[int, int], ...]

    @classmethod
    def build(cls, n_arrays: int, workers: int) -> "ShardPlan":
        """Plan ``min(workers, n_arrays)`` contiguous balanced shards."""
        if n_arrays < 1:
            raise ValueError("n_arrays must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        shards = min(workers, n_arrays)
        base, extra = divmod(n_arrays, shards)
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for shard in range(shards):
            hi = lo + base + (1 if shard < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return cls(n_arrays=n_arrays, bounds=tuple(bounds))

    @property
    def n_shards(self) -> int:
        """Number of shards (== workers actually spawned)."""
        return len(self.bounds)


def no_death_window(
    thresholds: np.ndarray,
    cumulative: np.ndarray,
    death_day: np.ndarray,
    per_day_max: np.ndarray,
    horizon: int,
) -> int:
    """Days the campaign can advance with **no possible** death.

    Each live array accumulates at most ``per_day_max`` iterations per
    day (its capacity, optionally tightened by the day's known maximum
    demand under deterministic traffic), so it cannot reach its death
    threshold for at least ``floor((threshold * (1 - margin) -
    cumulative) / per_day_max)`` days; the fleet-wide window is the
    minimum over live arrays, clipped to ``horizon``. The margin makes
    the bound robust to the rounding drift of repeated float64
    accumulation, so *skipping the per-day crossing checks inside the
    window is exact, not approximate* — the serial loop could not have
    retired any array on those days either.

    Returns 0 when some live array might die within a day (callers fall
    back to per-day stepping) and ``horizon`` when nothing is live.
    """
    if horizon <= 0:
        return 0
    alive = death_day < 0
    if not alive.any():
        return min(horizon, MAX_WINDOW)
    gap = thresholds[alive] * (1.0 - WINDOW_MARGIN) - cumulative[alive]
    rate = per_day_max[alive]
    with np.errstate(divide="ignore"):
        days = np.where(rate > 0, np.floor(gap / np.maximum(rate, 1e-300)), np.inf)
    bound = float(days.min())
    if not np.isfinite(bound):
        return min(horizon, MAX_WINDOW)
    return int(max(0, min(bound, horizon, MAX_WINDOW)))


class CampaignSharedMemory:
    """The campaign's per-array state in one shared-memory block.

    Layout (all views over the same block, in order): ``cumulative``
    (float64), ``death_day`` (int64), ``thresholds`` (float64),
    ``capacities`` (float64), ``cohort_index`` (int64) — each of length
    ``n_arrays`` — then the gather ``scratch``, a ``(n_cohorts,
    n_arrays)`` float64 region workers compact per-shard values into.

    The parent creates (and eventually unlinks) the block; workers
    attach by name and close on exit. Ownership of slices is by shard:
    worker *w* only ever writes indices in its own ``[lo, hi)`` range
    (and the matching scratch columns), so no two processes write the
    same cache line's worth of state and no locking is needed beyond
    the phase barriers of the command/reply queues.
    """

    def __init__(
        self,
        n_arrays: int,
        n_cohorts: int,
        name: Optional[str] = None,
    ) -> None:
        self.n_arrays = n_arrays
        self.n_cohorts = n_cohorts
        per_array = 5 * 8  # three float64 + two int64 vectors
        total = n_arrays * per_array + n_cohorts * n_arrays * 8
        if name is None:
            self.shm = shared_memory.SharedMemory(create=True, size=total)
            self.owner = True
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        buf = self.shm.buf
        offset = 0

        def view(dtype, shape):
            nonlocal offset
            count = int(np.prod(shape))
            arr = np.frombuffer(
                buf, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            offset += count * np.dtype(dtype).itemsize
            return arr

        self.cumulative = view(np.float64, (n_arrays,))
        self.death_day = view(np.int64, (n_arrays,))
        self.thresholds = view(np.float64, (n_arrays,))
        self.capacities = view(np.float64, (n_arrays,))
        self.cohort_index = view(np.int64, (n_arrays,))
        self.scratch = view(np.float64, (n_cohorts, n_arrays))

    @property
    def name(self) -> str:
        """The block's name (workers attach with it)."""
        return self.shm.name

    def close(self) -> None:
        """Release this process's mapping (and the block, if owner)."""
        # Views into shm.buf must be dropped before close() or the
        # exported-pointer check raises BufferError.
        for field in (
            "cumulative", "death_day", "thresholds",
            "capacities", "cohort_index", "scratch",
        ):
            if hasattr(self, field):
                delattr(self, field)
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _worker_main(
    worker_id: int,
    lo: int,
    hi: int,
    shm_name: str,
    n_arrays: int,
    n_cohorts: int,
    start_method: str,
    task_queue,
    reply_queue,
) -> None:
    """One shard worker: attach, precompute membership, serve commands.

    The worker owns array indices ``[lo, hi)``. All replies are small
    Python scalars; bulk data moves through the shared block.
    """
    shared = CampaignSharedMemory(n_arrays, n_cohorts, name=shm_name)
    if start_method != "fork":
        # A spawned child gets its own resource tracker, which would
        # otherwise believe it owns the (parent-owned) block and unlink
        # it when the child exits (bpo-38119). Fork children share the
        # parent's tracker, where the extra registration is idempotent.
        try:  # pragma: no cover - version-dependent private API
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shared.shm._name, "shared_memory")
        except Exception:
            pass
    members = {
        cohort: lo + np.flatnonzero(shared.cohort_index[lo:hi] == cohort)
        for cohort in range(n_cohorts)
    }
    alive = {
        cohort: idx[shared.death_day[idx] < 0]
        for cohort, idx in members.items()
    }
    stash: Dict[int, np.ndarray] = {}
    timers = {"headroom_s": 0.0, "advance_s": 0.0, "window_s": 0.0, "days": 0}
    try:
        while True:
            command = task_queue.get()
            tag = command[0]
            if tag == "stop":
                reply_queue.put((worker_id, "stop", dict(timers)))
                break
            start = perf_counter()
            if tag == "headroom":
                _, cohorts = command
                counts = {}
                for cohort in cohorts:
                    live = alive[cohort]
                    headroom = np.maximum(
                        shared.thresholds[live] - shared.cumulative[live],
                        0.0,
                    )
                    shared.scratch[cohort, lo:lo + len(live)] = headroom
                    stash[cohort] = headroom
                    counts[cohort] = len(live)
                timers["headroom_s"] += perf_counter() - start
                reply_queue.put((worker_id, "headroom", counts))
            elif tag == "advance":
                _, day, dispatches = command
                out = {}
                for cohort, (mode, demand, n_alive, total) in (
                    dispatches.items()
                ):
                    live = alive[cohort]
                    stashed = stash.pop(cohort, None)
                    if len(live) == 0:
                        out[cohort] = (0, 0)
                        continue
                    caps = shared.capacities[live]
                    if mode == EVEN:
                        allocation = np.minimum(demand / n_alive, caps)
                    elif mode == WORN:
                        headroom = (
                            stashed
                            if stashed is not None
                            else np.maximum(
                                shared.thresholds[live]
                                - shared.cumulative[live],
                                0.0,
                            )
                        )
                        allocation = np.minimum(
                            demand * (headroom / total), caps
                        )
                    else:  # WORN_FALLBACK: the at-the-brink even share
                        allocation = np.minimum(
                            demand * (1.0 / n_alive), caps
                        )
                    shared.cumulative[live] += allocation
                    shared.scratch[cohort, lo:lo + len(live)] = allocation
                    crossed = (
                        shared.cumulative[live] >= shared.thresholds[live]
                    )
                    deaths = int(crossed.sum())
                    if deaths:
                        shared.death_day[live[crossed]] = day
                        alive[cohort] = live[~crossed]
                    out[cohort] = (len(live), deaths)
                timers["advance_s"] += perf_counter() - start
                timers["days"] += 1
                reply_queue.put((worker_id, "advance", out))
            elif tag == "window":
                _, days, dispatches = command
                out = {}
                for cohort, (demand, n_alive) in dispatches.items():
                    live = alive[cohort]
                    if len(live) == 0:
                        out[cohort] = (0, 0)
                        continue
                    caps = shared.capacities[live]
                    allocation = np.minimum(demand / n_alive, caps)
                    compact = shared.cumulative[live]  # fancy-index copy
                    for _ in range(days):
                        compact += allocation
                    shared.cumulative[live] = compact
                    shared.scratch[cohort, lo:lo + len(live)] = allocation
                    out[cohort] = (len(live), 0)
                timers["window_s"] += perf_counter() - start
                timers["days"] += days
                reply_queue.put((worker_id, "window", out))
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown command {tag!r}")
    except Exception:  # pragma: no cover - surfaced in the parent
        reply_queue.put((worker_id, "error", traceback.format_exc()))
    finally:
        stash.clear()
        members.clear()
        alive.clear()
        shared.close()


class ParallelDayExecutor:
    """A persistent pool of shard workers advancing the day loop.

    Args:
        cohort_index: Per-array cohort assignment.
        thresholds: Per-array death thresholds (read-only).
        capacities: Per-array daily iteration capacities (read-only).
        cumulative: Initial per-array cumulative iterations (copied into
            shared memory; read back through :attr:`cumulative`).
        death_day: Initial per-array death days (same contract).
        workers: Worker process count (shards = ``min(workers, n)``).

    After construction, :attr:`cumulative` and :attr:`death_day` are
    live shared views the caller should treat as the campaign state —
    checkpoints read them directly, no copy-out step. The executor is
    quiescent (workers blocked on their queues) between calls, so those
    reads are race-free.
    """

    def __init__(
        self,
        cohort_index: np.ndarray,
        thresholds: np.ndarray,
        capacities: np.ndarray,
        cumulative: np.ndarray,
        death_day: np.ndarray,
        workers: int,
    ) -> None:
        n_arrays = len(cohort_index)
        n_cohorts = int(cohort_index.max()) + 1 if n_arrays else 1
        self.plan = ShardPlan.build(n_arrays, workers)
        self.shared = CampaignSharedMemory(n_arrays, n_cohorts)
        self.shared.cumulative[:] = cumulative
        self.shared.death_day[:] = death_day
        self.shared.thresholds[:] = thresholds
        self.shared.capacities[:] = capacities
        self.shared.cohort_index[:] = cohort_index
        self.worker_timers: List[Dict] = []
        self._closed = False

        methods = mp.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._tasks = [self._ctx.Queue() for _ in self.plan.bounds]
        self._replies = self._ctx.Queue()
        self._procs = []
        for worker_id, (lo, hi) in enumerate(self.plan.bounds):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id, lo, hi, self.shared.name, n_arrays,
                    n_cohorts, start_method, self._tasks[worker_id],
                    self._replies,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # -- state views ----------------------------------------------------

    @property
    def cumulative(self) -> np.ndarray:
        """Live shared view of per-array cumulative iterations."""
        return self.shared.cumulative

    @property
    def death_day(self) -> np.ndarray:
        """Live shared view of per-array death days."""
        return self.shared.death_day

    @property
    def n_shards(self) -> int:
        """Shard (and worker-process) count."""
        return self.plan.n_shards

    # -- the phase protocol ---------------------------------------------

    def _broadcast(self, command) -> List:
        for queue in self._tasks:
            queue.put(command)
        return self._collect(command[0])

    def _collect(self, tag: str) -> List:
        replies: Dict[int, object] = {}
        while len(replies) < len(self._procs):
            worker_id, got, payload = self._replies.get(
                timeout=_REPLY_TIMEOUT_S
            )
            if got == "error":
                raise RuntimeError(
                    f"fleet shard worker {worker_id} failed:\n{payload}"
                )
            if got != tag:  # pragma: no cover - protocol error
                raise RuntimeError(
                    f"expected {tag!r} reply, got {got!r} from "
                    f"worker {worker_id}"
                )
            replies[worker_id] = payload
        return [replies[w] for w in range(len(self._procs))]

    def _fold(self, cohort: int, counts: Sequence[int]) -> np.ndarray:
        """The shard segments of one cohort, folded in fixed shard order.

        Concatenation in ascending shard order reconstructs exactly the
        compacted live-member vector the serial loop builds (live
        members in ascending array order), so a single ``np.sum`` over
        it is the *same reduction over the same array* — bit-identical,
        not merely close.
        """
        segments = [
            self.shared.scratch[cohort, lo:lo + count]
            for (lo, _), count in zip(self.plan.bounds, counts)
        ]
        return np.concatenate(segments)

    def gather_headroom(
        self, cohorts: Sequence[int]
    ) -> Dict[int, Tuple[float, int]]:
        """Phase 1 (``least_worn``): per-cohort total headroom + count.

        Workers compact their live members' headroom into the shared
        scratch; the parent folds shard segments in order and reduces
        once. Workers stash their compacted vectors so the following
        :meth:`advance_day` reuses them without recomputation.
        """
        replies = self._broadcast(("headroom", tuple(cohorts)))
        out = {}
        for cohort in cohorts:
            counts = [reply[cohort] for reply in replies]
            folded = self._fold(cohort, counts)
            out[cohort] = (float(folded.sum()), int(len(folded)))
        return out

    def advance_day(
        self, day: int, dispatches: Dict[int, Tuple[str, float, int, float]]
    ) -> Dict[int, Tuple[float, int]]:
        """Phase 2: dispatch one day of demand; returns per-cohort totals.

        Args:
            day: The (1-based) virtual day being completed.
            dispatches: Per-cohort ``(mode, demand_iterations, n_alive,
                total_headroom)`` — the scalars the elementwise worker
                math needs, exactly as the serial loop computes them.

        Returns:
            Per-cohort ``(served_iterations, deaths)``.
        """
        replies = self._broadcast(("advance", day, dispatches))
        out = {}
        for cohort in dispatches:
            counts = [reply[cohort][0] for reply in replies]
            deaths = sum(reply[cohort][1] for reply in replies)
            served = float(self._fold(cohort, counts).sum())
            out[cohort] = (served, int(deaths))
        return out

    def advance_window(
        self, days: int, dispatches: Dict[int, Tuple[float, int]]
    ) -> Dict[int, float]:
        """Advance a no-death window of constant-demand even dispatch.

        Only valid when every day of the window repeats the same
        ``(demand, n_alive)`` per cohort and :func:`no_death_window`
        guarantees no crossings: the allocation vector is then constant
        across the window, so workers apply ``days`` repeated in-place
        additions (bitwise the serial loop's per-day accumulation) with
        one synchronization for the whole window. Returns the
        per-cohort *per-day* served iterations (constant by the same
        argument the serial loop relies on).
        """
        replies = self._broadcast(("window", days, dispatches))
        out = {}
        for cohort in dispatches:
            counts = [reply[cohort][0] for reply in replies]
            out[cohort] = float(self._fold(cohort, counts).sum())
        return out

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop the workers, collect their timers, release the memory."""
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self.worker_timers = self._broadcast(("stop",))
            except Exception:  # pragma: no cover - dead worker
                self.worker_timers = []
            for proc in self._procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5)
            for queue in [*self._tasks, self._replies]:
                queue.close()
                queue.join_thread()
        finally:
            self.shared.close()

    def __enter__(self) -> "ParallelDayExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
