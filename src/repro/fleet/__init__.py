"""Fleet-scale endurance: populations, traffic, survival, campaigns.

The :mod:`repro.fleet` subsystem lifts the paper's single-array lifetime
model (Eq. 4 and the progressive-failure extension in
:mod:`repro.core.failure`) to a *population* of arrays serving
stochastic request traffic — the operational questions a deployment
actually asks: how many of these arrays survive year three, what
replacement rate that implies, and how much capacity headroom an SLO
demands. See ``docs/fleet.md`` for the model and the checkpoint format.
"""

from repro.fleet.checkpoint import CHECKPOINT_VERSION, CheckpointManager
from repro.fleet.parallel import (
    CampaignSharedMemory,
    ParallelDayExecutor,
    ShardPlan,
    no_death_window,
)
from repro.fleet.population import (
    BUDGET_STREAM,
    TRAFFIC_STREAM,
    WORKLOAD_FACTORIES,
    CohortSpec,
    Population,
    PopulationSpec,
    interleaved_assignment,
    proportional_counts,
)
from repro.fleet.report import FleetReport, format_report
from repro.fleet.service import (
    DISPATCH_POLICIES,
    FleetService,
    FleetSpec,
    run_campaign,
)
from repro.fleet.survival import (
    SurvivalCurve,
    annual_replacement_rate,
    binomial_tail,
    canonical_hash,
    capacity_headroom,
    kaplan_meier,
    required_fleet_size,
)
from repro.fleet.traffic import (
    TRAFFIC_MODELS,
    TrafficSpec,
    TrafficState,
    capacity_iterations,
    draw_day,
    draw_window,
    split_requests,
    split_requests_window,
    window_draw_plan,
)

__all__ = [
    "BUDGET_STREAM",
    "CHECKPOINT_VERSION",
    "CampaignSharedMemory",
    "CheckpointManager",
    "CohortSpec",
    "DISPATCH_POLICIES",
    "FleetReport",
    "FleetService",
    "FleetSpec",
    "ParallelDayExecutor",
    "Population",
    "PopulationSpec",
    "ShardPlan",
    "SurvivalCurve",
    "TRAFFIC_MODELS",
    "TRAFFIC_STREAM",
    "TrafficSpec",
    "TrafficState",
    "WORKLOAD_FACTORIES",
    "annual_replacement_rate",
    "binomial_tail",
    "canonical_hash",
    "capacity_headroom",
    "capacity_iterations",
    "draw_day",
    "draw_window",
    "format_report",
    "interleaved_assignment",
    "kaplan_meier",
    "no_death_window",
    "proportional_counts",
    "required_fleet_size",
    "run_campaign",
    "split_requests",
    "split_requests_window",
    "window_draw_plan",
]
