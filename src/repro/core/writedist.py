"""Write-distribution views: statistics, heatmaps, lane profiles.

"We start by inspecting the write distributions within the PIM array. The
more uniform the write distribution, the better. Even distributions make
better use of all cells, increasing the expected time to failure. We use
heatmaps to visualize write density." (Section 5)

Figures are produced as arrays plus ASCII/CSV renderings (no plotting
dependencies); the statistics that carry the paper's conclusions —
max, mean, balance, utilization — are first-class properties.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.array.geometry import Orientation

#: Density ramp for ASCII heatmaps (light to heavy wear).
_ASCII_RAMP = " .:-=+*#%@"


class WriteDistribution:
    """Accumulated per-cell write counts with analysis helpers.

    Args:
        counts: ``rows x cols`` accumulated write counts.
        iterations: Number of workload iterations the counts cover.
        orientation: Lane orientation used to compute lane-wise views.
        label: Display label (e.g. the balance-config label).
    """

    def __init__(
        self,
        counts: np.ndarray,
        iterations: int,
        orientation: Orientation = Orientation.COLUMN_PARALLEL,
        label: str = "",
    ) -> None:
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError("counts must be a 2-D matrix")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if np.any(counts < 0):
            raise ValueError("write counts cannot be negative")
        self.counts = counts
        self.iterations = int(iterations)
        self.orientation = orientation
        self.label = label

    # ------------------------------------------------------------------
    # Scalar statistics
    # ------------------------------------------------------------------

    @property
    def max(self) -> float:
        """Hottest cell's accumulated writes (drives Eq. 4)."""
        return float(self.counts.max())

    @property
    def total(self) -> float:
        """Total writes across the array."""
        return float(self.counts.sum())

    @property
    def mean(self) -> float:
        """Mean writes per cell (over all cells)."""
        return float(self.counts.mean())

    @property
    def max_per_iteration(self) -> float:
        """Hottest cell's writes per iteration."""
        return self.max / self.iterations

    @property
    def cell_utilization(self) -> float:
        """Fraction of cells that receive any writes."""
        return float(np.count_nonzero(self.counts)) / self.counts.size

    @property
    def balance(self) -> float:
        """Mean-to-max ratio over written cells; 1.0 = perfectly level.

        Because lifetime is set by the hottest cell, ``balance`` is the
        fraction of the perfectly-balanced lifetime actually achieved over
        the cells in use.
        """
        peak = self.max
        if peak == 0:
            return 1.0
        written = self.counts[self.counts > 0]
        return float(written.mean()) / peak

    @property
    def gini(self) -> float:
        """Gini coefficient of per-cell wear (0 = uniform, ->1 = skewed)."""
        flat = np.sort(self.counts.ravel())
        total = flat.sum()
        if total == 0:
            return 0.0
        n = flat.size
        cumulative = np.cumsum(flat)
        # Standard discrete formula over the sorted sample.
        return float((n + 1 - 2 * (cumulative / total).sum()) / n)

    # ------------------------------------------------------------------
    # Structured views
    # ------------------------------------------------------------------

    def normalized(self) -> np.ndarray:
        """Counts scaled to [0, 1] by the hottest cell (the figures' scale:
        "1: maximum utilization")."""
        peak = self.max
        if peak == 0:
            return np.zeros_like(self.counts)
        return self.counts / peak

    def lane_matrix(self) -> np.ndarray:
        """Counts as ``(offset, lane)`` under the distribution's orientation."""
        if self.orientation is Orientation.COLUMN_PARALLEL:
            return self.counts
        return self.counts.T

    def offset_profile(self) -> np.ndarray:
        """Mean writes per lane offset (across lanes) — the Fig. 5 view."""
        return self.lane_matrix().mean(axis=1)

    def lane_profile(self) -> np.ndarray:
        """Mean writes per lane (across offsets) — the between-lane view."""
        return self.lane_matrix().mean(axis=0)

    def downsample(self, blocks: Tuple[int, int] = (32, 32)) -> np.ndarray:
        """Block-mean reduction of the counts for compact heatmaps.

        Args:
            blocks: Target grid ``(block_rows, block_cols)``; the matrix
                dimensions must be divisible by them.
        """
        rows, cols = self.counts.shape
        block_rows, block_cols = blocks
        if rows % block_rows or cols % block_cols:
            raise ValueError(
                f"matrix {rows}x{cols} not divisible into {blocks} blocks"
            )
        reshaped = self.counts.reshape(
            block_rows, rows // block_rows, block_cols, cols // block_cols
        )
        return reshaped.mean(axis=(1, 3))

    # ------------------------------------------------------------------
    # Renderings
    # ------------------------------------------------------------------

    def ascii_heatmap(
        self, blocks: Tuple[int, int] = (32, 64), ramp: str = _ASCII_RAMP
    ) -> str:
        """A terminal heatmap of relative wear (darkest = hottest)."""
        grid = self.downsample(blocks)
        peak = grid.max()
        lines = []
        header = f"{self.label or 'write distribution'} (max cell = {self.max:g})"
        lines.append(header)
        if peak == 0:
            lines.append("(no writes recorded)")
            return "\n".join(lines)
        levels = np.minimum(
            (grid / peak * (len(ramp) - 1)).round().astype(int), len(ramp) - 1
        )
        for row in levels:
            lines.append("".join(ramp[v] for v in row))
        return "\n".join(lines)

    def to_csv(self, path_or_buffer, blocks: Optional[Tuple[int, int]] = None) -> None:
        """Write the (optionally downsampled) counts as CSV."""
        grid = self.counts if blocks is None else self.downsample(blocks)
        if isinstance(path_or_buffer, (str, bytes)):
            with open(path_or_buffer, "w", encoding="utf-8") as handle:
                np.savetxt(handle, grid, delimiter=",", fmt="%.6g")
        else:
            np.savetxt(path_or_buffer, grid, delimiter=",", fmt="%.6g")

    def to_csv_string(self, blocks: Optional[Tuple[int, int]] = None) -> str:
        """The CSV rendering as a string."""
        buffer = io.StringIO()
        self.to_csv(buffer, blocks)
        return buffer.getvalue()

    def to_pgm(self, path: str, invert: bool = True) -> None:
        """Write the heatmap as a binary PGM image (no plotting deps).

        Grayscale levels follow relative wear; by default hot cells render
        dark (as in the paper's figures). Any image viewer opens PGM.

        Args:
            path: Output file path (conventionally ``.pgm``).
            invert: Dark = hot when true; bright = hot otherwise.
        """
        grid = self.normalized()
        levels = np.clip((grid * 255.0).round(), 0, 255).astype(np.uint8)
        if invert:
            levels = (255 - levels).astype(np.uint8)
        rows, cols = levels.shape
        header = f"P5\n{cols} {rows}\n255\n".encode("ascii")
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(levels.tobytes())

    def summary(self) -> str:
        """One-line statistics summary."""
        return (
            f"{self.label or 'dist'}: max={self.max:g} mean={self.mean:g} "
            f"balance={self.balance:.3f} gini={self.gini:.3f} "
            f"cells-used={self.cell_utilization:.1%}"
        )

    def __repr__(self) -> str:
        return f"WriteDistribution({self.summary()})"


def compare_balance(
    distributions: Sequence[WriteDistribution],
) -> "list[tuple[str, float, float]]":
    """Rank distributions by balance: ``(label, balance, max/iteration)``."""
    rows = [
        (d.label, d.balance, d.max_per_iteration) for d in distributions
    ]
    rows.sort(key=lambda row: -row[1])
    return rows
