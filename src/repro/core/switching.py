"""Data-dependent switching: when a "write" doesn't actually switch.

The paper (and this reproduction's default accounting) charges every gate
output one write. Physically, an MTJ or filament only *stresses* when its
state changes: a write that re-stores the current value is free or nearly
free for some technologies. Whether that slack helps depends on the data:
this module measures *actual per-cell switch counts* by functionally
evaluating a lane program on sampled operands and comparing each written
value against the cell's previous content.

The headline finding (benchmark E21): on random operands, roughly half of
all gate writes switch the cell, so a switch-only endurance model buys
about 2x — a bounded, data-dependent correction on top of the paper's
conservative accounting, not a change to its conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.gates.gate import Gate
from repro.synth.bits import BitVector
from repro.synth.program import (
    ConstBit,
    ExternalBit,
    LaneProgram,
    OperandBit,
    ReadInstr,
    WriteInstr,
)


@dataclass(frozen=True)
class SwitchingProfile:
    """Measured write-vs-switch statistics for a lane program.

    Attributes:
        writes: Per-logical-bit write counts per iteration (the paper's
            accounting; presets excluded — a preset always switches or not
            together with its gate in this model).
        switches: Per-logical-bit *average* state-change counts per
            iteration over the sampled operands.
        samples: Number of operand samples measured.
    """

    writes: np.ndarray
    switches: np.ndarray
    samples: int

    @property
    def switch_fraction(self) -> float:
        """Fraction of writes that actually change the cell state."""
        total_writes = float(self.writes.sum())
        if total_writes == 0:
            return 0.0
        return float(self.switches.sum()) / total_writes

    @property
    def lifetime_factor(self) -> float:
        """Lifetime multiplier if only switches consume endurance.

        Ratio of the hottest cell's write count to the hottest cell's
        switch count (first-failure lifetimes are set by the maxima).
        """
        peak_switches = float(self.switches.max())
        if peak_switches == 0:
            return float("inf")
        return float(self.writes.max()) / peak_switches


def measure_switching(
    program: LaneProgram,
    samples: int = 64,
    rng: "np.random.Generator | int | None" = None,
    externals_width: Optional[Dict[str, int]] = None,
    evaluator: str = "compiled",
) -> SwitchingProfile:
    """Evaluate ``program`` on random operands, counting actual switches.

    Cells start in the 0 state (a fresh/erased array); each write compares
    the new value with the cell's current content and counts a switch only
    on change. State persists across iterations (samples), as it would in
    hardware.

    Args:
        program: The lane program to measure.
        samples: Number of random-operand iterations.
        rng: Seed or generator.
        externals_width: Widths of any external transfer streams the
            program consumes (random bits are supplied per iteration).
        evaluator: ``"compiled"`` counts all iterations at once on uint64
            bitplanes (:meth:`CompiledProgram.switch_counts_batch`, with
            the cross-iteration carry as a draw-axis shift);
            ``"interpreted"`` walks the per-instruction loop. Identical
            RNG stream, bit-identical profiles.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    if evaluator not in ("compiled", "interpreted"):
        raise ValueError(
            "evaluator must be one of ('compiled', 'interpreted'), "
            f"got {evaluator!r}"
        )
    generator = np.random.default_rng(rng)
    widths = {name: len(addrs) for name, addrs in program.inputs.items()}
    external_widths = dict(externals_width or {})

    writes = program.write_counts().astype(float)

    if evaluator == "compiled":
        operand_draws = {name: [] for name in widths}
        external_rows = {tag: [] for tag in external_widths}
        for _ in range(samples):
            for name, width in widths.items():
                operand_draws[name].append(
                    int(generator.integers(0, 2**width))
                )
            for tag, width in external_widths.items():
                external_rows[tag].append(
                    generator.integers(0, 2, size=width)
                )
        counts = program.compiled().switch_counts_batch(
            operand_draws,
            externals={
                tag: np.asarray(rows) for tag, rows in external_rows.items()
            }
            or None,
            draws=samples,
        )
        return SwitchingProfile(
            writes=writes,
            switches=counts.astype(np.float64) / samples,
            samples=samples,
        )

    switches = np.zeros(program.footprint)
    memory: Dict[int, int] = {}

    def store(address: int, value: int) -> None:
        if memory.get(address, 0) != value:
            switches[address] += 1
        memory[address] = value

    for _ in range(samples):
        operand_bits = {
            name: BitVector.value_bits(
                int(generator.integers(0, 2**width)), width
            )
            for name, width in widths.items()
        }
        externals = {
            tag: [int(b) for b in generator.integers(0, 2, size=width)]
            for tag, width in external_widths.items()
        }
        for instr in program.instructions:
            if isinstance(instr, WriteInstr):
                source = instr.source
                if source is None:
                    value = 0
                elif isinstance(source, ConstBit):
                    value = source.value
                elif isinstance(source, OperandBit):
                    value = operand_bits[source.name][source.index]
                elif isinstance(source, ExternalBit):
                    value = externals[source.tag][source.index]
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown source {source!r}")
                store(instr.address, value)
            elif isinstance(instr, Gate):
                inputs = tuple(memory[a] for a in instr.inputs)
                store(instr.output, instr.evaluate(inputs))
            elif isinstance(instr, ReadInstr):
                memory[instr.address]  # read disturb handled elsewhere
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown instruction {instr!r}")

    return SwitchingProfile(
        writes=writes,
        switches=switches / samples,
        samples=samples,
    )
