"""The unified :class:`SimulationSettings` API.

PR 2 threaded ``kernel`` / ``chunk_size`` kwargs through every layer
that touches a simulation (simulator, sweeps, job specs, engine, CLI).
This module ends that per-call threading: one frozen dataclass carries
every knob that shapes *how* a simulation runs — seed, kernel,
chunk size, read tracking, and telemetry options — and is passed down
whole. The legacy kwargs survive everywhere as deprecated aliases that
warn **once per process** (:func:`warn_legacy_kwargs`) and produce
bit-identical behavior, including identical ``JobSpec.content_hash``
values.

Telemetry options (``log_level`` / ``trace_path`` / ``progress``) ride
along for the CLI's benefit; they never influence results and are
excluded from job content hashes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.accuracy import EVALUATORS
from repro.core.backend import BACKENDS
from repro.core.kernel import KERNELS

_LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Process-level once-latch for the legacy-kwarg deprecation warning.
_warned_legacy = False


@dataclass(frozen=True)
class SimulationSettings:
    """Everything that shapes how (not what) a simulation runs.

    Attributes:
        seed: Base RNG seed; all random streams derive from it.
        kernel: Execution path — ``"batched"`` (chunked GEMM) or
            ``"epoch"`` (per-epoch oracle loop). Bit-identical results.
        chunk_size: Batched-kernel epochs per GEMM (``None`` = default);
            a pure speed/memory knob, validated where it is consumed.
        evaluator: Functional-evaluation backend — ``"compiled"`` (SWAR
            bitplane batches) or ``"interpreted"`` (per-instruction
            loop). Bit-identical results; a pure speed knob, so it is
            excluded from job content hashes like the kernel knobs.
        backend: Array backend for the hot paths — ``"numpy"``
            (default), ``"cupy"``, or ``"numba"``. Optional backends
            fall back to numpy semantics (with a telemetry event) when
            their import is missing; results are backend-independent,
            so this is hash-excluded like the kernel knobs.
        fastforward: Use the analytic steady-state fast-forward
            (:mod:`repro.core.fastforward`) instead of simulating every
            epoch. Bit-identical on eligible (periodic St/Bs/B1)
            configs; ineligible configs are refused via diagnostic
            RPR011. Hash-excluded — it can never change results.
        track_reads: Accumulate the read distribution too (disable to
            halve accumulation cost on large sweeps).
        log_level: Telemetry: stdlib-logging level name to bridge events
            to (``None`` = no logging bridge).
        trace_path: Telemetry: JSONL trace file to append events to.
        progress: Telemetry: render compact progress lines on stderr.
    """

    seed: int = 0
    kernel: str = "batched"
    chunk_size: Optional[int] = None
    evaluator: str = "compiled"
    backend: str = "numpy"
    fastforward: bool = False
    track_reads: bool = True
    log_level: Optional[str] = None
    trace_path: Optional[str] = None
    progress: bool = False

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.evaluator not in EVALUATORS:
            raise ValueError(
                f"evaluator must be one of {EVALUATORS}, "
                f"got {self.evaluator!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if (
            self.log_level is not None
            and str(self.log_level).lower() not in _LOG_LEVELS
        ):
            raise ValueError(
                f"log_level must be one of {_LOG_LEVELS}, "
                f"got {self.log_level!r}"
            )

    def replace(self, **changes) -> "SimulationSettings":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)

    def merge_legacy(
        self,
        context: str,
        seed: Optional[int] = None,
        kernel: Optional[str] = None,
        chunk_size: Optional[int] = None,
        track_reads: Optional[bool] = None,
    ) -> "SimulationSettings":
        """Overlay deprecated per-kwarg overrides onto these settings.

        ``None`` means "not passed"; any non-``None`` value triggers the
        once-per-process deprecation warning and wins over the
        corresponding field.
        """
        overrides = {
            name: value
            for name, value in (
                ("seed", seed),
                ("kernel", kernel),
                ("chunk_size", chunk_size),
                ("track_reads", track_reads),
            )
            if value is not None
        }
        if not overrides:
            return self
        warn_legacy_kwargs(context, sorted(overrides))
        return self.replace(**overrides)


def warn_legacy_kwargs(context: str, names) -> None:
    """Emit the once-per-process legacy-kwarg ``DeprecationWarning``.

    Args:
        context: The API the caller used (e.g. ``EnduranceSimulator.run``).
        names: The legacy kwarg names that were passed.
    """
    global _warned_legacy
    if _warned_legacy:
        return
    _warned_legacy = True
    warnings.warn(
        f"passing {', '.join(names)} to {context} is deprecated; "
        f"pass a repro.SimulationSettings via settings= instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_latch() -> None:
    """Re-arm the once-per-process deprecation warning (for tests)."""
    global _warned_legacy
    _warned_legacy = False
