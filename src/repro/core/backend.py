"""The array-API backend seam for the hot simulation paths.

The batched epoch kernel (chunked GEMM, E30), the compiled SWAR
evaluator (uint64 bitplanes, E32), and :meth:`ArrayState.add_lane_profiles`
are all "one ``np.`` namespace away" from accelerators: every hot
operation they need is in the array-API subset that NumPy, CuPy, and a
numba-wrapped NumPy expose identically. :func:`get_backend` resolves a
backend name from :class:`~repro.core.settings.SimulationSettings.backend`
into a :class:`Backend` — a small namespace carrying the ~15 operations
those paths use, plus a per-backend :class:`BufferPool` for reusable
scratch.

Two contracts keep this safe:

* **numpy is pure delegation.** The ``"numpy"`` backend forwards every
  op to :mod:`numpy` unchanged, so routing a path through the seam
  cannot perturb results — bit-identity with the pre-seam code holds by
  construction and is property-tested anyway.
* **optional backends degrade gracefully.** ``"cupy"`` and ``"numba"``
  are optional imports; when the module is missing, :func:`get_backend`
  emits a ``backend_fallback`` telemetry event (and counts
  ``backend.fallbacks``) and returns a numpy-semantics backend that
  still records what was requested. Simulations never fail because an
  accelerator library is absent.
"""

from __future__ import annotations

import importlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.telemetry import get_telemetry

#: Selectable execution backends. ``numpy`` is the default and the
#: bit-identity reference; ``cupy``/``numba`` are optional accelerators
#: that fall back to numpy semantics when their imports are missing.
BACKENDS = ("numpy", "cupy", "numba")


class BufferPool:
    """Named, shape-keyed reusable scratch buffers.

    ``get(name, shape, dtype)`` returns the *same* array for the same
    ``(name, shape, dtype)`` triple on every call, so per-chunk and
    per-batch workspaces stop allocating. Callers own the discipline:
    a pooled buffer must be fully overwritten (or requested with
    ``zero=True``) before use and must never escape to a consumer that
    outlives the next ``get`` of the same slot.
    """

    def __init__(self, xp=np) -> None:
        self.xp = xp
        self._slots: Dict[Tuple, "np.ndarray"] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, shape, dtype=np.float64, zero: bool = False):
        """The pooled buffer for ``(name, shape, dtype)``.

        Args:
            name: Slot name; the same name may serve several shapes
                (e.g. a final short chunk) — each gets its own buffer.
            shape: Required array shape.
            dtype: Required dtype.
            zero: Zero-fill the buffer before returning it. Without it
                the contents are whatever the previous use left — only
                safe when the caller overwrites every element.
        """
        key = (name, tuple(int(s) for s in shape), np.dtype(dtype).str)
        buffer = self._slots.get(key)
        if buffer is None:
            self.misses += 1
            buffer = self.xp.empty(shape, dtype=dtype)
            self._slots[key] = buffer
        else:
            self.hits += 1
        if zero:
            buffer[...] = 0
        return buffer

    def clear(self) -> None:
        """Drop every pooled buffer (frees the memory)."""
        self._slots.clear()

    def __len__(self) -> int:
        return len(self._slots)


class Backend:
    """The operations the hot paths need, bound to one array library.

    Attributes:
        name: The library actually in use (``"numpy"`` after a
            fallback).
        requested: The name the caller asked for (differs from ``name``
            exactly when the optional import failed).
        xp: The backing array module (:mod:`numpy` or ``cupy``).
        pool: A :class:`BufferPool` allocating on ``xp``.
    """

    def __init__(self, name: str, xp=np, requested: Optional[str] = None) -> None:
        self.name = name
        self.requested = requested if requested is not None else name
        self.xp = xp
        self.pool = BufferPool(xp)
        self._flushed_pool = (0, 0)  # (hits, misses) already counted

    def flush_pool_counters(self) -> None:
        """Fold pool hit/miss deltas into the telemetry counters.

        The pool's own attributes are process-lifetime totals (backends
        are cached); this publishes only what accrued since the last
        flush into ``backend.pool.hits``/``backend.pool.misses``, so
        repeated flush points (end of a fleet run, every manifest
        snapshot) never double-count.
        """
        hits, misses = self.pool.hits, self.pool.misses
        last_hits, last_misses = self._flushed_pool
        tele = get_telemetry()
        if hits > last_hits:
            tele.count("backend.pool.hits", hits - last_hits)
        if misses > last_misses:
            tele.count("backend.pool.misses", misses - last_misses)
        self._flushed_pool = (hits, misses)

    # -- introspection --------------------------------------------------

    @property
    def is_numpy(self) -> bool:
        """True when results live in host numpy arrays already."""
        return self.xp is np

    @property
    def fell_back(self) -> bool:
        """True when the requested accelerator was unavailable."""
        return self.requested != self.name

    # -- array constructors ---------------------------------------------

    def asarray(self, a, dtype=None):
        """``xp.asarray`` — wrap/transfer without copying when possible."""
        return self.xp.asarray(a, dtype=dtype)

    def zeros(self, shape, dtype=np.float64):
        """``xp.zeros`` — a zero-filled array on the backend."""
        return self.xp.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype=np.float64):
        """``xp.empty`` — an uninitialized array on the backend."""
        return self.xp.empty(shape, dtype=dtype)

    def full(self, shape, fill_value, dtype=None):
        """``xp.full`` — a constant-filled array on the backend."""
        return self.xp.full(shape, fill_value, dtype=dtype)

    def arange(self, *args, dtype=None):
        """``xp.arange`` — an index range on the backend."""
        return self.xp.arange(*args, dtype=dtype)

    # -- the hot operations ---------------------------------------------

    def argsort(self, a, axis=-1):
        """``xp.argsort`` — the sorting permutation along an axis."""
        return self.xp.argsort(a, axis=axis)

    def matmul(self, a, b, out=None):
        """``xp.matmul`` — matrix product (optionally into ``out``)."""
        return self.xp.matmul(a, b, out=out)

    def gemm(self, a, b, out=None):
        """``a @ b`` — the chunk-reduction GEMM of the epoch algebra."""
        return self.xp.matmul(a, b, out=out)

    def outer(self, a, b, out=None):
        """``xp.multiply.outer`` — the outer product."""
        return self.xp.multiply.outer(a, b, out=out)

    def bincount(self, a, weights=None, minlength=0):
        """``xp.bincount`` — weighted occurrence counts."""
        return self.xp.bincount(a, weights=weights, minlength=minlength)

    def cumsum(self, a, axis=None, out=None):
        """``xp.cumsum`` — the running sum along an axis."""
        return self.xp.cumsum(a, axis=axis, out=out)

    def unique(self, a, return_inverse=False):
        """``xp.unique`` — sorted distinct values."""
        return self.xp.unique(a, return_inverse=return_inverse)

    def packbits(self, a, axis=None, bitorder="big"):
        """``xp.packbits`` — pack 0/1 values into uint8 bytes."""
        return self.xp.packbits(a, axis=axis, bitorder=bitorder)

    def unpackbits(self, a, axis=None, count=None, bitorder="big"):
        """``xp.unpackbits`` — unpack uint8 bytes into 0/1 values."""
        return self.xp.unpackbits(a, axis=axis, count=count, bitorder=bitorder)

    def broadcast_to(self, a, shape):
        """``xp.broadcast_to`` — a read-only broadcast view."""
        return self.xp.broadcast_to(a, shape)

    def to_numpy(self, a) -> np.ndarray:
        """``a`` as a host numpy array (no copy when already one)."""
        if isinstance(a, np.ndarray):
            return a
        get = getattr(self.xp, "asnumpy", None)
        if get is not None:  # cupy
            return get(a)
        return np.asarray(a)


def _try_import(module_name: str):
    """Import hook for optional backends (monkeypatched in tests)."""
    return importlib.import_module(module_name)


def _make_backend(name: str) -> Backend:
    if name == "numpy":
        return Backend("numpy")
    try:
        module = _try_import(name)
    except ImportError as error:
        tele = get_telemetry()
        tele.count("backend.fallbacks")
        tele.emit(
            "backend_fallback",
            requested=name,
            fallback="numpy",
            reason=str(error),
        )
        return Backend("numpy", requested=name)
    if name == "cupy":
        return Backend("cupy", xp=module)
    # numba accelerates loops over numpy arrays rather than replacing the
    # array namespace; its backend keeps numpy semantics (bit-identity by
    # construction) while advertising that the JIT library is present.
    return Backend("numba")


_backend_cache: Dict[str, Backend] = {}


def get_backend(name: str = "numpy") -> Backend:
    """Resolve a backend name to a (cached) :class:`Backend`.

    Unknown names raise; known-but-unavailable backends fall back to
    numpy semantics with a ``backend_fallback`` telemetry event (emitted
    once per process per name — instances are cached).
    """
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    backend = _backend_cache.get(name)
    if backend is None:
        backend = _make_backend(name)
        _backend_cache[name] = backend
    return backend


def reset_backend_cache() -> None:
    """Drop cached backends (for tests exercising the fallback path)."""
    _backend_cache.clear()


def flush_pool_counters() -> None:
    """Flush every cached backend's pool deltas into telemetry.

    Call sites that publish counter snapshots (manifests, the fleet
    service's ``counters`` event) run this first so
    ``backend.pool.hits``/``backend.pool.misses`` are current.
    """
    for backend in _backend_cache.values():
        backend.flush_pool_counters()


def blas_implementation() -> str:
    """A short label for the BLAS numpy was built against.

    Recorded in per-run manifests so performance regressions are
    attributable across machines. Best-effort: returns ``"unknown"``
    when numpy's build metadata is not introspectable.
    """
    try:
        info = np.show_config(mode="dicts")
    except TypeError:  # numpy < 1.25 has no mode= parameter
        info = None
    if isinstance(info, dict):
        blas = info.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name")
        if name:
            version = blas.get("version")
            return f"{name} {version}" if version else str(name)
    config = getattr(np, "__config__", None)
    if config is not None:
        for key in (
            "openblas64__info",
            "openblas_info",
            "blas_mkl_info",
            "blis_info",
            "blas_opt_info",
        ):
            if getattr(config, key, None):
                return key[: -len("_info")]
    return "unknown"
