"""Output accuracy under stuck-at faults.

Section 3.3 asserts that once cells start failing "the array can produce
incorrect results", and Eq. 4 therefore declares the array dead at its
first cell failure. This module makes that assertion quantitative: inject
stuck-at faults into a lane program's logical bits and measure how often
(and how badly) its results are wrong on random operands.

The headline measurement (benchmark E28): with the ring layout, a single
stuck workspace cell corrupts the majority of multiplications — the
paper's conservative death criterion is well-founded, because load
balancing moves computation *through* every cell, so there is no such
thing as a harmlessly-dead workspace bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.synth.program import LaneProgram

#: Functional-evaluation backends: the SWAR batch evaluator (default) and
#: the per-instruction interpreter it is property-tested against.
EVALUATORS = ("compiled", "interpreted")


@dataclass(frozen=True)
class AccuracyReport:
    """Error statistics of a faulted program on sampled operands.

    Attributes:
        n_faults: Stuck-at faults injected.
        samples: Operand samples evaluated.
        error_rate: Fraction of samples whose output was wrong.
        mean_relative_error: Mean of ``|wrong - right| / max(right, 1)``
            over the erroneous samples (0 when none erred).
    """

    n_faults: int
    samples: int
    error_rate: float
    mean_relative_error: float


def measure_fault_accuracy(
    program: LaneProgram,
    reference: "callable",
    n_faults: int = 1,
    samples: int = 32,
    rng: "np.random.Generator | int | None" = None,
    output: Optional[str] = None,
    fault_addresses: Optional[Sequence[int]] = None,
    evaluator: str = "compiled",
) -> AccuracyReport:
    """Measure a program's output accuracy with stuck-at faults injected.

    For each sample, random operands are drawn, the program is evaluated
    with the faulted cells, and the named output is compared against
    ``reference(**operands)``.

    Args:
        program: The lane program under test.
        reference: Callable mapping the program's operand values to the
            correct output integer (e.g. ``lambda a, b: a * b``).
        n_faults: Stuck-at cells to inject (uniformly random addresses and
            stuck values, redrawn per sample to average over positions).
        samples: Operand samples.
        rng: Seed or generator.
        output: Output name (defaults to the program's only output).
        fault_addresses: Restrict fault positions to these addresses
            (e.g. only workspace cells); default is the whole footprint.
        evaluator: ``"compiled"`` evaluates every sample in one SWAR
            batch (:meth:`CompiledProgram.evaluate_batch`);
            ``"interpreted"`` walks the per-instruction interpreter per
            sample. Both draw the identical RNG stream and return
            bit-identical reports — the interpreter survives as the
            reference the compiled path is tested against.
    """
    if n_faults < 0:
        raise ValueError("n_faults must be non-negative")
    if samples < 1:
        raise ValueError("samples must be positive")
    if evaluator not in EVALUATORS:
        raise ValueError(
            f"evaluator must be one of {EVALUATORS}, got {evaluator!r}"
        )
    if output is None:
        if len(program.outputs) != 1:
            raise ValueError(
                "program has multiple outputs; pass `output` explicitly"
            )
        output = next(iter(program.outputs))
    generator = np.random.default_rng(rng)
    positions = (
        np.asarray(fault_addresses, dtype=np.int64)
        if fault_addresses is not None
        else np.arange(program.footprint, dtype=np.int64)
    )
    if n_faults > positions.size:
        raise ValueError("more faults than candidate addresses")

    widths = {name: len(addrs) for name, addrs in program.inputs.items()}
    # Both evaluators consume the exact same RNG call sequence: per
    # sample, one integer draw per operand, then the fault positions and
    # stuck values — so reports are identical regardless of backend.
    operand_draws: Dict[str, List[int]] = {name: [] for name in widths}
    expected_values: List[int] = []
    stuck_maps: List[Dict[int, int]] = []
    for _ in range(samples):
        operands = {}
        for name, width in widths.items():
            value = int(generator.integers(0, 2**width))
            operands[name] = value
            operand_draws[name].append(value)
        expected_values.append(reference(**operands))
        stuck: Dict[int, int] = {}
        if n_faults:
            chosen = generator.choice(positions, size=n_faults, replace=False)
            for address in chosen:
                stuck[int(address)] = int(generator.integers(0, 2))
        stuck_maps.append(stuck)

    if evaluator == "compiled":
        batch_outputs, _ = program.compiled().evaluate_batch(
            operand_draws, stuck=stuck_maps if n_faults else None
        )
        actual_values = [int(v) for v in batch_outputs[output]]
    else:
        actual_values = []
        for index in range(samples):
            outputs, _ = program.evaluate(
                {name: operand_draws[name][index] for name in widths},
                stuck=stuck_maps[index],
            )
            actual_values.append(outputs[output])

    errors = 0
    relative_errors = []
    for actual, expected in zip(actual_values, expected_values):
        if actual != expected:
            errors += 1
            relative_errors.append(
                abs(actual - expected) / max(expected, 1)
            )
    return AccuracyReport(
        n_faults=n_faults,
        samples=samples,
        error_rate=errors / samples,
        mean_relative_error=(
            float(np.mean(relative_errors)) if relative_errors else 0.0
        ),
    )
