"""Parameter sweeps: configuration grids, recompile frequency, technology.

These drive the evaluation's summary artifacts:

* :func:`configuration_grid` — all 18 balance configurations for one
  workload (Figs. 14-17);
* :func:`remap_frequency_sweep` — the Section 5 recompile-interval study
  ("the expected lifetime saturates at approximately every 50 iterations");
* :func:`technology_sweep` — lifetimes across MRAM/RRAM/PCM endurance
  points (the Section 3.1 contrast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.balance.config import BalanceConfig, all_configurations
from repro.core.lifetime import (
    LifetimeEstimate,
    lifetime_from_result,
    lifetime_improvement,
)
from repro.core.simulator import EnduranceSimulator, SimulationResult
from repro.devices.technology import Technology
from repro.workloads.base import Workload


@dataclass
class GridEntry:
    """One cell of a configuration grid."""

    config: BalanceConfig
    result: SimulationResult
    lifetime: LifetimeEstimate
    improvement: float

    @property
    def label(self) -> str:
        """The configuration's figure label."""
        return self.config.label


def configuration_grid(
    simulator: EnduranceSimulator,
    workload: Workload,
    iterations: int = 100_000,
    configs: Optional[Sequence[BalanceConfig]] = None,
    track_reads: bool = False,
) -> List[GridEntry]:
    """Simulate a workload under every balance configuration.

    Improvements are relative to the static baseline (``St x St``), which
    is always included (and simulated first) even if ``configs`` omits it.

    Returns:
        Grid entries in the order of :func:`all_configurations` (or the
        caller's order), each with its lifetime estimate and improvement.
    """
    config_list = list(configs) if configs is not None else all_configurations()
    baseline_config = next(
        (c for c in config_list if c.is_static), BalanceConfig()
    )
    baseline = simulator.run(
        workload, baseline_config, iterations, track_reads=track_reads
    )
    entries: List[GridEntry] = []
    for config in config_list:
        if config == baseline_config:
            result = baseline
        else:
            result = simulator.run(
                workload, config, iterations, track_reads=track_reads
            )
        entries.append(
            GridEntry(
                config=config,
                result=result,
                lifetime=lifetime_from_result(result),
                improvement=lifetime_improvement(result, baseline),
            )
        )
    return entries


def best_improvement(entries: Sequence[GridEntry]) -> GridEntry:
    """The grid entry with the highest lifetime improvement (Table 3)."""
    if not entries:
        raise ValueError("empty grid")
    return max(entries, key=lambda entry: entry.improvement)


def remap_frequency_sweep(
    simulator: EnduranceSimulator,
    workload: Workload,
    intervals: Sequence[int] = (10_000, 1_000, 500, 100, 50, 10),
    iterations: int = 100_000,
    base_config: Optional[BalanceConfig] = None,
) -> Dict[int, float]:
    """Lifetime improvement versus recompile interval (Section 5).

    "More frequent re-mapping is more effective at balancing load.
    Accordingly, we sweep the re-mapping frequency to characterize this
    trade-off space." The paper finds saturation near every 50 iterations,
    with only ~1.6% average further gain from 50 down to 10.

    Args:
        simulator: The driver.
        workload: Benchmark kernel.
        intervals: Recompile intervals to test.
        iterations: Total iterations per run.
        base_config: Strategy pair to sweep (default Ra x Ra, the most
            re-mapping-sensitive software configuration).

    Returns:
        Interval -> lifetime improvement over the static baseline.
    """
    if base_config is None:
        from repro.balance.software import StrategyKind

        base_config = BalanceConfig(
            within=StrategyKind.RANDOM, between=StrategyKind.RANDOM
        )
    baseline = simulator.run(
        workload, BalanceConfig(), iterations, track_reads=False
    )
    improvements: Dict[int, float] = {}
    for interval in intervals:
        result = simulator.run(
            workload,
            base_config.with_interval(interval),
            iterations,
            track_reads=False,
        )
        improvements[interval] = lifetime_improvement(result, baseline)
    return improvements


def technology_sweep(
    result: SimulationResult, technologies: Sequence[Technology]
) -> Dict[str, LifetimeEstimate]:
    """Re-price one simulation's wear against different technologies.

    The write distribution is technology-independent; only endurance (and
    nominal latency) change, so a single simulation yields the full
    MRAM/RRAM/PCM lifetime contrast of Section 3.1.
    """
    return {
        technology.name: lifetime_from_result(result, technology=technology)
        for technology in technologies
    }
