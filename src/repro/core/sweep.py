"""Parameter sweeps: configuration grids, recompile frequency, technology.

These drive the evaluation's summary artifacts:

* :func:`configuration_grid` — all 18 balance configurations for one
  workload (Figs. 14-17);
* :func:`remap_frequency_sweep` — the Section 5 recompile-interval study
  ("the expected lifetime saturates at approximately every 50 iterations");
* :func:`technology_sweep` — lifetimes across MRAM/RRAM/PCM endurance
  points (the Section 3.1 contrast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.balance.config import BalanceConfig, all_configurations
from repro.core.lifetime import (
    LifetimeEstimate,
    lifetime_from_result,
    lifetime_improvement,
)
from repro.core.settings import SimulationSettings
from repro.core.simulator import EnduranceSimulator, SimulationResult
from repro.devices.technology import Technology
from repro.telemetry import get_telemetry
from repro.workloads.base import Workload


@dataclass
class GridEntry:
    """One cell of a configuration grid.

    ``result`` is a full :class:`SimulationResult` on the in-process path
    and a store-restored result (same counters and metadata surface) when
    the grid ran through the experiment engine.
    """

    config: BalanceConfig
    result: SimulationResult
    lifetime: LifetimeEstimate
    improvement: float

    @property
    def label(self) -> str:
        """The configuration's figure label."""
        return self.config.label


def simulate_configs(
    simulator: EnduranceSimulator,
    workload: Workload,
    configs: Sequence[BalanceConfig],
    iterations: int,
    track_reads: Optional[bool] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    hooks=None,
    kernel: Optional[str] = None,
    chunk_size: Optional[int] = None,
    settings: Optional[SimulationSettings] = None,
) -> Dict[BalanceConfig, SimulationResult]:
    """Simulate a list of configurations once each, in the given order.

    The shared backbone of :func:`configuration_grid` and
    :func:`remap_frequency_sweep` (both list their baseline first).
    Duplicate configurations are simulated once. With ``jobs > 1`` or a
    ``cache_dir``, the batch routes through :mod:`repro.engine` —
    parallel workers, disk-cached results, resumable after interruption —
    and is bit-identical to the in-process path because every job runs on
    a fresh simulator carrying the same settings.

    Args:
        settings: Simulation settings for every cell; defaults to the
            simulator's own (``track_reads`` below still applies).
        kernel: Deprecated alias for ``settings.kernel``.
        chunk_size: Deprecated alias for ``settings.chunk_size``.

    Raises:
        repro.engine.EngineError: if any engine-routed job fails.
    """
    base = settings if settings is not None else simulator.settings
    base = base.merge_legacy(
        "simulate_configs()", kernel=kernel, chunk_size=chunk_size
    )
    if track_reads is None:
        # Sweeps historically default to writes-only; explicit settings
        # carry their own choice.
        track_reads = base.track_reads if settings is not None else False
    if base.track_reads != track_reads:
        base = base.replace(track_reads=track_reads)
    ordered = list(dict.fromkeys(configs))
    tele = get_telemetry()
    if jobs <= 1 and cache_dir is None:
        results: Dict[BalanceConfig, SimulationResult] = {}
        for done, config in enumerate(ordered, start=1):
            results[config] = simulator.run(
                workload, config, iterations, settings=base
            )
            tele.emit(
                "grid_progress",
                done=done,
                total=len(ordered),
                label=config.label,
                workload=workload.name,
            )
        return results
    # Imported lazily: repro.engine depends on this package.
    from repro.engine import (
        ExperimentEngine,
        JobSpec,
        ResultStore,
        require_ok,
    )

    specs = [
        JobSpec.from_settings(
            workload,
            simulator.architecture,
            config=config,
            iterations=iterations,
            settings=base,
        )
        for config in ordered
    ]
    engine = ExperimentEngine(
        store=ResultStore(cache_dir) if cache_dir else None,
        jobs=jobs,
        hooks=hooks,
    )
    outcomes = require_ok(engine.run(specs))
    return {
        config: outcome.result
        for config, outcome in zip(ordered, outcomes)
    }


def configuration_grid(
    simulator: EnduranceSimulator,
    workload: Workload,
    iterations: int = 100_000,
    configs: Optional[Sequence[BalanceConfig]] = None,
    track_reads: Optional[bool] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    hooks=None,
    kernel: Optional[str] = None,
    chunk_size: Optional[int] = None,
    settings: Optional[SimulationSettings] = None,
) -> List[GridEntry]:
    """Simulate a workload under every balance configuration.

    Improvements are relative to the static baseline (``St x St``), which
    is always included (and simulated first) even if ``configs`` omits it.

    Args:
        jobs: Worker processes; ``> 1`` fans the grid out over a process
            pool via :mod:`repro.engine`.
        cache_dir: Engine result store; completed cells are reused across
            runs and an interrupted grid resumes from them.
        hooks: Engine progress hooks (e.g.
            :class:`repro.engine.TextReporter`).
        kernel: Deprecated alias for ``settings.kernel``.
        chunk_size: Deprecated alias for ``settings.chunk_size``.
        settings: Simulation settings for every cell.

    Returns:
        Grid entries in the order of :func:`all_configurations` (or the
        caller's order), each with its lifetime estimate and improvement.
    """
    config_list = list(configs) if configs is not None else all_configurations()
    baseline_config = next(
        (c for c in config_list if c.is_static), BalanceConfig()
    )
    results = simulate_configs(
        simulator,
        workload,
        [baseline_config] + config_list,
        iterations,
        track_reads=track_reads,
        jobs=jobs,
        cache_dir=cache_dir,
        hooks=hooks,
        kernel=kernel,
        chunk_size=chunk_size,
        settings=settings,
    )
    baseline = results[baseline_config]
    return [
        GridEntry(
            config=config,
            result=results[config],
            lifetime=lifetime_from_result(results[config]),
            improvement=lifetime_improvement(results[config], baseline),
        )
        for config in config_list
    ]


def best_improvement(entries: Sequence[GridEntry]) -> GridEntry:
    """The grid entry with the highest lifetime improvement (Table 3)."""
    if not entries:
        raise ValueError("empty grid")
    return max(entries, key=lambda entry: entry.improvement)


def remap_frequency_sweep(
    simulator: EnduranceSimulator,
    workload: Workload,
    intervals: Sequence[int] = (10_000, 1_000, 500, 100, 50, 10),
    iterations: int = 100_000,
    base_config: Optional[BalanceConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    hooks=None,
    kernel: Optional[str] = None,
    chunk_size: Optional[int] = None,
    settings: Optional[SimulationSettings] = None,
) -> Dict[int, float]:
    """Lifetime improvement versus recompile interval (Section 5).

    "More frequent re-mapping is more effective at balancing load.
    Accordingly, we sweep the re-mapping frequency to characterize this
    trade-off space." The paper finds saturation near every 50 iterations,
    with only ~1.6% average further gain from 50 down to 10.

    Args:
        simulator: The driver.
        workload: Benchmark kernel.
        intervals: Recompile intervals to test.
        iterations: Total iterations per run.
        base_config: Strategy pair to sweep (default Ra x Ra, the most
            re-mapping-sensitive software configuration).
        jobs: Worker processes for the engine-routed path.
        cache_dir: Engine result store (reuse/resume across runs).
        hooks: Engine progress hooks.
        kernel: Deprecated alias for ``settings.kernel``. The batched
            kernel is what makes the small-interval points (down to
            re-mapping every iteration) affordable at full horizons.
        chunk_size: Deprecated alias for ``settings.chunk_size``.
        settings: Simulation settings for every point.

    Returns:
        Interval -> lifetime improvement over the static baseline.
    """
    if base_config is None:
        from repro.balance.software import StrategyKind

        base_config = BalanceConfig(
            within=StrategyKind.RANDOM, between=StrategyKind.RANDOM
        )
    baseline_config = BalanceConfig()
    swept = {
        interval: base_config.with_interval(interval)
        for interval in intervals
    }
    results = simulate_configs(
        simulator,
        workload,
        [baseline_config] + list(swept.values()),
        iterations,
        track_reads=False,
        jobs=jobs,
        cache_dir=cache_dir,
        hooks=hooks,
        kernel=kernel,
        chunk_size=chunk_size,
        settings=settings,
    )
    baseline = results[baseline_config]
    return {
        interval: lifetime_improvement(results[config], baseline)
        for interval, config in swept.items()
    }


def technology_sweep(
    result: SimulationResult, technologies: Sequence[Technology]
) -> Dict[str, LifetimeEstimate]:
    """Re-price one simulation's wear against different technologies.

    The write distribution is technology-independent; only endurance (and
    nominal latency) change, so a single simulation yields the full
    MRAM/RRAM/PCM lifetime contrast of Section 3.1.
    """
    return {
        technology.name: lifetime_from_result(result, technology=technology)
        for technology in technologies
    }
