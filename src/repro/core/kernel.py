"""Batched epoch kernel: chunked GEMM accumulation across recompile epochs.

The per-epoch simulation loop pays, for every epoch, a permutation
generation, a permutation validation, and one full-array outer product per
program group. At the paper's extremes (``remap_frequency_sweep`` goes
down to ``recompile_interval=1``, i.e. 100,000 epochs for the Section 4
horizon) that is 100,000 Python-level trips over an 8 MB temporary.

This module collapses the loop across epochs:

* **permutation batch** — all within/between maps for a chunk of ``E``
  epochs come from one call (:func:`make_epoch_maps`): a single
  ``rng.random((E, k)).argsort`` for random shuffling, closed-form index
  arithmetic for byte-/bit-shifting, a broadcast view for static;
* **profile batch** — each program's per-offset profile is scattered
  through all ``E`` within-maps with one advanced-indexing assignment
  into an ``(E, lane_size)`` matrix (the hardware path rides
  :meth:`HardwareRemapper.profile_many`, which shares the per-length
  domain-count cache);
* **GEMM reduction** — the chunk's contribution,
  ``sum_e outer(profile[e], weights[e])``, is one
  ``profiles.T @ weights`` matrix product
  (:meth:`ArrayState.add_lane_profiles`) instead of ``E`` outer products.

Everything stays **exact**: profiles, epoch lengths and lane weights are
integer-valued float64, so the GEMM reduction equals the sequential sum
bit for bit, in any chunking. The stateful wear-aware (``Wa``)
between-lane strategy is the one part that must observe epoch order; it
keeps an O(lane_count)-per-epoch incremental wear vector (per-lane totals
are invariant under within-lane permutation, so cell-level accumulation
still defers to the chunk-end GEMM).

``EnduranceSimulator.run`` uses this kernel by default; the per-epoch
loop survives as the property-test oracle (``kernel="epoch"``), driven by
the same permutation stream so the two are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.architecture import PIMArchitecture
from repro.array.state import ArrayState
from repro.balance.config import BalanceConfig
from repro.balance.hardware import HardwareRemapper
from repro.balance.software import (
    StrategyKind,
    make_permutations,
    wear_aware_permutation,
)
from repro.core.backend import Backend, get_backend
from repro.synth.program import LaneProgram
from repro.telemetry import get_telemetry

#: Epochs accumulated per GEMM. Bounds the working set to a few
#: ``chunk x lane_size`` matrices (~8 MB each at the paper's geometry)
#: while amortizing permutation generation and the BLAS call.
DEFAULT_CHUNK_SIZE = 1024

#: The simulator's two execution paths.
KERNELS = ("batched", "epoch")


def epoch_lengths(config: BalanceConfig, iterations: int) -> np.ndarray:
    """Per-epoch iteration counts covering a run, as an int64 vector.

    Configurations without software re-mapping never recompile and run as
    one continuous epoch; otherwise ``iterations`` splits into full
    ``recompile_interval`` epochs plus an optional remainder.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if not config.needs_recompilation:
        return np.array([iterations], dtype=np.int64)
    interval = config.recompile_interval
    full, remainder = divmod(iterations, interval)
    lengths = np.full(full + (1 if remainder else 0), interval, dtype=np.int64)
    if remainder:
        lengths[-1] = remainder
    return lengths


def make_epoch_maps(
    within: StrategyKind,
    between: StrategyKind,
    lane_size: int,
    lane_count: int,
    count: int,
    rng: "np.random.Generator | None" = None,
    epoch_start: int = 0,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Within/between permutation matrices for ``count`` epochs.

    This is the canonical permutation source for both simulator kernels.
    When either side uses random shuffling, the uniforms for the whole
    chunk are drawn as **one** ``(count, k)`` block whose row ``e`` holds
    epoch ``e``'s within-draws followed by its between-draws. Row-major
    filling makes the stream identical whether the chunk is generated in
    one call or epoch by epoch, so results are independent of chunking.

    Returns:
        ``(within_maps, between_maps)`` of shapes ``(count, lane_size)``
        and ``(count, lane_count)``. ``between_maps`` is ``None`` for the
        stateful wear-aware strategy, which the caller must resolve in
        epoch order against accumulated wear.
    """
    within_random = within is StrategyKind.RANDOM
    between_random = between is StrategyKind.RANDOM
    draws = None
    if within_random or between_random:
        if rng is None:
            raise ValueError("random shuffling requires an rng")
        width = lane_size * within_random + lane_count * between_random
        draws = rng.random((count, width))
    if within_random:
        within_maps = np.argsort(draws[:, :lane_size], axis=1).astype(
            np.int64, copy=False
        )
    else:
        within_maps = make_permutations(
            within, lane_size, count, epoch_start=epoch_start
        )
    if between is StrategyKind.WEAR_AWARE:
        between_maps: Optional[np.ndarray] = None
    elif between_random:
        between_maps = np.argsort(draws[:, -lane_count:], axis=1).astype(
            np.int64, copy=False
        )
    else:
        between_maps = make_permutations(
            between, lane_count, count, epoch_start=epoch_start
        )
    return within_maps, between_maps


def run_batched_epochs(
    architecture: PIMArchitecture,
    config: BalanceConfig,
    state: ArrayState,
    rng: np.random.Generator,
    groups: Dict[int, Tuple[LaneProgram, List[int]]],
    iterations: int,
    *,
    remappers: Optional[Dict[int, HardwareRemapper]] = None,
    lane_loads: Optional[np.ndarray] = None,
    track_reads: bool = True,
    chunk_size: Optional[int] = None,
    backend: Optional[Backend] = None,
) -> int:
    """Accumulate a whole run into ``state``, chunked across epochs.

    Args:
        architecture: The PIM design (geometry, orientation, pre-sets).
        config: Load-balancing configuration driving the epoch schedule.
        state: Counters to update.
        rng: The run's random stream (shared with the epoch-loop oracle).
        groups: ``id(program) -> (program, logical_lanes)`` — lanes
            grouped by canonical program object.
        iterations: Total repetitions to simulate.
        remappers: Per-group :class:`HardwareRemapper`, required when
            ``config.hardware`` is set.
        lane_loads: Per-logical-lane writes/iteration, required when the
            between strategy is wear-aware.
        track_reads: Also accumulate the read distribution.
        chunk_size: Epochs per GEMM (default
            :data:`DEFAULT_CHUNK_SIZE`); affects memory and speed only,
            never results.
        backend: Array backend providing the scratch pool and hot ops
            (default numpy). The numpy backend is pure delegation, so
            results are backend-independent by construction.

    Returns:
        The number of epochs simulated.
    """
    chunk = DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    backend = backend if backend is not None else get_backend()
    pool = backend.pool
    if chunk < 1:
        raise ValueError("chunk_size must be positive")
    lane_size = architecture.lane_size
    lane_count = architecture.lane_count
    orientation = architecture.orientation
    wear_between = config.between is StrategyKind.WEAR_AWARE
    if config.hardware and remappers is None:
        raise ValueError("hardware re-mapping requires remappers")
    if wear_between and lane_loads is None:
        raise ValueError("wear-aware between-lane mapping requires lane_loads")

    # Static per-group data, computed once for the whole run.
    lane_arrays: Dict[int, np.ndarray] = {}
    write_profiles: Dict[int, np.ndarray] = {}
    read_profiles: Dict[int, np.ndarray] = {}
    epoch_lane_writes: Dict[int, float] = {}
    for key, (program, lanes) in groups.items():
        lane_arrays[key] = np.asarray(lanes, dtype=np.int64)
        if config.hardware:
            # Profiles come per-chunk from the remapper; wear updates need
            # only the per-iteration total, which renaming preserves.
            epoch_lane_writes[key] = remappers[key].writes_per_iteration
            continue
        if program.footprint > lane_size:
            raise ValueError(
                f"program {program.name!r} needs {program.footprint} bits, "
                f"lane has {lane_size}"
            )
        writes = program.write_profile(
            lane_size, include_presets=architecture.presets_output
        )
        write_profiles[key] = writes
        epoch_lane_writes[key] = float(writes.sum())
        if track_reads:
            read_profiles[key] = program.read_profile(lane_size)

    wear = (
        state.lane_view(state.write_counts, orientation)
        .sum(axis=0)
        .astype(np.float64)
        if wear_between
        else None
    )

    tele = get_telemetry()
    gemms = 0
    lengths = epoch_lengths(config, iterations)
    total_epochs = int(lengths.size)
    start = 0
    while start < total_epochs:
        count = min(chunk, total_epochs - start)
        tele.count("kernel.chunks")
        chunk_lengths = lengths[start : start + count]
        within_maps, between_maps = make_epoch_maps(
            config.within,
            config.between,
            lane_size,
            lane_count,
            count,
            rng,
            epoch_start=start,
        )
        if wear_between:
            # The one genuinely sequential piece: each epoch's assignment
            # depends on wear accrued by all earlier epochs. Per-lane wear
            # is invariant under within-lane permutation, so an
            # O(lane_count) incremental update suffices and the cell-level
            # accumulation still happens in the chunk-end GEMM.
            with tele.timed_phase("wear_aware"):
                between_maps = pool.get(
                    "kernel.between_maps", (count, lane_count), np.int64
                )
                for e in range(count):
                    permutation = wear_aware_permutation(lane_loads, wear)
                    between_maps[e] = permutation
                    length = int(chunk_lengths[e])
                    for key in groups:
                        wear[permutation[lane_arrays[key]]] += (
                            epoch_lane_writes[key] * length
                        )
        rows = np.arange(count)[:, None]
        float_lengths = chunk_lengths.astype(np.float64)[:, None]
        for key, (program, _) in groups.items():
            lanes = lane_arrays[key]
            if config.hardware:
                profile_writes, profile_reads = remappers[key].profile_many(
                    chunk_lengths, within_maps
                )
                # The remapper's profiles already carry the epoch length.
                weight_values: "np.ndarray | float" = 1.0
            else:
                # Pooled scratch: the scatter covers every column of
                # every row (within_maps rows are permutations), so no
                # zero-fill is needed between reuses.
                profile_writes = pool.get(
                    "kernel.profile_writes", (count, lane_size)
                )
                profile_writes[rows, within_maps] = write_profiles[key]
                if track_reads:
                    profile_reads = pool.get(
                        "kernel.profile_reads", (count, lane_size)
                    )
                    profile_reads[rows, within_maps] = read_profiles[key]
                weight_values = float_lengths
            # Rows of between_maps are permutations and the group's lanes
            # are distinct, so scattered columns never collide.
            lane_weights = pool.get(
                "kernel.lane_weights", (count, lane_count), zero=True
            )
            lane_weights[rows, between_maps[:, lanes]] = weight_values
            state.add_lane_profiles(
                profile_writes, lane_weights, orientation, "write"
            )
            gemms += 1
            if track_reads:
                state.add_lane_profiles(
                    profile_reads, lane_weights, orientation, "read"
                )
                gemms += 1
        start += count
    tele.count("kernel.gemms", gemms)
    tele.gauge("kernel.chunk_size", chunk)
    return total_epochs
