"""Persistence for simulation results.

Long-horizon sweeps are worth caching: this module saves a
:class:`~repro.core.simulator.SimulationResult`'s counters and metadata to
a single ``.npz`` file and restores them into a summary object that
supports every downstream analysis (distributions, lifetimes, failure
timelines) without re-simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.array.architecture import PIMArchitecture, default_architecture
from repro.array.geometry import Orientation
from repro.array.state import ArrayState
from repro.balance.config import BalanceConfig
from repro.core.simulator import SimulationResult
from repro.core.writedist import WriteDistribution

_FORMAT_VERSION = 1


def result_metadata(result: SimulationResult) -> dict:
    """The JSON-able metadata block describing one result.

    Everything a :class:`LoadedResult` needs besides the counter arrays.
    Works on any result-like object (:class:`SimulationResult` or an
    already-restored :class:`LoadedResult`).
    """
    return {
        "format_version": _FORMAT_VERSION,
        "workload_name": result.workload_name,
        "config_label": result.config.label,
        "recompile_interval": result.config.recompile_interval,
        "iterations": result.iterations,
        "epochs": result.epochs,
        "rows": result.architecture.geometry.rows,
        "cols": result.architecture.geometry.cols,
        "orientation": result.architecture.orientation.value,
        "technology": result.architecture.technology.name,
        "architecture": result.architecture.name,
        "iteration_latency_s": result.iteration_latency_s,
        "lane_utilization": result.lane_utilization,
    }


def save_result(
    result: SimulationResult, path: str, compress: bool = True
) -> None:
    """Save a simulation result's counters and metadata to ``path``.

    The workload mapping itself (programs, schedule) is not serialized;
    the per-iteration latency and per-iteration write/read totals it
    determines are stored instead, which is what every lifetime analysis
    consumes.

    Args:
        compress: Deflate the counter arrays (smallest files, for export
            artifacts). The engine's result store passes ``False``: its
            entries are a throughput-critical cache, and zlib costs more
            wall clock than the bytes are worth there.
    """
    writer = np.savez_compressed if compress else np.savez
    arrays = {"write_counts": result.state.write_counts}
    # An untracked read distribution is a matrix of zeros; storing it
    # raw would double every entry for no information.
    if result.state.read_counts.any():
        arrays["read_counts"] = result.state.read_counts
    writer(path, metadata=json.dumps(result_metadata(result)), **arrays)


@dataclass
class LoadedResult:
    """A restored simulation result (counters plus summary metadata).

    Mirrors the :class:`SimulationResult` surface that analyses consume:
    ``state``, ``iterations``, ``architecture``, ``config``,
    ``iteration_latency_s``, ``max_writes_per_iteration`` and the
    distribution properties.
    """

    workload_name: str
    config: BalanceConfig
    architecture: PIMArchitecture
    iterations: int
    epochs: int
    state: ArrayState
    iteration_latency_s: float
    lane_utilization: float

    @property
    def max_writes_per_iteration(self) -> float:
        """Hottest cell's write rate (Eq. 4 denominator)."""
        return self.state.max_writes / self.iterations

    @property
    def write_distribution(self) -> WriteDistribution:
        """The restored write distribution."""
        return WriteDistribution(
            self.state.write_counts,
            self.iterations,
            self.architecture.orientation,
            label=f"{self.workload_name} {self.config.label}",
        )

    @property
    def read_distribution(self) -> WriteDistribution:
        """The restored read distribution."""
        return WriteDistribution(
            self.state.read_counts,
            self.iterations,
            self.architecture.orientation,
            label=f"{self.workload_name} {self.config.label} (reads)",
        )


def restore_result(
    metadata: dict,
    write_counts: np.ndarray,
    read_counts: Optional[np.ndarray] = None,
) -> LoadedResult:
    """Rebuild a :class:`LoadedResult` from its metadata block and counters.

    The inverse of (:func:`result_metadata`, the counter arrays); also the
    experiment engine's in-memory transport between worker processes.
    ``read_counts=None`` means "reads were not tracked" (all zeros).

    Raises:
        ValueError: if the metadata was written by an incompatible version.
    """
    version = metadata.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    from repro.devices.technology import technology_by_name

    architecture = default_architecture(
        metadata["rows"], metadata["cols"]
    ).with_technology(technology_by_name(metadata["technology"]))
    if metadata["orientation"] != architecture.orientation.value:
        from dataclasses import replace

        architecture = replace(
            architecture,
            orientation=Orientation(metadata["orientation"]),
        )
    state = ArrayState.from_counts(
        architecture.geometry, write_counts, read_counts
    )
    return LoadedResult(
        workload_name=metadata["workload_name"],
        config=BalanceConfig.from_label(
            metadata["config_label"],
            recompile_interval=metadata["recompile_interval"],
        ),
        architecture=architecture,
        iterations=metadata["iterations"],
        epochs=metadata["epochs"],
        state=state,
        iteration_latency_s=metadata["iteration_latency_s"],
        lane_utilization=metadata["lane_utilization"],
    )


def load_result(path: str) -> LoadedResult:
    """Restore a result saved with :func:`save_result`.

    Raises:
        ValueError: if the file was written by an incompatible version.
    """
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        write_counts = archive["write_counts"]
        read_counts = (
            archive["read_counts"] if "read_counts" in archive.files else None
        )
    return restore_result(metadata, write_counts, read_counts)


def save_distributions_csv(
    distributions: List[WriteDistribution], directory: str
) -> List[str]:
    """Write one CSV per distribution into ``directory``; returns paths."""
    import os
    import re

    os.makedirs(directory, exist_ok=True)
    paths = []
    for dist in distributions:
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", dist.label or "dist")
        path = os.path.join(directory, f"{slug}.csv")
        dist.to_csv(path)
        paths.append(path)
    return paths
