"""The paper's primary contribution: NVPIM endurance characterization.

* :mod:`repro.core.writedist` — write-distribution statistics and heatmaps
  (Figs. 5, 14-16);
* :mod:`repro.core.simulator` — the endurance simulator: workload x
  balance configuration x iterations -> per-cell wear (Section 4's
  "instruction-level accurate" simulation, accelerated by exact epoch
  algebra);
* :mod:`repro.core.lifetime` — the lifetime model: Equations 1, 2 and 4,
  and improvement factors (Fig. 17, Table 3);
* :mod:`repro.core.sweep` — configuration grids and the recompile-
  frequency sweep (Section 5);
* :mod:`repro.core.backend` — the pluggable array-backend seam the hot
  paths route through (numpy default; cupy/numba optional with graceful
  fallback) plus the per-shape scratch-buffer pool;
* :mod:`repro.core.fastforward` — the analytic steady-state
  fast-forward: periodic configs extrapolate wear in O(period) instead
  of O(iterations), bit-identically;
* :mod:`repro.core.report` — plain-text renderings of every table and
  figure.
"""

from repro.core.backend import (
    BACKENDS,
    Backend,
    BufferPool,
    blas_implementation,
    get_backend,
    reset_backend_cache,
)
from repro.core.fastforward import (
    PERIODIC_KINDS,
    fastforward_eligible,
    fastforward_period,
    run_fastforward_epochs,
    strategy_period,
)
from repro.core.writedist import WriteDistribution
from repro.core.settings import SimulationSettings
from repro.core.simulator import EnduranceSimulator, SimulationResult
from repro.core.lifetime import (
    LifetimeEstimate,
    array_write_budget,
    eq1_operations_until_total_failure,
    eq2_seconds_until_total_failure,
    lifetime_from_result,
    lifetime_improvement,
)
from repro.core.sweep import (
    configuration_grid,
    remap_frequency_sweep,
    technology_sweep,
)
from repro.core.failure import (
    FailureTimeline,
    cell_failure_times,
    failure_timeline,
    minimum_footprint,
    offset_death_times,
)
from repro.core.system import ArrayFarm, FarmLifetime, lifetime_at_duty_cycle
from repro.core.switching import SwitchingProfile, measure_switching
from repro.core.cluster import ClusterResult, PartitionedDotProduct
from repro.core.accuracy import (
    EVALUATORS,
    AccuracyReport,
    measure_fault_accuracy,
)

__all__ = [
    "WriteDistribution",
    "EnduranceSimulator",
    "SimulationResult",
    "SimulationSettings",
    "LifetimeEstimate",
    "lifetime_from_result",
    "lifetime_improvement",
    "array_write_budget",
    "eq1_operations_until_total_failure",
    "eq2_seconds_until_total_failure",
    "configuration_grid",
    "remap_frequency_sweep",
    "technology_sweep",
    "FailureTimeline",
    "failure_timeline",
    "cell_failure_times",
    "offset_death_times",
    "minimum_footprint",
    "ArrayFarm",
    "FarmLifetime",
    "lifetime_at_duty_cycle",
    "SwitchingProfile",
    "measure_switching",
    "ClusterResult",
    "PartitionedDotProduct",
    "AccuracyReport",
    "measure_fault_accuracy",
    "EVALUATORS",
    "BACKENDS",
    "Backend",
    "BufferPool",
    "blas_implementation",
    "get_backend",
    "reset_backend_cache",
    "PERIODIC_KINDS",
    "fastforward_eligible",
    "fastforward_period",
    "run_fastforward_epochs",
    "strategy_period",
]
