"""Analytic steady-state fast-forward for periodic balance configurations.

The hardware remapper already exploits periodicity *within* an epoch:
renaming advances by a fixed permutation ``tau`` per iteration, so a
million iterations reduce to cycle counting (``repro.balance.hardware``).
This module applies the same idea one level up, *across* epochs. The
deterministic software strategies are pure functions of the epoch index
with short periods:

* ``St`` — identity every epoch: period 1;
* ``Bs`` — shift by ``8 * epoch mod size``: period ``size / gcd(8, size)``;
* ``B1`` — shift by ``epoch mod size``: period ``size``.

For a config whose within- and between-lane strategies are all drawn
from this set, the per-epoch wear delta of full-length epochs repeats
with period ``P = lcm(P_within, P_between)`` — hardware re-mapping
included, because renaming restarts from the software mapping at every
recompile and its profile depends only on ``(epoch length, within map)``.
A run of ``E`` full epochs therefore splits as ``E = q * P + r``, and

``total = q * S_period + S_prefix(r) + S_remainder``

where ``S_period`` sums one period of epoch contributions, ``S_prefix``
the first ``r`` of them, and ``S_remainder`` the final short epoch (if
``iterations`` is not a multiple of the recompile interval). All
quantities are integer-valued float64 well below 2^53, so the analytic
sum is **bit-identical** to simulating every epoch — lifetime and
``failure_timeline`` answers in O(period) instead of O(iterations).

Random shuffling (``Ra``) draws a fresh permutation per epoch and
wear-aware mapping (``Wa``) feeds accumulated state back into the next
epoch's assignment — neither is periodic, so such configs are refused
(diagnostic RPR011 via :func:`repro.verify.check_fastforward`) rather
than silently approximated.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.architecture import PIMArchitecture
from repro.array.state import ArrayState
from repro.balance.config import BalanceConfig
from repro.balance.hardware import HardwareRemapper
from repro.balance.software import StrategyKind
from repro.core.backend import Backend, get_backend
from repro.core.kernel import epoch_lengths, make_epoch_maps
from repro.synth.program import LaneProgram
from repro.telemetry import get_telemetry

#: Strategies whose per-epoch permutation is a pure periodic function of
#: the epoch index. Ra (fresh randomness per epoch) and Wa (wear-state
#: feedback) are excluded by construction.
PERIODIC_KINDS = frozenset(
    {StrategyKind.STATIC, StrategyKind.BYTE_SHIFT, StrategyKind.BIT_SHIFT}
)

#: Bits per byte-shift step (mirrors ``repro.balance.mapping``).
_BITS_PER_BYTE = 8


def strategy_period(kind: StrategyKind, size: int) -> Optional[int]:
    """The epoch period of a software strategy over ``size`` addresses.

    Returns ``None`` for non-periodic strategies (``Ra``, ``Wa``).
    """
    if size < 1:
        raise ValueError("size must be positive")
    if kind is StrategyKind.STATIC:
        return 1
    if kind is StrategyKind.BYTE_SHIFT:
        return size // gcd(_BITS_PER_BYTE, size)
    if kind is StrategyKind.BIT_SHIFT:
        return size
    return None


def fastforward_eligible(config: BalanceConfig) -> bool:
    """Whether ``config``'s epoch deltas are provably periodic."""
    return (
        config.within in PERIODIC_KINDS and config.between in PERIODIC_KINDS
    )


def fastforward_period(
    config: BalanceConfig, lane_size: int, lane_count: int
) -> Optional[int]:
    """The joint epoch period of ``config``, or ``None`` if ineligible.

    The combined within/between mapping repeats when both component
    streams do: ``lcm(P_within, P_between)``. Hardware re-mapping does
    not enter the period — it restarts at every recompile boundary, so
    its epoch profile is a function of the (periodic) within map alone.
    """
    within = strategy_period(config.within, lane_size)
    between = strategy_period(config.between, lane_count)
    if within is None or between is None:
        return None
    return within * between // gcd(within, between)


def run_fastforward_epochs(
    architecture: PIMArchitecture,
    config: BalanceConfig,
    state: ArrayState,
    groups: Dict[int, Tuple[LaneProgram, List[int]]],
    iterations: int,
    *,
    remappers: Optional[Dict[int, HardwareRemapper]] = None,
    track_reads: bool = True,
    backend: Optional[Backend] = None,
) -> int:
    """Accumulate a whole run into ``state`` analytically.

    Bit-identical to :func:`repro.core.kernel.run_batched_epochs` (and
    hence to the per-epoch oracle) on eligible configs, at O(period)
    cost: at most ``min(P, E)`` full epochs plus one remainder epoch are
    materialized, however many millions the horizon spans.

    Args:
        architecture: The PIM design (geometry, orientation, pre-sets).
        config: Load-balancing configuration; must be fast-forward
            eligible (``St``/``Bs``/``B1`` strategies only).
        state: Counters to update.
        groups: ``id(program) -> (program, logical_lanes)``.
        iterations: Total repetitions to account for.
        remappers: Per-group :class:`HardwareRemapper`, required when
            ``config.hardware`` is set.
        track_reads: Also accumulate the read distribution.
        backend: Array backend (default numpy); numpy is pure
            delegation, so results are backend-independent.

    Returns:
        The number of *logical* epochs the run covers (identical to the
        simulated paths' return, for result parity).
    """
    lane_size = architecture.lane_size
    lane_count = architecture.lane_count
    orientation = architecture.orientation
    if not fastforward_eligible(config):
        raise ValueError(
            f"config {config.label} is not fast-forward eligible: "
            "Ra/Wa epoch deltas are not periodic (RPR011)"
        )
    if config.hardware and remappers is None:
        raise ValueError("hardware re-mapping requires remappers")
    backend = backend if backend is not None else get_backend()
    pool = backend.pool

    lengths = epoch_lengths(config, iterations)
    total_epochs = int(lengths.size)
    if config.needs_recompilation:
        interval = config.recompile_interval
        full_epochs, remainder = divmod(iterations, interval)
    else:
        # St x St (+Hw): a single continuous epoch; period 1 by definition.
        interval, full_epochs, remainder = iterations, 1, 0

    period = fastforward_period(config, lane_size, lane_count)
    q, r = divmod(full_epochs, period)
    block = min(period, full_epochs)  # epochs actually materialized
    # Epoch e (mod P) occurs q times, plus once more for the first r
    # phase positions — integer multiplicities, exact in float64.
    multiplicity = q + (np.arange(block, dtype=np.int64) < r)

    # Static per-group profiles (mirrors run_batched_epochs).
    lane_arrays: Dict[int, np.ndarray] = {}
    write_profiles: Dict[int, np.ndarray] = {}
    read_profiles: Dict[int, np.ndarray] = {}
    for key, (program, lanes) in groups.items():
        lane_arrays[key] = np.asarray(lanes, dtype=np.int64)
        if config.hardware:
            continue
        if program.footprint > lane_size:
            raise ValueError(
                f"program {program.name!r} needs {program.footprint} bits, "
                f"lane has {lane_size}"
            )
        write_profiles[key] = program.write_profile(
            lane_size, include_presets=architecture.presets_output
        )
        if track_reads:
            read_profiles[key] = program.read_profile(lane_size)

    def accumulate(
        count: int,
        epoch_start: int,
        epoch_length: int,
        weight_scale: "np.ndarray | float",
    ) -> None:
        """One GEMM covering ``count`` epochs scaled by ``weight_scale``."""
        within_maps, between_maps = make_epoch_maps(
            config.within,
            config.between,
            lane_size,
            lane_count,
            count,
            epoch_start=epoch_start,
        )
        rows = np.arange(count)[:, None]
        for key in groups:
            lanes = lane_arrays[key]
            if config.hardware:
                chunk_lengths = np.full(count, epoch_length, dtype=np.int64)
                profile_writes, profile_reads = remappers[key].profile_many(
                    chunk_lengths, within_maps
                )
                # Remapper profiles carry the epoch length already; the
                # lane weight carries only the period multiplicity.
                weight_values: "np.ndarray | float" = weight_scale
            else:
                profile_writes = pool.get(
                    "fastforward.profile_writes", (count, lane_size)
                )
                profile_writes[rows, within_maps] = write_profiles[key]
                if track_reads:
                    profile_reads = pool.get(
                        "fastforward.profile_reads", (count, lane_size)
                    )
                    profile_reads[rows, within_maps] = read_profiles[key]
                weight_values = np.multiply(weight_scale, float(epoch_length))
            lane_weights = pool.get(
                "fastforward.lane_weights", (count, lane_count), zero=True
            )
            lane_weights[rows, between_maps[:, lanes]] = weight_values
            state.add_lane_profiles(
                profile_writes, lane_weights, orientation, "write"
            )
            if track_reads:
                state.add_lane_profiles(
                    profile_reads, lane_weights, orientation, "read"
                )

    tele = get_telemetry()
    with tele.timed_phase("fastforward", period=period):
        if block:
            accumulate(
                block,
                epoch_start=0,
                epoch_length=interval,
                weight_scale=multiplicity.astype(np.float64)[:, None],
            )
        if remainder:
            accumulate(
                1,
                epoch_start=full_epochs,
                epoch_length=remainder,
                weight_scale=1.0,
            )
    tele.count("fastforward.runs")
    tele.gauge("fastforward.period", period)
    materialized = block + (1 if remainder else 0)
    tele.count("fastforward.epochs_collapsed", total_epochs - materialized)
    return total_epochs
