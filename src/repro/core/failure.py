"""Progressive failure: from first dead cell to an unusable array.

The paper's lifetime model (Eq. 4) declares the array dead at its *first*
cell failure, "because at this point the array can produce incorrect
results" (Section 4), and Section 3.3 shows why: one dead cell removes its
offset from every lane. But Section 3.3 also sketches mitigations, and a
natural software one is *fault-aware repacking* — since software already
maintains a logical-to-physical bit map (Fig. 7), it can simply exclude
offsets with failed cells from the map, shrinking the workspace instead of
dying. The array then survives until the usable offsets no longer fit the
workload's minimum footprint.

With a fixed per-iteration wear pattern, the whole timeline has a closed
form: each cell's failure time is ``budget / rate``; an offset dies at the
minimum over its lanes; and the array (with repacking) dies when the
number of surviving offsets drops below the required footprint — an order
statistic of the offset death times. Per-cell endurance variation (the
lognormal model) is what staggers failures and makes repacking valuable:
with perfectly uniform endurance and a perfectly balanced wear pattern,
every cell dies at once and repacking buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.array.geometry import Orientation
from repro.core.simulator import SimulationResult
from repro.devices.endurance import EnduranceModel, UniformEndurance


def cell_failure_times(
    rate_matrix: np.ndarray, budgets: np.ndarray
) -> np.ndarray:
    """Per-cell failure time, in iterations, under a fixed wear rate.

    Cells that receive no writes never fail (``inf``).

    Args:
        rate_matrix: Per-cell writes per iteration.
        budgets: Per-cell endurance budgets (same shape).
    """
    rates = np.asarray(rate_matrix, dtype=float)
    budgets = np.asarray(budgets, dtype=float)
    if rates.shape != budgets.shape:
        raise ValueError(
            f"rates shape {rates.shape} != budgets shape {budgets.shape}"
        )
    if np.any(rates < 0):
        raise ValueError("write rates cannot be negative")
    times = np.full(rates.shape, np.inf)
    active = rates > 0
    times[active] = budgets[active] / rates[active]
    return times


def offset_death_times(
    failure_times: np.ndarray, orientation: Orientation
) -> np.ndarray:
    """When each lane offset becomes unusable for all-lane computation.

    An offset dies at the *first* failure among the cells at that offset
    across all lanes (Fig. 11a).
    """
    if orientation is Orientation.COLUMN_PARALLEL:
        return failure_times.min(axis=1)  # offsets are rows
    return failure_times.min(axis=0)


@dataclass(frozen=True)
class FailureTimeline:
    """The progressive-failure summary of one wear pattern.

    Attributes:
        first_failure_iterations: Eq. 4's horizon — the first cell death.
        unusable_iterations: Horizon with fault-aware repacking — when the
            surviving offsets no longer fit ``required_offsets``.
        required_offsets: Minimum lane bits the workload needs.
        total_offsets: Lane size.
        extension_factor: ``unusable / first_failure``.
    """

    first_failure_iterations: float
    unusable_iterations: float
    required_offsets: int
    total_offsets: int

    @property
    def extension_factor(self) -> float:
        """Lifetime multiplier bought by repacking around dead offsets."""
        if self.first_failure_iterations == 0:
            return float("inf")
        return self.unusable_iterations / self.first_failure_iterations

    def usable_offsets_at(
        self, iterations: float, offset_deaths: np.ndarray
    ) -> int:
        """Surviving offsets after ``iterations`` (given the death times)."""
        return int(np.count_nonzero(offset_deaths > iterations))


def failure_timeline(
    result: SimulationResult,
    required_offsets: int,
    endurance_model: Optional[EnduranceModel] = None,
) -> FailureTimeline:
    """Compute the progressive-failure timeline for a simulation's wear.

    The simulation's accumulated write counts give the long-run per-cell
    wear *rate*; the endurance model supplies per-cell budgets. The rate is
    held fixed past the first failures (a documented approximation: as
    offsets die, repacking concentrates the same work on fewer cells, so
    the true timeline is somewhat shorter — this is the optimistic bound).

    Args:
        result: A completed simulation (its config determines how level the
            wear is, and hence how staggered the failures are).
        required_offsets: Minimum usable lane bits for the workload to keep
            running (its compact footprint).
        endurance_model: Budget model; defaults to the architecture
            technology's uniform endurance.

    Raises:
        ValueError: if the workload cannot fit the lane even when healthy.
    """
    architecture = result.architecture
    lane_size = architecture.lane_size
    if not 0 < required_offsets <= lane_size:
        raise ValueError(
            f"required_offsets must be in (0, {lane_size}], "
            f"got {required_offsets}"
        )
    if endurance_model is None:
        endurance_model = UniformEndurance(
            architecture.technology.endurance_writes
        )
    rates = result.state.write_counts / result.iterations
    budgets = endurance_model.sample_budgets(rates.shape)
    times = cell_failure_times(rates, budgets)
    first = float(times.min())

    deaths = offset_death_times(times, architecture.orientation)
    # With repacking, the array survives while at least `required_offsets`
    # offsets are alive: it dies at the k-th offset death, where
    # k = total - required + 1.
    k = lane_size - required_offsets + 1
    order = np.sort(deaths)
    unusable = float(order[k - 1])
    return FailureTimeline(
        first_failure_iterations=first,
        unusable_iterations=unusable,
        required_offsets=required_offsets,
        total_offsets=lane_size,
    )


def minimum_footprint(workload, architecture) -> int:
    """The compact (lowest-first) footprint of a workload's largest lane
    program — the fewest usable offsets that keep it runnable.

    Built with the compact allocation policy regardless of the workload's
    configured policy, since repacking would naturally compact the layout.
    """
    import copy

    from repro.synth.bits import AllocationPolicy

    compact = copy.copy(workload)
    compact.allocation_policy = AllocationPolicy.LOWEST_FIRST
    mapping = compact.build(architecture)
    return max(
        program.footprint for program in mapping.distinct_programs()
    )
