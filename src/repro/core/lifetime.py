"""The lifetime model: Equations 1, 2 and 4, and improvement factors.

Equation 4 (Section 4)::

    Lifetime = Cell Endurance / max(WriteCount) * Application Latency

where ``max(WriteCount)`` is per iteration and the application latency is
the per-iteration latency — "we use write distributions to estimate the
lifetime of the PIM array by finding when the first memory cell fails. We
consider this as the failure of the entire array."

Equations 1 and 2 (Section 3.1) are upper bounds that ignore imbalance:
the total array write budget divided by writes per operation (Eq. 1), and
by the full-utilization write rate (Eq. 2, "35.56 days" for MTJ at 1e12;
"just over 5 minutes" at RRAM's 1e8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.array.geometry import ArrayGeometry
from repro.core.simulator import SimulationResult
from repro.devices.endurance import EnduranceModel, UniformEndurance
from repro.devices.technology import Technology

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class LifetimeEstimate:
    """First-cell-failure lifetime of a PIM array under a workload.

    Attributes:
        iterations_to_failure: Workload repetitions until the hottest cell
            exhausts its endurance.
        seconds_to_failure: The same horizon in wall-clock time.
        max_writes_per_iteration: The Eq. 4 denominator.
        endurance_writes: Cell endurance assumed.
    """

    iterations_to_failure: float
    seconds_to_failure: float
    max_writes_per_iteration: float
    endurance_writes: float

    @property
    def days_to_failure(self) -> float:
        """Lifetime in days (the paper's headline unit)."""
        return self.seconds_to_failure / _SECONDS_PER_DAY

    @property
    def years_to_failure(self) -> float:
        """Lifetime in years."""
        return self.days_to_failure / 365.0


def lifetime_from_result(
    result: SimulationResult,
    technology: Optional[Technology] = None,
    endurance_model: Optional[EnduranceModel] = None,
) -> LifetimeEstimate:
    """Apply Eq. 4 to a simulation result.

    Args:
        result: A completed simulation.
        technology: Overrides the architecture's technology (e.g. to ask
            "what if this were RRAM?").
        endurance_model: Overrides the uniform-endurance assumption, e.g.
            with :class:`~repro.devices.endurance.LognormalEndurance`; the
            model sees the full per-iteration write matrix, so cell-to-cell
            endurance variation interacts with the wear pattern.
    """
    tech = technology or result.architecture.technology
    per_iteration = result.state.write_counts / result.iterations
    if endurance_model is None:
        endurance_model = UniformEndurance(tech.endurance_writes)
    iterations = endurance_model.iterations_to_first_failure(per_iteration)
    latency = result.iteration_latency_s
    return LifetimeEstimate(
        iterations_to_failure=iterations,
        seconds_to_failure=iterations * latency,
        max_writes_per_iteration=result.max_writes_per_iteration,
        endurance_writes=tech.endurance_writes,
    )


def lifetime_improvement(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Lifetime ratio versus a baseline "in terms of number of operations
    before failure" (Fig. 17's y-axis; baseline = St x St)."""
    if result.workload_name != baseline.workload_name:
        raise ValueError(
            "improvement must compare runs of the same workload, got "
            f"{result.workload_name!r} vs {baseline.workload_name!r}"
        )
    ours = result.max_writes_per_iteration
    theirs = baseline.max_writes_per_iteration
    if ours == 0:
        return float("inf")
    return theirs / ours


def lifetime_with_read_wear(
    result: SimulationResult,
    read_wear_ratio: float,
    technology: Optional[Technology] = None,
) -> LifetimeEstimate:
    """Eq. 4 with read disturb folded in as fractional wear.

    The paper counts only writes against endurance, but PIM reads outnumber
    writes ~2:1 (two-input gates), and several NVM technologies exhibit
    read disturb. Modelling a read as ``read_wear_ratio`` of a write's wear
    (typical estimates are 1e-3 to 1e-6), the effective per-cell wear rate
    becomes ``writes + ratio * reads``. Requires the simulation to have
    tracked reads.

    Args:
        result: A completed simulation with ``track_reads=True``.
        read_wear_ratio: Wear of one read relative to one write.
        technology: Optional technology override.
    """
    if read_wear_ratio < 0:
        raise ValueError("read_wear_ratio must be non-negative")
    if result.state.total_reads == 0 and read_wear_ratio > 0:
        raise ValueError(
            "simulation did not track reads; re-run with track_reads=True"
        )
    tech = technology or result.architecture.technology
    effective = (
        result.state.write_counts
        + read_wear_ratio * result.state.read_counts
    ) / result.iterations
    peak = float(effective.max())
    if peak == 0:
        iterations = float("inf")
    else:
        iterations = tech.endurance_writes / peak
    latency = result.iteration_latency_s
    return LifetimeEstimate(
        iterations_to_failure=iterations,
        seconds_to_failure=iterations * latency,
        max_writes_per_iteration=peak,
        endurance_writes=tech.endurance_writes,
    )


# ----------------------------------------------------------------------
# Analytic upper bounds (Section 3.1)
# ----------------------------------------------------------------------


def array_write_budget(geometry: ArrayGeometry, endurance_writes: float) -> float:
    """Total writes an array can absorb with perfect balance: ``N^2 * E``."""
    if endurance_writes <= 0:
        raise ValueError("endurance_writes must be positive")
    return geometry.n_cells * endurance_writes


def eq1_operations_until_total_failure(
    geometry: ArrayGeometry, endurance_writes: float, writes_per_operation: float
) -> float:
    """Eq. 1: operations before total break-down under perfect balance.

    For a 1024 x 1024 array at 1e12 endurance and 9,824 writes per 32-bit
    multiplication: 1.07e14 multiplications.
    """
    if writes_per_operation <= 0:
        raise ValueError("writes_per_operation must be positive")
    return array_write_budget(geometry, endurance_writes) / writes_per_operation


def eq2_seconds_until_total_failure(
    geometry: ArrayGeometry,
    endurance_writes: float,
    active_lanes: int,
    op_latency_s: float = 3e-9,
) -> float:
    """Eq. 2: time until every cell breaks down at full utilization.

    Each active lane writes one cell per gate slot, so the array consumes
    ``active_lanes / op_latency`` writes per second. At 1024 lanes, 3 ns
    and 1e12 endurance this is 3,072,000 s = 35.56 days; at RRAM's 1e8 it
    is 307 s — "just over 5 minutes".
    """
    if active_lanes <= 0:
        raise ValueError("active_lanes must be positive")
    if op_latency_s <= 0:
        raise ValueError("op_latency_s must be positive")
    writes_per_second = active_lanes / op_latency_s
    return array_write_budget(geometry, endurance_writes) / writes_per_second
