"""Plain-text renderings of the paper's tables and figures.

Every artifact in the evaluation has a ``format_*`` function here; the
benchmark harness and the CLI print these, and EXPERIMENTS.md records
their output against the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.balance.access_aware import table2_rows
from repro.core.sweep import GridEntry
from repro.core.writedist import WriteDistribution


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------


def format_table2(precisions: Sequence[int] = (4, 8, 16, 32, 64)) -> str:
    """The paper's Table 2: access-aware shuffle overhead by precision."""
    rows = [
        (bits, f"{mult:.2f}", f"{add:.2f}")
        for bits, mult, add in table2_rows(precisions)
    ]
    return format_table(
        ["Bit Precision", "Multiplication (DADDA) Overhead (%)",
         "Addition (Ripple Carry) Overhead (%)"],
        rows,
        title="Table 2: extra COPY gates for memory-access-aware shuffling",
    )


# ----------------------------------------------------------------------
# Fig. 17 / Table 3
# ----------------------------------------------------------------------


def format_fig17(entries: Sequence[GridEntry], workload_name: str) -> str:
    """Fig. 17: lifetime improvement per balance configuration."""
    peak = max(entry.improvement for entry in entries)
    rows = []
    for entry in entries:
        bar = "#" * max(1, int(round(entry.improvement / peak * 40)))
        rows.append(
            (entry.label, f"{entry.improvement:.3f}x", bar)
        )
    return format_table(
        ["Config", "Lifetime improvement", ""],
        rows,
        title=f"Fig. 17 ({workload_name}): lifetime vs St x St",
    )


def format_table3(
    summaries: Sequence[Tuple[str, float, float]],
) -> str:
    """Table 3 rows: (benchmark, avg lane utilization, best improvement)."""
    rows = [
        (name, f"{utilization:.2%}", f"{improvement:.2f}x")
        for name, utilization, improvement in summaries
    ]
    return format_table(
        ["Benchmark", "Avg Lane Utilization", "Lifetime Improvement"],
        rows,
        title="Table 3: lifetime improvement under continuous operation",
    )


# ----------------------------------------------------------------------
# Figures 5 / 11 / 14-16
# ----------------------------------------------------------------------


def format_fig5(
    write_profile: np.ndarray,
    read_profile: np.ndarray,
    used_bits: int,
    bars: int = 24,
) -> str:
    """Fig. 5: per-cell read/write counts within a lane (one iteration).

    Profiles are truncated to the program footprint and bucketed for
    display; the punchline is the workspace-versus-input imbalance.
    """
    writes = np.asarray(write_profile[:used_bits], dtype=float)
    reads = np.asarray(read_profile[:used_bits], dtype=float)
    bucket = max(1, used_bits // bars)
    rows = []
    for start in range(0, used_bits, bucket):
        sl = slice(start, min(start + bucket, used_bits))
        rows.append(
            (
                f"bits {sl.start}-{sl.stop - 1}",
                f"{writes[sl].mean():.2f}",
                f"{reads[sl].mean():.2f}",
                "#" * int(round(writes[sl].mean())),
            )
        )
    return format_table(
        ["Lane cells", "Writes/cell", "Reads/cell", ""],
        rows,
        title=(
            "Fig. 5: per-cell writes/reads in one lane for one "
            "multiplication (workspace cells dominate)"
        ),
    )


def format_fig11b(
    failed_fractions: Sequence[float],
    usable_fractions: Sequence[float],
    analytic: Sequence[float],
) -> str:
    """Fig. 11b: usable lane bits versus failed cells in the array."""
    rows = [
        (f"{p:.4%}", f"{u:.2%}", f"{a:.2%}")
        for p, u, a in zip(failed_fractions, usable_fractions, analytic)
    ]
    return format_table(
        ["Cells failed", "Lane bits usable (MC)", "Analytic (1-p)^lanes"],
        rows,
        title="Fig. 11b: usable bits per lane vs failed cells",
    )


def format_heatmap_grid(
    distributions: Sequence[WriteDistribution],
    blocks: Tuple[int, int] = (16, 48),
) -> str:
    """Figs. 14-16: one ASCII heatmap per balance configuration."""
    sections = [dist.ascii_heatmap(blocks) for dist in distributions]
    return "\n\n".join(sections)


def format_heatmap_stats(distributions: Sequence[WriteDistribution]) -> str:
    """Compact statistics table over a set of write distributions."""
    rows = [
        (
            dist.label,
            f"{dist.max_per_iteration:.3f}",
            f"{dist.balance:.3f}",
            f"{dist.gini:.3f}",
            f"{dist.cell_utilization:.1%}",
        )
        for dist in distributions
    ]
    return format_table(
        ["Config", "Max writes/iter", "Balance", "Gini", "Cells used"],
        rows,
        title="Write-distribution statistics (1.0 balance = perfectly level)",
    )


def format_remap_frequency(improvements: Dict[int, float]) -> str:
    """Section 5's recompile-interval sweep."""
    rows = [
        (interval, f"{improvements[interval]:.4f}x")
        for interval in sorted(improvements, reverse=True)
    ]
    return format_table(
        ["Recompile every N iterations", "Lifetime improvement"],
        rows,
        title="Recompile-frequency sweep (saturates near every 50 iterations)",
    )


def format_full_report(result, technologies=None) -> str:
    """A one-call, multi-section report for a simulation result.

    Sections: run header, write-distribution statistics, ASCII heatmap,
    Eq. 4 lifetime, and (optionally) a technology sweep. Accepts a
    :class:`~repro.core.simulator.SimulationResult` or a loaded result
    from :mod:`repro.core.io`.

    Args:
        result: The simulation (or loaded) result.
        technologies: Optional list of
            :class:`~repro.devices.technology.Technology` to sweep.
    """
    from repro.core.lifetime import lifetime_from_result
    from repro.core.sweep import technology_sweep

    dist = result.write_distribution
    estimate = lifetime_from_result(result)
    geometry = result.architecture.geometry
    sections = [
        f"=== {result.workload_name} under {result.config.label} ===",
        (
            f"array {geometry.rows}x{geometry.cols} "
            f"({result.architecture.name}, "
            f"{result.architecture.technology.name}); "
            f"{result.iterations} iterations, {result.epochs} epoch(s)"
        ),
        "",
        dist.summary(),
        "",
        dist.ascii_heatmap(blocks=_heatmap_blocks(geometry)),
        "",
        (
            f"Eq. 4 lifetime: {estimate.iterations_to_failure:.3e} "
            f"iterations = {estimate.days_to_failure:.2f} days "
            f"({estimate.years_to_failure:.3f} years) at "
            f"{estimate.max_writes_per_iteration:.2f} peak writes/iteration"
        ),
    ]
    if technologies:
        sections.append("")
        sections.append(
            format_lifetimes(technology_sweep(result, technologies))
        )
    return "\n".join(sections)


def _heatmap_blocks(geometry) -> Tuple[int, int]:
    """Largest renderable block grid dividing the geometry, up to 16x64."""

    def best(dimension: int, cap: int) -> int:
        for candidate in range(min(cap, dimension), 0, -1):
            if dimension % candidate == 0:
                return candidate
        return 1

    return best(geometry.rows, 16), best(geometry.cols, 64)


def format_lifetimes(
    estimates: Dict[str, "object"],
) -> str:
    """Technology-sweep lifetimes (Section 3.1 contrast)."""
    rows = []
    for name, est in estimates.items():
        rows.append(
            (
                name,
                f"{est.endurance_writes:.1e}",
                f"{est.iterations_to_failure:.3e}",
                f"{est.days_to_failure:.4g}",
            )
        )
    return format_table(
        ["Technology", "Endurance", "Iterations to failure", "Days"],
        rows,
        title="Lifetime by memory technology",
    )
