"""The endurance simulator: workload x balance config x iterations -> wear.

Reproduces the paper's methodology (Section 4): "Due to temporally
fine-grained hardware based re-mapping, each repetition (iteration) of a
benchmark can have a different write distribution. Hence, it is necessary
to fully simulate a large number of iterations. We simulate each benchmark
100,000 times to obtain an estimate of the overall write distribution over
time."

The simulation is exact, not sampled: between software recompiles the
logical wear profile is constant, so an epoch's contribution is an outer
product (``repro.array.executor.accumulate_assignment``); hardware
re-mapping within an epoch is resolved in closed form by the permutation-
cycle algebra (``repro.balance.hardware``). Both paths are property-tested
against naive instruction-by-instruction replay.

Epoch semantics: software strategies re-map at recompile boundaries (every
``recompile_interval`` iterations); recompilation reinstalls the full
logical-to-physical mapping, so hardware re-mapping state restarts from
the new software mapping. Configurations without any software re-mapping
(``St x St``) never recompile and run as one continuous epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.array.architecture import PIMArchitecture
from repro.array.executor import accumulate_assignment
from repro.array.state import ArrayState
from repro.balance.config import BalanceConfig
from repro.balance.hardware import HardwareRemapper
from repro.balance.software import StrategyKind, wear_aware_permutation
from repro.core.backend import get_backend
from repro.core.fastforward import run_fastforward_epochs
from repro.core.kernel import make_epoch_maps, run_batched_epochs
from repro.core.settings import SimulationSettings
from repro.core.writedist import WriteDistribution
from repro.telemetry import get_telemetry
from repro.verify import (
    VerificationError,
    VerifyReport,
    check_fastforward,
    verify_mapping,
)
from repro.workloads.base import Workload, WorkloadMapping


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        workload_name: Benchmark label.
        config: The balance configuration simulated.
        architecture: Target architecture.
        iterations: Iterations simulated.
        state: Accumulated per-cell counters.
        mapping: The workload mapping (schedule, utilization, programs).
    """

    workload_name: str
    config: BalanceConfig
    architecture: PIMArchitecture
    iterations: int
    state: ArrayState
    mapping: WorkloadMapping
    epochs: int = field(default=1)

    @property
    def write_distribution(self) -> WriteDistribution:
        """The accumulated write distribution."""
        return WriteDistribution(
            self.state.write_counts,
            self.iterations,
            self.architecture.orientation,
            label=f"{self.workload_name} {self.config.label}",
        )

    @property
    def read_distribution(self) -> WriteDistribution:
        """The accumulated read distribution (same machinery)."""
        return WriteDistribution(
            self.state.read_counts,
            self.iterations,
            self.architecture.orientation,
            label=f"{self.workload_name} {self.config.label} (reads)",
        )

    @property
    def max_writes_per_iteration(self) -> float:
        """Hottest cell's write rate — the paper's Eq. 4 denominator."""
        return self.state.max_writes / self.iterations

    @property
    def iteration_latency_s(self) -> float:
        """One iteration's latency (3 ns per sequential op, Section 4)."""
        return self.mapping.iteration_latency_s

    @property
    def lane_utilization(self) -> float:
        """Average lane utilization (Table 3), from the mapping's schedule.

        Exposed directly so results restored from disk (which carry no
        mapping object) present the same surface.
        """
        return self.mapping.lane_utilization


class EnduranceSimulator:
    """Drives workloads through balance configurations on one architecture.

    Args:
        architecture: The PIM array design under test.
        settings: The unified knob set (:class:`SimulationSettings`) —
            seed, kernel, chunk size, read tracking, telemetry options.
        seed: Deprecated alias for ``settings.seed`` (warns once).
        kernel: Deprecated alias for ``settings.kernel`` — ``"batched"``
            (chunked GEMM accumulation, :mod:`repro.core.kernel`) or
            ``"epoch"`` (the per-epoch loop); bit-identical, the epoch
            loop is kept as the property-test oracle.
        chunk_size: Deprecated alias for ``settings.chunk_size``
            (epochs per GEMM; affects memory and speed only).
    """

    def __init__(
        self,
        architecture: PIMArchitecture,
        settings: Optional[SimulationSettings] = None,
        seed: Optional[int] = None,
        kernel: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        base = settings if settings is not None else SimulationSettings()
        self.settings = base.merge_legacy(
            "EnduranceSimulator()",
            seed=seed,
            kernel=kernel,
            chunk_size=chunk_size,
        )
        self.architecture = architecture
        self._mapping_cache: Dict[str, WorkloadMapping] = {}
        self._verified: set = set()

    # -- settings convenience views ------------------------------------

    @property
    def seed(self) -> int:
        """The settings' base RNG seed."""
        return self.settings.seed

    @property
    def kernel(self) -> str:
        """The settings' default execution path."""
        return self.settings.kernel

    @property
    def chunk_size(self) -> "int | None":
        """The settings' batched-kernel epochs-per-GEMM."""
        return self.settings.chunk_size

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        config: BalanceConfig,
        iterations: int = 100_000,
        track_reads: Optional[bool] = None,
        kernel: Optional[str] = None,
        chunk_size: Optional[int] = None,
        settings: Optional[SimulationSettings] = None,
    ) -> SimulationResult:
        """Simulate ``iterations`` repetitions under ``config``.

        Args:
            workload: The benchmark kernel.
            config: Load-balancing configuration.
            iterations: Repetitions ("as soon as it computes the final
                results a new set of inputs is loaded and the process
                repeats", Section 4).
            track_reads: Deprecated alias for ``settings.track_reads``
                (disable to halve the accumulation cost of large sweeps).
            kernel: Deprecated alias for ``settings.kernel``.
            chunk_size: Deprecated alias for ``settings.chunk_size``.
            settings: Per-call settings override; defaults to the
                simulator's own :class:`SimulationSettings`.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if config.within is StrategyKind.WEAR_AWARE:
            raise ValueError(
                "wear-aware mapping applies between lanes only (within-lane "
                "roles are identical across a lane, so there is no load "
                "signal to sort by)"
            )
        effective = settings if settings is not None else self.settings
        effective = effective.merge_legacy(
            "EnduranceSimulator.run()",
            kernel=kernel,
            chunk_size=chunk_size,
            track_reads=track_reads,
        )
        tele = get_telemetry()
        start = time.perf_counter()
        mapping = self._mapping_for(workload)
        self._verify(mapping, config)
        if effective.fastforward:
            # Refuse, never approximate: non-periodic configs (Ra, Wa)
            # have no steady state to extrapolate (diagnostic RPR011).
            report = VerifyReport(check_fastforward(config))
            if report.errors:
                raise VerificationError(report)
        architecture = self.architecture
        backend = get_backend(effective.backend)
        state = ArrayState(architecture.geometry)
        state.set_backend(backend)
        rng = np.random.default_rng(effective.seed)

        remappers: Dict[int, HardwareRemapper] = {}
        groups = self._groups(mapping)
        if config.hardware:
            for key, (program, _) in groups.items():
                remappers[key] = HardwareRemapper(
                    program, architecture.lane_size, architecture.presets_output
                )

        lane_loads = (
            self._lane_loads(mapping)
            if config.between is StrategyKind.WEAR_AWARE
            else None
        )
        with tele.timed_phase("kernel", kernel=effective.kernel):
            if effective.fastforward:
                epochs = run_fastforward_epochs(
                    architecture,
                    config,
                    state,
                    groups,
                    iterations,
                    remappers=remappers if config.hardware else None,
                    track_reads=effective.track_reads,
                    backend=backend,
                )
            elif effective.kernel == "batched":
                epochs = run_batched_epochs(
                    architecture,
                    config,
                    state,
                    rng,
                    groups,
                    iterations,
                    remappers=remappers if config.hardware else None,
                    lane_loads=lane_loads,
                    track_reads=effective.track_reads,
                    chunk_size=effective.chunk_size,
                    backend=backend,
                )
            else:
                epochs = self._run_epoch_loop(
                    mapping,
                    config,
                    state,
                    rng,
                    groups,
                    remappers,
                    lane_loads,
                    iterations,
                    effective.track_reads,
                )

        elapsed = time.perf_counter() - start
        tele.count("sim.runs")
        tele.count("sim.iterations", iterations)
        tele.count("sim.epochs", epochs)
        tele.gauge("sim.epochs_per_s", epochs / elapsed if elapsed > 0 else 0.0)
        if tele.enabled:
            # Full-array reductions are only worth paying for when the
            # event is actually going somewhere.
            tele.emit(
                "simulation",
                workload=mapping.workload_name,
                config=config.label,
                iterations=iterations,
                epochs=epochs,
                kernel=effective.kernel,
                seed=effective.seed,
                seconds=round(elapsed, 6),
                epochs_per_s=round(epochs / elapsed, 2) if elapsed > 0 else 0.0,
                writes=float(state.write_counts.sum()),
                reads=float(state.read_counts.sum()),
            )
        return SimulationResult(
            workload_name=mapping.workload_name,
            config=config,
            architecture=architecture,
            iterations=iterations,
            state=state,
            mapping=mapping,
            epochs=epochs,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_epoch_loop(
        self,
        mapping: WorkloadMapping,
        config: BalanceConfig,
        state: ArrayState,
        rng: np.random.Generator,
        groups: Dict[int, Tuple[object, List[int]]],
        remappers: Dict[int, HardwareRemapper],
        lane_loads: "np.ndarray | None",
        iterations: int,
        track_reads: bool,
    ) -> int:
        """The sequential per-epoch path — the batched kernel's oracle.

        Permutations come from :func:`make_epoch_maps` one epoch at a
        time, which consumes the random stream exactly as the batched
        kernel's chunked draws do, so both paths are bit-identical.
        """
        architecture = self.architecture
        lane_size = architecture.lane_size
        lane_count = architecture.lane_count
        orientation = architecture.orientation
        epochs = 0
        for epoch, length in self._epochs(config, iterations):
            epochs += 1
            within_maps, between_maps = make_epoch_maps(
                config.within,
                config.between,
                lane_size,
                lane_count,
                1,
                rng,
                epoch_start=epoch,
            )
            within = within_maps[0]
            if between_maps is None:  # wear-aware: resolved against state
                wear = state.lane_view(state.write_counts, orientation).sum(
                    axis=0
                )
                between = wear_aware_permutation(lane_loads, wear)
            else:
                between = between_maps[0]
            if config.hardware:
                self._accumulate_hardware_epoch(
                    state,
                    groups,
                    remappers,
                    within,
                    between,
                    length,
                    track_reads,
                )
            else:
                accumulate_assignment(
                    architecture,
                    mapping.assignment,
                    state,
                    within_map=within,
                    between_map=between,
                    repetitions=float(length),
                    track_reads=track_reads,
                )
        return epochs

    def _verify(self, mapping: WorkloadMapping, config: BalanceConfig) -> None:
        """Statically check the mapping/config pair before simulating.

        Runs :func:`repro.verify.verify_mapping` in wear-only mode (value
        semantics are warnings — a wear simulation never executes gate
        values) and rejects the run on any error. Memoized per
        (mapping, config-label) pair, so repeated runs pay nothing.

        Raises:
            VerificationError: if the static checks report errors.
        """
        key = (id(mapping), config.label)
        if key in self._verified:
            return
        with get_telemetry().timed_phase(
            "verify", workload=mapping.workload_name
        ):
            report = verify_mapping(mapping, config, functional=False)
        if report.errors:
            raise VerificationError(report)
        self._verified.add(key)

    def _mapping_for(self, workload: Workload) -> WorkloadMapping:
        # Keyed by the full parameter signature, not the display name: two
        # instances may share a name yet build different mappings.
        key = workload.signature
        cached = self._mapping_cache.get(key)
        if cached is None or cached.architecture is not self.architecture:
            with get_telemetry().timed_phase(
                "mapping_compile", workload=workload.name
            ):
                cached = workload.build(self.architecture)
            self._mapping_cache[key] = cached
        return cached

    def _lane_loads(self, mapping: WorkloadMapping) -> np.ndarray:
        """Per-logical-lane writes per iteration (the Wa sorting signal)."""
        lane_count = self.architecture.lane_count
        include = self.architecture.presets_output
        loads = np.zeros(lane_count)
        for lane, program in mapping.assignment.items():
            loads[lane] = program.write_counts(include_presets=include).sum()
        return loads

    @staticmethod
    def _groups(mapping: WorkloadMapping) -> Dict[int, Tuple[object, List[int]]]:
        """Lanes grouped by canonical program object."""
        groups: Dict[int, Tuple[object, List[int]]] = {}
        for lane, program in mapping.assignment.items():
            entry = groups.setdefault(id(program), (program, []))
            entry[1].append(lane)
        return groups

    @staticmethod
    def _epochs(config: BalanceConfig, iterations: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(epoch_index, epoch_length)`` pairs covering the run."""
        if not config.needs_recompilation:
            yield 0, iterations
            return
        interval = config.recompile_interval
        full, remainder = divmod(iterations, interval)
        for epoch in range(full):
            yield epoch, interval
        if remainder:
            yield full, remainder

    def _accumulate_hardware_epoch(
        self,
        state: ArrayState,
        groups: Dict[int, Tuple[object, List[int]]],
        remappers: Dict[int, HardwareRemapper],
        within: np.ndarray,
        between: np.ndarray,
        length: int,
        track_reads: bool,
    ) -> None:
        orientation = self.architecture.orientation
        lane_count = self.architecture.lane_count
        for key, (program, lanes) in groups.items():
            writes, reads = remappers[key].profile(length, within)
            lane_weights = np.zeros(lane_count)
            np.add.at(lane_weights, between[np.asarray(lanes)], 1.0)
            state.add_lane_profile(writes, lane_weights, orientation, "write")
            if track_reads:
                state.add_lane_profile(reads, lane_weights, orientation, "read")
