"""Multi-array clusters: workloads that outgrow one PIM array.

Section 4: "PIM arrays can process data independently. As necessary,
standard memory read and write operations can handle data transfers
between PIM arrays. Our analysis focuses on computations that can be
performed within a single array" — this module covers the other case. A
dot-product longer than the lane count is partitioned: each array reduces
its slice to a partial sum, and one *aggregator* array receives the other
arrays' partials and finishes the sum. The aggregator does strictly more
work, so at cluster scale the endurance story repeats one level up:
the aggregator array dies first, and rotating the aggregator role across
arrays (software round-robin, the between-array analogue of the paper's
between-lane balancing) levels the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.array.architecture import PIMArchitecture
from repro.balance.config import BalanceConfig
from repro.core.lifetime import LifetimeEstimate, lifetime_from_result
from repro.core.simulator import EnduranceSimulator, SimulationResult
from repro.workloads.base import Phase, Workload, WorkloadMapping
from repro.workloads.dotproduct import DotProduct


class _ArraySliceWorkload(Workload):
    """One array's share of a partitioned dot-product.

    Arrays ``1..k-1`` reduce their slice and ship the partial sum out;
    array 0 (the aggregator) additionally receives ``k - 1`` partials and
    performs the final additions. Both are expressed by extending the
    dot-product role programs with extra receive rounds.
    """

    def __init__(
        self, base: DotProduct, extra_receives: int, is_aggregator: bool
    ) -> None:
        self._base = base
        self.extra_receives = extra_receives
        self.is_aggregator = is_aggregator
        role = "aggregator" if is_aggregator else "slice"
        self.name = f"{base.name}-{role}"

    def build(self, architecture: PIMArchitecture) -> WorkloadMapping:
        """Map this array's slice (the base mapping with lane 0's root
        role extended by the inter-array receive/send rounds)."""
        base_mapping = self._base.build(architecture)
        library = architecture.library
        capacity = architecture.lane_size - 1
        if self._base.workspace_limit is not None:
            capacity = min(capacity, self._base.workspace_limit)
        receives = self._base.rounds + (
            self.extra_receives if self.is_aggregator else 0
        )
        root = self._base._build_role_program(
            library,
            capacity,
            receives,
            self.is_aggregator,  # non-aggregators send their final partial
            policy=self._base.allocation_policy,
            send_tag=None if self.is_aggregator else "to-aggregator",
        )
        assignment = dict(base_mapping.assignment)
        assignment[0] = root
        # The extended root does real work inside this array (receive
        # writes, final additions, partial-sum send), so the schedule
        # must carry it: lane 0 gets one extra serial phase covering
        # exactly the operations the role extension added. Only the
        # inter-array wire latency stays a cluster-level concern.
        slots = architecture.writes_per_gate

        def lane_ops(program) -> int:
            gates = program.gate_count
            return program.sequential_ops - gates + gates * slots

        extra = lane_ops(root) - lane_ops(base_mapping.assignment[0])
        phases = list(base_mapping.phases)
        if extra > 0:
            phases.append(Phase("inter-array", extra, 1))
        return WorkloadMapping(
            workload_name=self.name,
            architecture=architecture,
            assignment=assignment,
            phases=phases,
        )

    def describe(self) -> str:
        role = "aggregator" if self.is_aggregator else "slice"
        return f"{self._base.describe()} [{role} array]"


@dataclass
class ClusterResult:
    """Per-array wear and lifetimes for one partitioned run.

    Attributes:
        results: One simulation result per array (index 0 = aggregator in
            the fixed-role configuration).
        rotated: Whether the aggregator role was rotated round-robin.
    """

    results: List[SimulationResult]
    rotated: bool

    @property
    def n_arrays(self) -> int:
        """Arrays in the cluster."""
        return len(self.results)

    def lifetimes(self) -> List[LifetimeEstimate]:
        """Per-array Eq. 4 lifetime estimates."""
        return [lifetime_from_result(result) for result in self.results]

    @property
    def cluster_iterations_to_failure(self) -> float:
        """Iterations until the first array loses a cell (weakest link)."""
        return min(
            estimate.iterations_to_failure for estimate in self.lifetimes()
        )

    @property
    def wear_imbalance(self) -> float:
        """Hottest array's peak wear over the coldest array's peak wear."""
        peaks = [result.state.max_writes for result in self.results]
        coldest = min(peaks)
        if coldest == 0:
            return float("inf")
        return max(peaks) / coldest


class PartitionedDotProduct:
    """A dot-product spanning ``n_arrays`` PIM arrays.

    Each array reduces ``elements_per_array`` elements locally; the
    aggregator array receives the other partial sums and finishes.

    Args:
        elements_per_array: Local dot-product length per array (a power of
            two no larger than the lane count).
        n_arrays: Number of arrays (total elements = product of both).
        bits: Operand precision.
    """

    def __init__(
        self, elements_per_array: int = 1024, n_arrays: int = 4, bits: int = 32
    ) -> None:
        if n_arrays < 2:
            raise ValueError("a cluster needs at least 2 arrays")
        self.base = DotProduct(n_elements=elements_per_array, bits=bits)
        self.n_arrays = n_arrays
        self.bits = bits
        self.name = (
            f"dot-product-{elements_per_array * n_arrays}"
            f"x{bits}b-on-{n_arrays}-arrays"
        )

    def aggregator_workload(self) -> Workload:
        """The aggregator array's workload."""
        return _ArraySliceWorkload(
            self.base, self.n_arrays - 1, is_aggregator=True
        )

    def slice_workload(self) -> Workload:
        """A non-aggregator array's workload."""
        return _ArraySliceWorkload(self.base, 0, is_aggregator=False)

    def run(
        self,
        architecture: PIMArchitecture,
        config: BalanceConfig,
        iterations: int,
        rotate_aggregator: bool = False,
        seed: int = 0,
    ) -> ClusterResult:
        """Simulate the cluster's wear.

        With ``rotate_aggregator`` the aggregator role moves round-robin
        across arrays (each array aggregates ``1/n`` of the iterations),
        the between-*array* analogue of the paper's between-lane
        re-mapping. Iterations must then divide evenly by ``n_arrays``.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        aggregator = self.aggregator_workload()
        slice_workload = self.slice_workload()
        results: List[SimulationResult] = []
        if not rotate_aggregator:
            for index in range(self.n_arrays):
                simulator = EnduranceSimulator(architecture, seed=seed + index)
                workload = aggregator if index == 0 else slice_workload
                results.append(
                    simulator.run(
                        workload, config, iterations, track_reads=False
                    )
                )
            return ClusterResult(results=results, rotated=False)

        if iterations % self.n_arrays:
            raise ValueError(
                "rotating the aggregator needs iterations divisible by "
                f"{self.n_arrays}"
            )
        share = iterations // self.n_arrays
        for index in range(self.n_arrays):
            # Every array spends one share as aggregator and the rest as a
            # slice; wear accumulates in one state via two runs.
            simulator = EnduranceSimulator(architecture, seed=seed + index)
            as_aggregator = simulator.run(
                aggregator, config, share, track_reads=False
            )
            as_slice = simulator.run(
                slice_workload,
                config,
                iterations - share,
                track_reads=False,
            )
            as_aggregator.state.write_counts += as_slice.state.write_counts
            combined = SimulationResult(
                workload_name=self.name,
                config=config,
                architecture=architecture,
                iterations=iterations,
                state=as_aggregator.state,
                mapping=as_aggregator.mapping,
                epochs=as_aggregator.epochs + as_slice.epochs,
            )
            results.append(combined)
        return ClusterResult(results=results, rotated=True)
