"""System-level lifetime: duty cycles and array farms.

The paper's conclusion distinguishes deployment contexts: "architectures
for low-power, embedded applications ... typically have lower duty-cycles
(performing computations relatively infrequently) which result in longer
lifetimes", while for servers "the accelerator must be replaced once a
sufficient number of PIM arrays fail" (Section 4). This module scales the
single-array Eq. 4 estimate to both contexts:

* :func:`lifetime_at_duty_cycle` — wall-clock lifetime of an array that
  computes only a fraction of the time;
* :class:`ArrayFarm` — a population of arrays whose individual lifetimes
  vary (array-to-array endurance spread); exposes the replacement horizon
  "time until a fraction of arrays has failed".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lifetime import LifetimeEstimate

_SECONDS_PER_DAY = 86_400.0


def lifetime_at_duty_cycle(
    estimate: LifetimeEstimate, duty_cycle: float
) -> LifetimeEstimate:
    """Stretch a full-utilization lifetime to a duty-cycled deployment.

    An embedded accelerator active ``duty_cycle`` of the time consumes
    endurance that much more slowly: the iteration budget is unchanged,
    the wall-clock horizon divides by the duty cycle. A 31-day
    full-utilization lifetime becomes ~8.5 years at a 1% duty cycle —
    the paper's embedded-vs-server contrast, quantified.

    Args:
        estimate: A full-utilization Eq. 4 estimate.
        duty_cycle: Fraction of wall-clock time spent computing, in (0, 1].
    """
    if not 0 < duty_cycle <= 1:
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
    return LifetimeEstimate(
        iterations_to_failure=estimate.iterations_to_failure,
        seconds_to_failure=estimate.seconds_to_failure / duty_cycle,
        max_writes_per_iteration=estimate.max_writes_per_iteration,
        endurance_writes=estimate.endurance_writes,
    )


@dataclass(frozen=True)
class FarmLifetime:
    """Replacement-horizon summary for a population of arrays.

    Attributes:
        n_arrays: Population size.
        first_seconds: When the weakest array fails.
        median_seconds: When half the population has failed.
        horizon_seconds: When ``failure_fraction`` of arrays has failed —
            the accelerator-replacement point.
        failure_fraction: The replacement threshold used.
    """

    n_arrays: int
    first_seconds: float
    median_seconds: float
    horizon_seconds: float
    failure_fraction: float

    @property
    def horizon_days(self) -> float:
        """The replacement horizon in days."""
        return self.horizon_seconds / _SECONDS_PER_DAY


class ArrayFarm:
    """A server-class accelerator built from many PIM arrays.

    Per-array lifetimes are modelled as the single-array estimate scaled
    by a lognormal array-to-array factor (process variation between dies/
    subarrays); the farm fails for practical purposes once
    ``failure_fraction`` of its arrays are dead and the accelerator must
    be replaced.

    Args:
        n_arrays: Number of arrays in the accelerator.
        sigma: Lognormal spread of per-array lifetime (0 = identical).
        rng: Seed or generator for reproducible draws.
    """

    def __init__(
        self,
        n_arrays: int,
        sigma: float = 0.2,
        rng: "np.random.Generator | int | None" = None,
    ) -> None:
        if n_arrays < 1:
            raise ValueError("n_arrays must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.n_arrays = n_arrays
        self.sigma = sigma
        self._rng = np.random.default_rng(rng)

    def sample_lifetimes(self, estimate: LifetimeEstimate) -> np.ndarray:
        """Per-array failure times (seconds), sorted ascending."""
        factors = np.exp(
            self._rng.normal(0.0, self.sigma, size=self.n_arrays)
        )
        return np.sort(estimate.seconds_to_failure * factors)

    def replacement_horizon(
        self,
        estimate: LifetimeEstimate,
        failure_fraction: float = 0.1,
        duty_cycle: float = 1.0,
    ) -> FarmLifetime:
        """When does the accelerator need replacing?

        Args:
            estimate: The single-array Eq. 4 estimate for the workload.
            failure_fraction: Fraction of dead arrays that makes the
                accelerator unusable (e.g. 10%).
            duty_cycle: Farm-wide duty cycle (1.0 = always computing).
        """
        if not 0 < failure_fraction <= 1:
            raise ValueError(
                f"failure_fraction must be in (0, 1], got {failure_fraction}"
            )
        scaled = lifetime_at_duty_cycle(estimate, duty_cycle)
        lifetimes = self.sample_lifetimes(scaled)
        k = max(1, int(np.ceil(failure_fraction * self.n_arrays)))
        return FarmLifetime(
            n_arrays=self.n_arrays,
            first_seconds=float(lifetimes[0]),
            median_seconds=float(np.median(lifetimes)),
            horizon_seconds=float(lifetimes[k - 1]),
            failure_fraction=failure_fraction,
        )
